//! Umbrella crate re-exporting the full public API. See README.md.
pub use gar_cluster as cluster;
pub use gar_datagen as datagen;
pub use gar_mining as mining;
pub use gar_storage as storage;
pub use gar_taxonomy as taxonomy;
pub use gar_types as types;
