//! Whole-pipeline integration: generator → storage → taxonomy → parallel
//! mining → rules, through the umbrella crate's public API only.

use gar::cluster::ClusterConfig;
use gar::datagen::{presets, TransactionGenerator};
use gar::mining::parallel::mine_parallel;
use gar::mining::rules::{derive_rules, prune_uninteresting};
use gar::mining::sequential::{apriori, cumulate};
use gar::mining::{Algorithm, MiningParams};
use gar::storage::PartitionedDatabase;

#[test]
fn generator_to_rules_pipeline() {
    let spec = presets::r30f5(123).scaled(0.001);
    let mut generator = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = generator.by_ref().collect();
    let tax = generator.into_taxonomy();
    assert_eq!(txns.len(), spec.num_transactions);

    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    let params = MiningParams::with_min_support(0.02).max_pass(3);
    let cluster = ClusterConfig::new(4, 8 * 1024 * 1024);

    let report = mine_parallel(Algorithm::HHpgmFgd, &db, &tax, &params, &cluster).unwrap();
    assert!(report.output.num_large() > 0, "nothing mined");
    assert!(report.modeled_seconds > 0.0);
    assert_eq!(report.pass_reports.len(), report.output.passes.len());

    // Rule derivation end-to-end, including the R-interesting filter.
    let rules = derive_rules(&report.output, 0.5, Some(&tax));
    assert!(!rules.is_empty(), "no rules at 50% confidence");
    for r in &rules {
        assert!(r.confidence >= 0.5 && r.confidence <= 1.0 + 1e-9);
        assert!(r.support_count >= report.output.min_support_count);
    }
    let interesting = prune_uninteresting(&rules, &report.output, &tax, 1.1);
    assert!(interesting.len() <= rules.len());
}

#[test]
fn hierarchy_finds_rules_flat_mining_cannot() {
    // The paper's motivation, end to end: generalized mining must find
    // strictly more structure than flat Apriori on hierarchical data.
    let spec = presets::r30f3(9).scaled(0.001);
    let mut generator = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = generator.by_ref().collect();
    let tax = generator.into_taxonomy();
    let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();

    let params = MiningParams::with_min_support(0.03).max_pass(2);
    let flat = apriori(db.partition(0), tax.num_items(), &params).unwrap();
    let generalized = cumulate(db.partition(0), &tax, &params).unwrap();

    assert!(
        generalized.num_large() > flat.num_large(),
        "generalized {} <= flat {}",
        generalized.num_large(),
        flat.num_large()
    );
    // Every flat large itemset is also found by the generalized miner,
    // with the identical count (leaf supports are unaffected by the
    // hierarchy).
    for (set, count) in flat.all_large() {
        assert_eq!(
            generalized.support_of(set.items()),
            Some(*count),
            "flat itemset {set:?} missing or miscounted"
        );
    }
}

#[test]
fn speedup_improves_with_nodes_for_fgd() {
    let spec = presets::r30f5(77).scaled(0.002);
    let mut generator = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = generator.by_ref().collect();
    let tax = generator.into_taxonomy();
    let params = MiningParams::with_min_support(0.01).max_pass(2);

    let mut modeled = Vec::new();
    for nodes in [2usize, 8] {
        let db = PartitionedDatabase::build_in_memory(nodes, txns.iter().cloned()).unwrap();
        let cluster = ClusterConfig::new(nodes, 4 * 1024 * 1024);
        let rep = mine_parallel(Algorithm::HHpgmFgd, &db, &tax, &params, &cluster).unwrap();
        modeled.push(rep.modeled_seconds);
    }
    assert!(
        modeled[1] < modeled[0],
        "8 nodes ({}) not faster than 2 ({})",
        modeled[1],
        modeled[0]
    );
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let spec = presets::r30f10(5).scaled(0.001);
        let mut generator = TransactionGenerator::new(&spec).unwrap();
        let txns: Vec<_> = generator.by_ref().collect();
        let tax = generator.into_taxonomy();
        let db = PartitionedDatabase::build_in_memory(3, txns.into_iter()).unwrap();
        let params = MiningParams::with_min_support(0.02).max_pass(2);
        let cluster = ClusterConfig::new(3, 1 << 22);
        let rep = mine_parallel(Algorithm::HHpgmPgd, &db, &tax, &params, &cluster).unwrap();
        rep.output.all_large().cloned().collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
