//! Process-spawning subcommands: loom model checking, miri, tsan.
//!
//! miri and tsan require toolchain components this build environment may
//! not have (there is no network to install them). Both probe first and
//! skip with an explanation when unavailable; `--strict` turns a skip
//! into a failure so CI environments that *do* have the components can
//! enforce them.

use std::path::Path;
use std::process::Command;

fn strict(args: &[String]) -> bool {
    args.iter().any(|a| a == "--strict")
}

fn passthrough(args: &[String]) -> impl Iterator<Item = &String> {
    args.iter().filter(|a| *a != "--strict")
}

/// Runs `cmd`, echoing it first; returns the exit code (101 if the
/// process could not be spawned or was killed by a signal).
fn run_echoed(cmd: &mut Command) -> u8 {
    eprintln!("xtask: running {:?}", cmd);
    match cmd.status() {
        Ok(st) if st.success() => 0,
        Ok(st) => st.code().map(|c| c.min(255) as u8).unwrap_or(101),
        Err(e) => {
            eprintln!("xtask: failed to spawn {:?}: {e}", cmd.get_program());
            101
        }
    }
}

/// True if `cmd` runs and exits 0 (output discarded).
fn probe(mut cmd: Command) -> bool {
    cmd.stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Model-checks the cluster collectives. Compiles `gar-cluster` with
/// `--cfg gar_loom`, swapping the std primitives in `cluster/src/sync.rs`
/// for the `gar-modelcheck` virtual ones, then runs the exhaustive
/// schedule-enumeration suite. The checker's own unit tests run first so
/// a broken checker cannot vacuously pass the suite. A separate target
/// dir keeps the `--cfg` flag from invalidating the main build cache.
pub fn loom(root: &Path, args: &[String]) -> u8 {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("--cfg gar_loom");

    let code = run_echoed(Command::new("cargo").current_dir(root).args([
        "test",
        "-q",
        "-p",
        "gar-modelcheck",
    ]));
    if code != 0 {
        eprintln!("xtask loom: the model checker's own tests failed; not running the suite");
        return code;
    }

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("RUSTFLAGS", &rustflags)
            .args([
                "test",
                "-q",
                "-p",
                "gar-cluster",
                "--test",
                "loom_collectives",
                "--target-dir",
                "target/loom",
            ])
            .args(passthrough(args)),
    )
}

/// Runs the seeded chaos soak: the `gar-mining` chaos suite (fault
/// schedules vs. the byte-identical-output claim) plus the cluster
/// crate's fault-injection unit tests. `GAR_CHAOS_ITERS` scales how many
/// seeds each soak case explores (default shown below); every failure
/// message embeds the `FaultPlan` spec that reproduces it.
pub fn chaos(root: &Path, args: &[String]) -> u8 {
    let iters = std::env::var("GAR_CHAOS_ITERS").unwrap_or_else(|_| "25".into());
    eprintln!("xtask chaos: GAR_CHAOS_ITERS={iters} (seeds per soak case)");
    let code = run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("GAR_CHAOS_ITERS", &iters)
            .args(["test", "-q", "-p", "gar-mining", "--test", "chaos"])
            .args(passthrough(args)),
    );
    if code != 0 {
        return code;
    }
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args(["test", "-q", "-p", "gar-cluster", "fault"])
            .args(passthrough(args)),
    )
}

/// Runs the perf-regression bench gate: builds and runs the
/// `bench_gate` binary from `gar-bench` in release mode, passing every
/// argument through (`--check`, `--tolerance F`, `--out FILE`). The
/// binary owns the smoke matrix and the baseline comparison; xtask just
/// gives it a stable entry point (`cargo xtask bench [--check]`).
pub fn bench(root: &Path, args: &[String]) -> u8 {
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "gar-bench",
                "--bin",
                "bench_gate",
                "--",
            ])
            .args(args.iter()),
    )
}

/// Runs miri over the crates that contain `unsafe` (the model checker's
/// serialized `UnsafeCell` primitives) plus the cluster crate's unit
/// tests. Skips when the component is missing.
pub fn miri(root: &Path, args: &[String]) -> u8 {
    let mut version = Command::new("cargo");
    version
        .current_dir(root)
        .args(["+nightly", "miri", "--version"]);
    if !probe(version) {
        let msg = "xtask miri: `cargo +nightly miri` is not available \
                   (component not installed; this environment has no network). \
                   Install with `rustup +nightly component add miri` where possible.";
        if strict(args) {
            eprintln!("{msg}\nxtask miri: --strict set, failing");
            return 1;
        }
        eprintln!("{msg}\nxtask miri: skipping");
        return 0;
    }

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "+nightly",
                "miri",
                "test",
                "-p",
                "gar-modelcheck",
                "-p",
                "gar-cluster",
                "--lib",
            ])
            .args(passthrough(args)),
    )
}

/// Runs the cluster test suite under ThreadSanitizer. Needs nightly
/// (`-Z build-std`) and the `rust-src` component; skips when missing.
pub fn tsan(root: &Path, args: &[String]) -> u8 {
    let host = host_triple(root);
    let sysroot_src = nightly_sysroot(root).map(|s| {
        Path::new(&s)
            .join("lib")
            .join("rustlib")
            .join("src")
            .join("rust")
            .join("library")
    });
    let available = matches!((&host, &sysroot_src), (Some(_), Some(p)) if p.is_dir());
    if !available {
        let msg = "xtask tsan: nightly rust-src (for -Z build-std) is not available \
                   (this environment has no network). \
                   Install with `rustup +nightly component add rust-src` where possible.";
        if strict(args) {
            eprintln!("{msg}\nxtask tsan: --strict set, failing");
            return 1;
        }
        eprintln!("{msg}\nxtask tsan: skipping");
        return 0;
    }
    let host = host.unwrap();

    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("-Z sanitizer=thread");

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("RUSTFLAGS", &rustflags)
            .args([
                "+nightly",
                "test",
                "-Z",
                "build-std",
                "--target",
                &host,
                "-p",
                "gar-cluster",
                "--target-dir",
                "target/tsan",
            ])
            .args(passthrough(args)),
    )
}

fn host_triple(root: &Path) -> Option<String> {
    let out = Command::new("rustc")
        .current_dir(root)
        .args(["+nightly", "-vV"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
}

fn nightly_sysroot(root: &Path) -> Option<String> {
    let out = Command::new("rustc")
        .current_dir(root)
        .args(["+nightly", "--print", "sysroot"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()
        .map(|s| s.trim().to_string())
}
