//! Process-spawning subcommands: loom model checking, miri, tsan, and
//! the serving-layer smoke (`serve-smoke`).
//!
//! miri and tsan require toolchain components this build environment may
//! not have (there is no network to install them). Both probe first and
//! skip with an explanation when unavailable; `--strict` turns a skip
//! into a failure so CI environments that *do* have the components can
//! enforce them.

use std::io::BufRead;
use std::path::Path;
use std::process::Command;

fn strict(args: &[String]) -> bool {
    args.iter().any(|a| a == "--strict")
}

fn passthrough(args: &[String]) -> impl Iterator<Item = &String> {
    args.iter().filter(|a| *a != "--strict")
}

/// Runs `cmd`, echoing it first; returns the exit code (101 if the
/// process could not be spawned or was killed by a signal).
fn run_echoed(cmd: &mut Command) -> u8 {
    eprintln!("xtask: running {:?}", cmd);
    match cmd.status() {
        Ok(st) if st.success() => 0,
        Ok(st) => st.code().map(|c| c.min(255) as u8).unwrap_or(101),
        Err(e) => {
            eprintln!("xtask: failed to spawn {:?}: {e}", cmd.get_program());
            101
        }
    }
}

/// True if `cmd` runs and exits 0 (output discarded).
fn probe(mut cmd: Command) -> bool {
    cmd.stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Model-checks the cluster collectives and the serve-layer epoch cell.
/// Compiles with `--cfg gar_loom`, swapping the std primitives in
/// `cluster/src/sync.rs` and `serve/src/sync.rs` for the
/// `gar-modelcheck` virtual ones, then runs the exhaustive
/// schedule-enumeration suites. The checker's own unit tests run first
/// so a broken checker cannot vacuously pass the suites. A separate
/// target dir keeps the `--cfg` flag from invalidating the main build
/// cache.
pub fn loom(root: &Path, args: &[String]) -> u8 {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("--cfg gar_loom");

    let code = run_echoed(Command::new("cargo").current_dir(root).args([
        "test",
        "-q",
        "-p",
        "gar-modelcheck",
    ]));
    if code != 0 {
        eprintln!("xtask loom: the model checker's own tests failed; not running the suite");
        return code;
    }

    for (pkg, suite) in [
        ("gar-cluster", "loom_collectives"),
        ("gar-serve", "loom_epoch"),
    ] {
        let code = run_echoed(
            Command::new("cargo")
                .current_dir(root)
                .env("RUSTFLAGS", &rustflags)
                .args([
                    "test",
                    "-q",
                    "-p",
                    pkg,
                    "--test",
                    suite,
                    "--target-dir",
                    "target/loom",
                ])
                .args(passthrough(args)),
        );
        if code != 0 {
            return code;
        }
    }
    0
}

/// Runs the seeded chaos soak: the `gar-mining` chaos suite (fault
/// schedules vs. the byte-identical-output claim) plus the cluster
/// crate's fault-injection unit tests. `GAR_CHAOS_ITERS` scales how many
/// seeds each soak case explores (default shown below); every failure
/// message embeds the `FaultPlan` spec that reproduces it.
pub fn chaos(root: &Path, args: &[String]) -> u8 {
    let iters = std::env::var("GAR_CHAOS_ITERS").unwrap_or_else(|_| "25".into());
    eprintln!("xtask chaos: GAR_CHAOS_ITERS={iters} (seeds per soak case)");
    let code = run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("GAR_CHAOS_ITERS", &iters)
            .args(["test", "-q", "-p", "gar-mining", "--test", "chaos"])
            .args(passthrough(args)),
    );
    if code != 0 {
        return code;
    }
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args(["test", "-q", "-p", "gar-cluster", "fault"])
            .args(passthrough(args)),
    )
}

/// Runs the serve-layer chaos soak: the `gar-serve` chaos suite drives
/// a real TCP server through shard panics, connection resets, slow
/// frames, corrupt mid-swap stores, and overload bursts, asserting the
/// robustness invariants (no process abort, every accepted query
/// answered correctly or typed-retryable, byte-identical post-recovery
/// transcripts, epoch monotonicity). `GAR_SERVE_CHAOS_SEEDS` pins the
/// seed matrix so CI failures reproduce locally; the serve-side fault
/// grammar unit tests run alongside.
pub fn serve_chaos(root: &Path, args: &[String]) -> u8 {
    let seeds = std::env::var("GAR_SERVE_CHAOS_SEEDS").unwrap_or_else(|_| "11,23,47".into());
    eprintln!("xtask serve-chaos: GAR_SERVE_CHAOS_SEEDS={seeds}");
    let code = run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("GAR_SERVE_CHAOS_SEEDS", &seeds)
            .args(["test", "-q", "-p", "gar-serve", "--test", "chaos"])
            .args(passthrough(args)),
    );
    if code != 0 {
        return code;
    }
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args(["test", "-q", "-p", "gar-cluster", "serve"])
            .args(passthrough(args)),
    )
}

/// Runs the perf-regression bench gate: builds and runs the
/// `bench_gate` binary from `gar-bench` in release mode, passing every
/// argument through (`--check`, `--tolerance F`, `--out FILE`). The
/// binary owns the smoke matrix and the baseline comparison; xtask just
/// gives it a stable entry point (`cargo xtask bench [--check]`).
pub fn bench(root: &Path, args: &[String]) -> u8 {
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "gar-bench",
                "--bin",
                "bench_gate",
                "--",
            ])
            .args(args.iter()),
    )
}

/// The end-to-end serving smoke: mine a tiny dataset, persist the rule
/// store, serve it at 1 and 4 shards, and drive it with the seeded
/// `serve_load` generator. Asserts the pipeline's two load-bearing
/// claims — two identical runs produce byte-identical response
/// transcripts, and throughput is nonzero — then checks that the
/// server's metrics file carries per-shard query counters. Writes the
/// collected p50/p99/QPS numbers as a `gar-serve-bench-v1` baseline to
/// `--out FILE` (default `BENCH_PR4.fresh.json`, so the committed
/// `BENCH_PR4.json` is never clobbered by accident).
pub fn serve_smoke(root: &Path, args: &[String]) -> u8 {
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| root.join("BENCH_PR4.fresh.json"), |p| root.join(p));

    let code = run_echoed(Command::new("cargo").current_dir(root).args([
        "build",
        "--release",
        "-q",
        "-p",
        "gar-cli",
        "-p",
        "gar-bench",
    ]));
    if code != 0 {
        return code;
    }
    let cli = root.join("target/release/gar-cli");
    let load = root.join("target/release/serve_load");

    let work = root.join("target/serve-smoke");
    drop(std::fs::remove_dir_all(&work));
    if let Err(e) = std::fs::create_dir_all(&work) {
        eprintln!("xtask serve-smoke: cannot create {}: {e}", work.display());
        return 1;
    }
    let data = work.join("data");
    let gtax = data.join("taxonomy.gtax");
    let gout = work.join("large.gout");
    let grul = work.join("rules.grul");

    // mine → rules --out: the exact walkthrough from the README.
    for step in [
        vec![
            "gen",
            "--out",
            p(&data),
            "--preset",
            "R30F10",
            "--scale",
            "0.001",
            "--partitions",
            "2",
            "--seed",
            "9",
        ],
        vec![
            "mine",
            "--data",
            p(&data),
            "--min-support",
            "0.02",
            "--max-pass",
            "2",
            "--out",
            p(&gout),
        ],
        vec![
            "rules",
            "--output",
            p(&gout),
            "--taxonomy",
            p(&gtax),
            "--min-confidence",
            "0.3",
            "--out",
            p(&grul),
        ],
    ] {
        let code = run_echoed(Command::new(&cli).current_dir(root).args(&step));
        if code != 0 {
            return code;
        }
    }

    let mut summaries = Vec::new();
    for shards in ["1", "4"] {
        eprintln!("xtask serve-smoke: serving at {shards} shard(s)");
        let metrics = work.join(format!("metrics-{shards}.json"));
        let mut server = match Command::new(&cli)
            .current_dir(root)
            .args([
                "serve",
                "--rules",
                p(&grul),
                "--port",
                "0",
                "--shards",
                shards,
            ])
            .args(["--metrics-out", p(&metrics)])
            .stdout(std::process::Stdio::piped())
            .spawn()
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("xtask serve-smoke: cannot spawn server: {e}");
                return 1;
            }
        };
        let mut first_line = String::new();
        let mut stdout = std::io::BufReader::new(server.stdout.take().unwrap());
        if stdout.read_line(&mut first_line).is_err() || !first_line.contains("serving") {
            eprintln!("xtask serve-smoke: server did not announce itself: {first_line:?}");
            drop(server.kill());
            return 1;
        }
        let Some(addr) = first_line
            .split_whitespace()
            .find(|tok| tok.contains(':'))
            .map(str::to_string)
        else {
            eprintln!("xtask serve-smoke: no address in {first_line:?}");
            drop(server.kill());
            return 1;
        };

        // Two identical seeded runs; the first also records the summary.
        let summary = work.join(format!("summary-{shards}.json"));
        for (run, transcript) in [("t1.bin", true), ("t2.bin", false)] {
            let mut cmd = Command::new(&load);
            cmd.current_dir(root)
                .args(["--addr", &addr, "--rules", p(&grul)])
                .args(["--queries", "200", "--seed", "42", "--shards-label", shards])
                .args(["--transcript", p(&work.join(run))]);
            if transcript {
                cmd.args(["--summary-out", p(&summary)]);
            }
            let code = run_echoed(&mut cmd);
            if code != 0 {
                drop(server.kill());
                return code;
            }
        }
        let (t1, t2) = (
            std::fs::read(work.join("t1.bin")).unwrap_or_default(),
            std::fs::read(work.join("t2.bin")).unwrap_or_default(),
        );
        if t1.is_empty() || t1 != t2 {
            eprintln!(
                "xtask serve-smoke: transcripts differ at {shards} shard(s) \
                 ({} vs {} bytes) — serving is not deterministic",
                t1.len(),
                t2.len()
            );
            drop(server.kill());
            return 1;
        }
        eprintln!(
            "xtask serve-smoke: transcripts byte-identical at {shards} shard(s) \
             ({} bytes)",
            t1.len()
        );

        let summary_json = std::fs::read_to_string(&summary).unwrap_or_default();
        match json_number(&summary_json, "qps") {
            Some(qps) if qps > 0.0 => {}
            other => {
                eprintln!("xtask serve-smoke: bad qps in summary: {other:?}");
                drop(server.kill());
                return 1;
            }
        }
        summaries.push(summary_json);

        let code = run_echoed(Command::new(&cli).current_dir(root).args([
            "query",
            "--addr",
            &addr,
            "--shutdown",
        ]));
        if code != 0 {
            drop(server.kill());
            return code;
        }
        match server.wait() {
            Ok(st) if st.success() => {}
            other => {
                eprintln!("xtask serve-smoke: server exited abnormally: {other:?}");
                return 1;
            }
        }
        let metrics_json = std::fs::read_to_string(&metrics).unwrap_or_default();
        if !metrics_json.contains("serve.queries{shard=") {
            eprintln!(
                "xtask serve-smoke: {} lacks per-shard query counters",
                metrics.display()
            );
            return 1;
        }
    }

    let baseline = format!(
        "{{\n  \"schema\": \"gar-serve-bench-v1\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        summaries.join(",\n    ")
    );
    if let Err(e) = std::fs::write(&out_path, baseline) {
        eprintln!(
            "xtask serve-smoke: cannot write {}: {e}",
            out_path.display()
        );
        return 1;
    }
    eprintln!("xtask serve-smoke: wrote {}", out_path.display());
    0
}

/// Lossy path → str for building CLI argument lists.
fn p(path: &Path) -> &str {
    path.to_str().unwrap_or_default()
}

/// Extracts `"key": <number>` from a flat JSON object without a parser.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs miri over the crates that contain `unsafe` (the model checker's
/// serialized `UnsafeCell` primitives) plus the cluster crate's unit
/// tests. Skips when the component is missing.
pub fn miri(root: &Path, args: &[String]) -> u8 {
    let mut version = Command::new("cargo");
    version
        .current_dir(root)
        .args(["+nightly", "miri", "--version"]);
    if !probe(version) {
        let msg = "xtask miri: `cargo +nightly miri` is not available \
                   (component not installed; this environment has no network). \
                   Install with `rustup +nightly component add miri` where possible.";
        if strict(args) {
            eprintln!("{msg}\nxtask miri: --strict set, failing");
            return 1;
        }
        eprintln!("{msg}\nxtask miri: skipping");
        return 0;
    }

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "+nightly",
                "miri",
                "test",
                "-p",
                "gar-modelcheck",
                "-p",
                "gar-cluster",
                "--lib",
            ])
            .args(passthrough(args)),
    )
}

/// Runs the cluster test suite under ThreadSanitizer. Needs nightly
/// (`-Z build-std`) and the `rust-src` component; skips when missing.
pub fn tsan(root: &Path, args: &[String]) -> u8 {
    let host = host_triple(root);
    let sysroot_src = nightly_sysroot(root).map(|s| {
        Path::new(&s)
            .join("lib")
            .join("rustlib")
            .join("src")
            .join("rust")
            .join("library")
    });
    let available = matches!((&host, &sysroot_src), (Some(_), Some(p)) if p.is_dir());
    if !available {
        let msg = "xtask tsan: nightly rust-src (for -Z build-std) is not available \
                   (this environment has no network). \
                   Install with `rustup +nightly component add rust-src` where possible.";
        if strict(args) {
            eprintln!("{msg}\nxtask tsan: --strict set, failing");
            return 1;
        }
        eprintln!("{msg}\nxtask tsan: skipping");
        return 0;
    }
    let host = host.unwrap();

    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("-Z sanitizer=thread");

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("RUSTFLAGS", &rustflags)
            .args([
                "+nightly",
                "test",
                "-Z",
                "build-std",
                "--target",
                &host,
                "-p",
                "gar-cluster",
                "--target-dir",
                "target/tsan",
            ])
            .args(passthrough(args)),
    )
}

fn host_triple(root: &Path) -> Option<String> {
    let out = Command::new("rustc")
        .current_dir(root)
        .args(["+nightly", "-vV"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
}

fn nightly_sysroot(root: &Path) -> Option<String> {
    let out = Command::new("rustc")
        .current_dir(root)
        .args(["+nightly", "--print", "sysroot"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()
        .map(|s| s.trim().to_string())
}
