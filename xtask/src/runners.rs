//! Process-spawning subcommands: loom model checking, miri, tsan, and
//! the serving-layer smoke (`serve-smoke`).
//!
//! miri and tsan require toolchain components this build environment may
//! not have (there is no network to install them). Both probe first and
//! skip with an explanation when unavailable; `--strict` turns a skip
//! into a failure so CI environments that *do* have the components can
//! enforce them.

use std::io::BufRead;
use std::path::Path;
use std::process::Command;

fn strict(args: &[String]) -> bool {
    args.iter().any(|a| a == "--strict")
}

fn passthrough(args: &[String]) -> impl Iterator<Item = &String> {
    args.iter().filter(|a| *a != "--strict")
}

/// Runs `cmd`, echoing it first; returns the exit code (101 if the
/// process could not be spawned or was killed by a signal).
fn run_echoed(cmd: &mut Command) -> u8 {
    eprintln!("xtask: running {:?}", cmd);
    match cmd.status() {
        Ok(st) if st.success() => 0,
        Ok(st) => st.code().map(|c| c.min(255) as u8).unwrap_or(101),
        Err(e) => {
            eprintln!("xtask: failed to spawn {:?}: {e}", cmd.get_program());
            101
        }
    }
}

/// True if `cmd` runs and exits 0 (output discarded).
fn probe(mut cmd: Command) -> bool {
    cmd.stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Model-checks the cluster collectives and the serve-layer epoch cell.
/// Compiles with `--cfg gar_loom`, swapping the std primitives in
/// `cluster/src/sync.rs` and `serve/src/sync.rs` for the
/// `gar-modelcheck` virtual ones, then runs the exhaustive
/// schedule-enumeration suites. The checker's own unit tests run first
/// so a broken checker cannot vacuously pass the suites. A separate
/// target dir keeps the `--cfg` flag from invalidating the main build
/// cache.
pub fn loom(root: &Path, args: &[String]) -> u8 {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("--cfg gar_loom");

    let code = run_echoed(Command::new("cargo").current_dir(root).args([
        "test",
        "-q",
        "-p",
        "gar-modelcheck",
    ]));
    if code != 0 {
        eprintln!("xtask loom: the model checker's own tests failed; not running the suite");
        return code;
    }

    for (pkg, suite) in [
        ("gar-cluster", "loom_collectives"),
        ("gar-serve", "loom_epoch"),
    ] {
        let code = run_echoed(
            Command::new("cargo")
                .current_dir(root)
                .env("RUSTFLAGS", &rustflags)
                .args([
                    "test",
                    "-q",
                    "-p",
                    pkg,
                    "--test",
                    suite,
                    "--target-dir",
                    "target/loom",
                ])
                .args(passthrough(args)),
        );
        if code != 0 {
            return code;
        }
    }
    0
}

/// Runs the seeded chaos soak: the `gar-mining` chaos suite (fault
/// schedules vs. the byte-identical-output claim), the `gar-fpg` chaos
/// suite (mid-projection panics vs. the byte-identical-GRUL claim),
/// plus the cluster crate's fault-injection unit tests.
/// `GAR_CHAOS_ITERS` scales how many seeds each soak case explores
/// (default shown below); every failure message embeds the `FaultPlan`
/// spec that reproduces it.
pub fn chaos(root: &Path, args: &[String]) -> u8 {
    let iters = std::env::var("GAR_CHAOS_ITERS").unwrap_or_else(|_| "25".into());
    eprintln!("xtask chaos: GAR_CHAOS_ITERS={iters} (seeds per soak case)");
    for suite in ["gar-mining", "gar-fpg"] {
        let code = run_echoed(
            Command::new("cargo")
                .current_dir(root)
                .env("GAR_CHAOS_ITERS", &iters)
                .args(["test", "-q", "-p", suite, "--test", "chaos"])
                .args(passthrough(args)),
        );
        if code != 0 {
            return code;
        }
    }
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args(["test", "-q", "-p", "gar-cluster", "fault"])
            .args(passthrough(args)),
    )
}

/// Runs the serve-layer chaos soak: the `gar-serve` chaos suite drives
/// a real TCP server through shard panics, connection resets, slow
/// frames, corrupt mid-swap stores, and overload bursts, asserting the
/// robustness invariants (no process abort, every accepted query
/// answered correctly or typed-retryable, byte-identical post-recovery
/// transcripts, epoch monotonicity). `GAR_SERVE_CHAOS_SEEDS` pins the
/// seed matrix so CI failures reproduce locally; the serve-side fault
/// grammar unit tests run alongside.
pub fn serve_chaos(root: &Path, args: &[String]) -> u8 {
    let seeds = std::env::var("GAR_SERVE_CHAOS_SEEDS").unwrap_or_else(|_| "11,23,47".into());
    eprintln!("xtask serve-chaos: GAR_SERVE_CHAOS_SEEDS={seeds}");
    let code = run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("GAR_SERVE_CHAOS_SEEDS", &seeds)
            .args(["test", "-q", "-p", "gar-serve", "--test", "chaos"])
            .args(passthrough(args)),
    );
    if code != 0 {
        return code;
    }
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args(["test", "-q", "-p", "gar-cluster", "serve"])
            .args(passthrough(args)),
    )
}

/// Runs the CI job sequence locally, in the same order the workflow
/// does: format + clippy + repo lint, static analysis, build + test,
/// loom, chaos, serve-chaos, bench (with the wall gate), serve-smoke,
/// and serve-bench. Stops at the first failing job so the console ends
/// at the same place the CI log would. `cargo xtask ci` before pushing
/// ≈ a green run.
pub fn ci(root: &Path, _args: &[String]) -> u8 {
    let jobs: &[(&str, &dyn Fn() -> u8)] = &[
        ("fmt", &|| {
            run_echoed(
                Command::new("cargo")
                    .current_dir(root)
                    .args(["fmt", "--all", "--check"]),
            )
        }),
        ("clippy", &|| {
            run_echoed(Command::new("cargo").current_dir(root).args([
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ]))
        }),
        ("lint", &|| crate::analyze::lint(root)),
        ("analyze", &|| {
            crate::analyze::run(root, &["--check".to_string()])
        }),
        ("test", &|| {
            run_echoed(Command::new("cargo").current_dir(root).args(["test", "-q"]))
        }),
        ("loom", &|| loom(root, &[])),
        ("chaos", &|| chaos(root, &[])),
        ("serve-chaos", &|| serve_chaos(root, &[])),
        ("bench", &|| {
            bench(root, &["--check".to_string(), "--gate-wall".to_string()])
        }),
        ("serve-smoke", &|| serve_smoke(root, &[])),
        ("serve-bench", &|| {
            serve_bench(
                root,
                &[
                    "--check".to_string(),
                    "--tolerance".to_string(),
                    "0.5".to_string(),
                ],
            )
        }),
    ];
    for (name, job) in jobs {
        eprintln!("\nxtask ci: ===== {name} =====");
        let code = job();
        if code != 0 {
            eprintln!("xtask ci: job `{name}` failed (exit {code})");
            return code;
        }
    }
    eprintln!("\nxtask ci: all jobs green");
    0
}

/// Runs the perf-regression bench gate: builds and runs the
/// `bench_gate` binary from `gar-bench` in release mode, passing every
/// argument through (`--check`, `--gate-wall`, `--tolerance F`,
/// `--out FILE`). The binary owns the smoke matrix, the baseline
/// comparison, and the CI step summary; xtask just gives it a stable
/// entry point (`cargo xtask bench [--check] [--gate-wall]`).
pub fn bench(root: &Path, args: &[String]) -> u8 {
    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "gar-bench",
                "--bin",
                "bench_gate",
                "--",
            ])
            .args(args.iter()),
    )
}

/// The end-to-end serving smoke: mine a tiny dataset, persist the rule
/// store, serve it at 1 and 4 shards, and drive it with the seeded
/// `serve_load` generator. Asserts the pipeline's two load-bearing
/// claims — two identical runs produce byte-identical response
/// transcripts, and throughput is nonzero — then checks that the
/// server's metrics file carries per-shard query counters. Writes the
/// collected p50/p99/QPS numbers as a `gar-serve-bench-v1` baseline to
/// `--out FILE` (default `BENCH_PR4.fresh.json`, so the committed
/// `BENCH_PR4.json` is never clobbered by accident).
pub fn serve_smoke(root: &Path, args: &[String]) -> u8 {
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| root.join("BENCH_PR4.fresh.json"), |p| root.join(p));

    let code = run_echoed(Command::new("cargo").current_dir(root).args([
        "build",
        "--release",
        "-q",
        "-p",
        "gar-cli",
        "-p",
        "gar-bench",
    ]));
    if code != 0 {
        return code;
    }
    let cli = root.join("target/release/gar-cli");
    let load = root.join("target/release/serve_load");

    let work = root.join("target/serve-smoke");
    drop(std::fs::remove_dir_all(&work));
    if let Err(e) = std::fs::create_dir_all(&work) {
        eprintln!("xtask serve-smoke: cannot create {}: {e}", work.display());
        return 1;
    }
    let grul = match mine_bench_corpus(root, &cli, &work) {
        Ok(grul) => grul,
        Err(code) => return code,
    };

    let mut summaries = Vec::new();
    for shards in ["1", "4"] {
        eprintln!("xtask serve-smoke: serving at {shards} shard(s)");
        let metrics = work.join(format!("metrics-{shards}.json"));
        let (mut server, addr, _stdout) =
            match spawn_server(root, &cli, &grul, shards, &metrics, "serve-smoke") {
                Ok(tuple) => tuple,
                Err(code) => return code,
            };

        // Two identical seeded runs; the first also records the summary.
        let summary = work.join(format!("summary-{shards}.json"));
        for (run, transcript) in [("t1.bin", true), ("t2.bin", false)] {
            let mut cmd = Command::new(&load);
            cmd.current_dir(root)
                .args(["--addr", &addr, "--rules", p(&grul)])
                .args(["--queries", "200", "--seed", "42", "--shards-label", shards])
                .args(["--transcript", p(&work.join(run))]);
            if transcript {
                cmd.args(["--summary-out", p(&summary)]);
            }
            let code = run_echoed(&mut cmd);
            if code != 0 {
                drop(server.kill());
                return code;
            }
        }
        let (t1, t2) = (
            std::fs::read(work.join("t1.bin")).unwrap_or_default(),
            std::fs::read(work.join("t2.bin")).unwrap_or_default(),
        );
        if t1.is_empty() || t1 != t2 {
            eprintln!(
                "xtask serve-smoke: transcripts differ at {shards} shard(s) \
                 ({} vs {} bytes) — serving is not deterministic",
                t1.len(),
                t2.len()
            );
            drop(server.kill());
            return 1;
        }
        eprintln!(
            "xtask serve-smoke: transcripts byte-identical at {shards} shard(s) \
             ({} bytes)",
            t1.len()
        );

        let summary_json = std::fs::read_to_string(&summary).unwrap_or_default();
        match json_number(&summary_json, "qps") {
            Some(qps) if qps > 0.0 => {}
            other => {
                eprintln!("xtask serve-smoke: bad qps in summary: {other:?}");
                drop(server.kill());
                return 1;
            }
        }
        summaries.push(summary_json);

        let code = run_echoed(Command::new(&cli).current_dir(root).args([
            "query",
            "--addr",
            &addr,
            "--shutdown",
        ]));
        if code != 0 {
            drop(server.kill());
            return code;
        }
        match server.wait() {
            Ok(st) if st.success() => {}
            other => {
                eprintln!("xtask serve-smoke: server exited abnormally: {other:?}");
                return 1;
            }
        }
        let metrics_json = std::fs::read_to_string(&metrics).unwrap_or_default();
        if !metrics_json.contains("serve.queries{shard=") {
            eprintln!(
                "xtask serve-smoke: {} lacks per-shard query counters",
                metrics.display()
            );
            return 1;
        }
    }

    let baseline = format!(
        "{{\n  \"schema\": \"gar-serve-bench-v1\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        summaries.join(",\n    ")
    );
    if let Err(e) = std::fs::write(&out_path, baseline) {
        eprintln!(
            "xtask serve-smoke: cannot write {}: {e}",
            out_path.display()
        );
        return 1;
    }
    eprintln!("xtask serve-smoke: wrote {}", out_path.display());
    0
}

/// Mines the standard serve-bench corpus (the README walkthrough:
/// R30F10 at scale 0.001, seed 9 → rules at min-confidence 0.3) into
/// `work`, returning the rule-store path. Shared by `serve-smoke` and
/// `serve-bench` so both harnesses measure the same store.
fn mine_bench_corpus(
    root: &Path,
    cli: &Path,
    work: &Path,
) -> std::result::Result<std::path::PathBuf, u8> {
    let data = work.join("data");
    let gtax = data.join("taxonomy.gtax");
    let gout = work.join("large.gout");
    let grul = work.join("rules.grul");
    for step in [
        vec![
            "gen",
            "--out",
            p(&data),
            "--preset",
            "R30F10",
            "--scale",
            "0.001",
            "--partitions",
            "2",
            "--seed",
            "9",
        ],
        vec![
            "mine",
            "--data",
            p(&data),
            "--min-support",
            "0.02",
            "--max-pass",
            "2",
            "--out",
            p(&gout),
        ],
        vec![
            "rules",
            "--output",
            p(&gout),
            "--taxonomy",
            p(&gtax),
            "--min-confidence",
            "0.3",
            "--out",
            p(&grul),
        ],
    ] {
        let code = run_echoed(Command::new(cli).current_dir(root).args(&step));
        if code != 0 {
            return Err(code);
        }
    }
    Ok(grul)
}

/// Spawns `gar-cli serve` and parses the announced address from its
/// first stdout line. Returns the child, the `host:port` string, and
/// the stdout reader — the caller must keep the reader alive until the
/// server exits, or its final status prints panic on a closed pipe.
fn spawn_server(
    root: &Path,
    cli: &Path,
    grul: &Path,
    shards: &str,
    metrics: &Path,
    tag: &str,
) -> std::result::Result<
    (
        std::process::Child,
        String,
        std::io::BufReader<std::process::ChildStdout>,
    ),
    u8,
> {
    let mut server = match Command::new(cli)
        .current_dir(root)
        .args([
            "serve",
            "--rules",
            p(grul),
            "--port",
            "0",
            "--shards",
            shards,
        ])
        .args(["--metrics-out", p(metrics)])
        .stdout(std::process::Stdio::piped())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask {tag}: cannot spawn server: {e}");
            return Err(1);
        }
    };
    let mut first_line = String::new();
    let mut stdout = std::io::BufReader::new(server.stdout.take().unwrap());
    if stdout.read_line(&mut first_line).is_err() || !first_line.contains("serving") {
        eprintln!("xtask {tag}: server did not announce itself: {first_line:?}");
        drop(server.kill());
        return Err(1);
    }
    let Some(addr) = first_line
        .split_whitespace()
        .find(|tok| tok.contains(':'))
        .map(str::to_string)
    else {
        eprintln!("xtask {tag}: no address in {first_line:?}");
        drop(server.kill());
        return Err(1);
    };
    Ok((server, addr, stdout))
}

/// The serve-layer perf gate (`cargo xtask serve-bench [--check]`).
///
/// Mines the standard corpus, serves it at 1 and 4 shards, and drives
/// the **batched** single-root-heavy workload (`--batch 64 --basket 1`)
/// through `serve_load`'s closed loop. Two ratchets hold the PR-8
/// scalability fix in place:
///
/// * **inversion fixed** — 4-shard qps must be strictly greater than
///   1-shard qps (affinity routing makes extra shards skip work, so
///   more shards must never serve slower);
/// * **batching pays** — 1-shard batched qps must be at least 2× the
///   PR-4 single-query baseline (16 844 qps).
///
/// Writes the fresh numbers to `--out FILE` (default
/// `BENCH_PR8.fresh.json`). With `--check`, also compares each fresh
/// qps against the committed `BENCH_PR8.json` (or `--baseline FILE`)
/// under `--tolerance F` (default 0.35 — loopback throughput on shared
/// CI is noisy) and verifies the committed baseline itself still
/// satisfies both ratchets.
pub fn serve_bench(root: &Path, args: &[String]) -> u8 {
    /// PR-4's committed single-shard closed-loop qps; the batched path
    /// must at least double it.
    const PR4_SINGLE_SHARD_QPS: f64 = 16_844.0;

    let flag = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path =
        flag("--out").map_or_else(|| root.join("BENCH_PR8.fresh.json"), |o| root.join(o));
    let baseline_path =
        flag("--baseline").map_or_else(|| root.join("BENCH_PR8.json"), |b| root.join(b));
    let check = args.iter().any(|a| a == "--check");
    let tolerance: f64 = flag("--tolerance")
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.35);

    let code = run_echoed(Command::new("cargo").current_dir(root).args([
        "build",
        "--release",
        "-q",
        "-p",
        "gar-cli",
        "-p",
        "gar-bench",
    ]));
    if code != 0 {
        return code;
    }
    let cli = root.join("target/release/gar-cli");
    let load = root.join("target/release/serve_load");

    let work = root.join("target/serve-bench");
    drop(std::fs::remove_dir_all(&work));
    if let Err(e) = std::fs::create_dir_all(&work) {
        eprintln!("xtask serve-bench: cannot create {}: {e}", work.display());
        return 1;
    }
    let grul = match mine_bench_corpus(root, &cli, &work) {
        Ok(grul) => grul,
        Err(code) => return code,
    };

    let mut summaries = Vec::new();
    let mut qps_by_shards: Vec<(u64, f64)> = Vec::new();
    for shards in ["1", "4"] {
        eprintln!("xtask serve-bench: batched load at {shards} shard(s)");
        let metrics = work.join(format!("metrics-{shards}.json"));
        let (mut server, addr, _stdout) =
            match spawn_server(root, &cli, &grul, shards, &metrics, "serve-bench") {
                Ok(tuple) => tuple,
                Err(code) => return code,
            };

        // Single-root-heavy batched closed loop: --same-root draws each
        // 4-item basket from one taxonomy root's subtree, so affinity
        // sends the whole basket to exactly one shard (and that shard
        // skips the cross-root consequent postings a 1-shard server
        // containment-tests and rejects); --batch 64 amortizes the
        // round trip. Two trials per config, best-of-2, to keep the
        // strict 4-vs-1 ratchet out of scheduler-noise territory.
        let mut best: Option<(f64, String)> = None;
        for trial in 0..2 {
            let summary = work.join(format!("summary-{shards}-t{trial}.json"));
            let code = run_echoed(
                Command::new(&load)
                    .current_dir(root)
                    .args(["--addr", &addr, "--rules", p(&grul)])
                    .args(["--queries", "20000", "--seed", "42"])
                    .args(["--basket", "4", "--same-root"])
                    .args(["--batch", "64", "--shards-label", shards])
                    .args(["--summary-out", p(&summary)]),
            );
            if code != 0 {
                drop(server.kill());
                return code;
            }
            let summary_json = std::fs::read_to_string(&summary).unwrap_or_default();
            let Some(qps) = json_number(&summary_json, "qps") else {
                eprintln!("xtask serve-bench: no qps in {summary_json:?}");
                drop(server.kill());
                return 1;
            };
            if best.as_ref().is_none_or(|(b, _)| qps > *b) {
                best = Some((qps, summary_json));
            }
        }

        let shutdown = run_echoed(Command::new(&cli).current_dir(root).args([
            "query",
            "--addr",
            &addr,
            "--shutdown",
        ]));
        if shutdown != 0 {
            drop(server.kill());
            return shutdown;
        }
        match server.wait() {
            Ok(st) if st.success() => {}
            other => {
                eprintln!("xtask serve-bench: server exited abnormally: {other:?}");
                return 1;
            }
        }

        let Some((qps, summary_json)) = best else {
            eprintln!("xtask serve-bench: no trial produced a summary");
            return 1;
        };
        let shards_n: u64 = shards.parse().unwrap_or(0);
        eprintln!("xtask serve-bench: {shards} shard(s) → {qps:.0} qps (batched, best of 2)");
        qps_by_shards.push((shards_n, qps));
        summaries.push(summary_json);
    }

    let fresh = format!(
        "{{\n  \"schema\": \"gar-serve-bench-v2\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        summaries.join(",\n    ")
    );
    if let Err(e) = std::fs::write(&out_path, &fresh) {
        eprintln!(
            "xtask serve-bench: cannot write {}: {e}",
            out_path.display()
        );
        return 1;
    }
    eprintln!("xtask serve-bench: wrote {}", out_path.display());

    let qps_of = |list: &[(u64, f64)], n: u64| list.iter().find(|(s, _)| *s == n).map(|(_, q)| *q);

    // CI step summary, written before any gate so failed runs still
    // show their numbers (best-effort; baseline column when the file
    // reads).
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let base = std::fs::read_to_string(&baseline_path)
            .map(|s| baseline_qps_by_shards(&s))
            .unwrap_or_default();
        let mut md = String::from(
            "### Serve bench (batched, single-root-heavy)\n\n\
             | shards | fresh qps | baseline qps |\n|---:|---:|---:|\n",
        );
        for (shards, qps) in &qps_by_shards {
            let b = qps_of(&base, *shards).map_or_else(|| "—".to_string(), |q| format!("{q:.0}"));
            md.push_str(&format!("| {shards} | {qps:.0} | {b} |\n"));
        }
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
            .and_then(|mut f| f.write_all(md.as_bytes()));
        if let Err(e) = appended {
            eprintln!("xtask serve-bench: cannot append step summary: {e}");
        }
    }

    // Ratchet 1, on the fresh run: the inversion must stay fixed.
    let (Some(q1), Some(q4)) = (qps_of(&qps_by_shards, 1), qps_of(&qps_by_shards, 4)) else {
        eprintln!("xtask serve-bench: missing shard results");
        return 1;
    };
    if q4 <= q1 {
        eprintln!(
            "xtask serve-bench: FAIL — scalability inversion: 4 shards {q4:.0} qps \
             is not faster than 1 shard {q1:.0} qps"
        );
        return 1;
    }
    eprintln!("xtask serve-bench: 4-shard {q4:.0} qps > 1-shard {q1:.0} qps — inversion fixed");

    if !check {
        return 0;
    }

    // --check: the committed baseline must hold both ratchets, and the
    // fresh run must stay within tolerance of it.
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "xtask serve-bench: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return 1;
        }
    };
    let base_qps = baseline_qps_by_shards(&baseline);
    let (Some(b1), Some(b4)) = (qps_of(&base_qps, 1), qps_of(&base_qps, 4)) else {
        eprintln!(
            "xtask serve-bench: baseline {} lacks 1/4-shard results",
            baseline_path.display()
        );
        return 1;
    };
    if b4 <= b1 {
        eprintln!(
            "xtask serve-bench: FAIL — committed baseline shows the inversion ({b4:.0} <= {b1:.0})"
        );
        return 1;
    }
    if b1 < 2.0 * PR4_SINGLE_SHARD_QPS {
        eprintln!(
            "xtask serve-bench: FAIL — committed 1-shard batched qps {b1:.0} is below \
             2x the PR4 single-query baseline ({:.0})",
            2.0 * PR4_SINGLE_SHARD_QPS
        );
        return 1;
    }
    let mut failed = false;
    for (shards, fresh_q, base_q) in [(1u64, q1, b1), (4, q4, b4)] {
        let floor = base_q * (1.0 - tolerance);
        if fresh_q < floor {
            eprintln!(
                "xtask serve-bench: FAIL — {shards}-shard fresh {fresh_q:.0} qps below \
                 {floor:.0} (baseline {base_q:.0} - {:.0}% tolerance)",
                tolerance * 100.0
            );
            failed = true;
        } else {
            eprintln!(
                "xtask serve-bench: {shards}-shard fresh {fresh_q:.0} qps >= \
                 {floor:.0} (baseline {base_q:.0} - {:.0}%)",
                tolerance * 100.0
            );
        }
    }
    u8::from(failed)
}

/// Pulls `(shards, qps)` pairs out of a `gar-serve-bench-v2` baseline
/// without a JSON parser: the results array holds flat objects, so a
/// forward scan pairing each `"shards"` with the following `"qps"` is
/// exact.
fn baseline_qps_by_shards(json: &str) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"shards\"") {
        rest = &rest[i..];
        let Some(shards) = json_number(rest, "shards") else {
            break;
        };
        let Some(qps) = json_number(rest, "qps") else {
            break;
        };
        out.push((shards as u64, qps));
        rest = &rest[8..];
    }
    out
}

/// Lossy path → str for building CLI argument lists.
fn p(path: &Path) -> &str {
    path.to_str().unwrap_or_default()
}

/// Extracts `"key": <number>` from a flat JSON object without a parser.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs miri over the crates that contain `unsafe` (the model checker's
/// serialized `UnsafeCell` primitives) plus the cluster crate's unit
/// tests. Skips when the component is missing.
pub fn miri(root: &Path, args: &[String]) -> u8 {
    let mut version = Command::new("cargo");
    version
        .current_dir(root)
        .args(["+nightly", "miri", "--version"]);
    if !probe(version) {
        let msg = "xtask miri: `cargo +nightly miri` is not available \
                   (component not installed; this environment has no network). \
                   Install with `rustup +nightly component add miri` where possible.";
        if strict(args) {
            eprintln!("{msg}\nxtask miri: --strict set, failing");
            return 1;
        }
        eprintln!("{msg}\nxtask miri: skipping");
        return 0;
    }

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "+nightly",
                "miri",
                "test",
                "-p",
                "gar-modelcheck",
                "-p",
                "gar-cluster",
                "--lib",
            ])
            .args(passthrough(args)),
    )
}

/// Runs the cluster test suite under ThreadSanitizer. Needs nightly
/// (`-Z build-std`) and the `rust-src` component; skips when missing.
pub fn tsan(root: &Path, args: &[String]) -> u8 {
    let host = host_triple(root);
    let sysroot_src = nightly_sysroot(root).map(|s| {
        Path::new(&s)
            .join("lib")
            .join("rustlib")
            .join("src")
            .join("rust")
            .join("library")
    });
    let available = matches!((&host, &sysroot_src), (Some(_), Some(p)) if p.is_dir());
    if !available {
        let msg = "xtask tsan: nightly rust-src (for -Z build-std) is not available \
                   (this environment has no network). \
                   Install with `rustup +nightly component add rust-src` where possible.";
        if strict(args) {
            eprintln!("{msg}\nxtask tsan: --strict set, failing");
            return 1;
        }
        eprintln!("{msg}\nxtask tsan: skipping");
        return 0;
    }
    let host = host.unwrap();

    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("-Z sanitizer=thread");

    run_echoed(
        Command::new("cargo")
            .current_dir(root)
            .env("RUSTFLAGS", &rustflags)
            .args([
                "+nightly",
                "test",
                "-Z",
                "build-std",
                "--target",
                &host,
                "-p",
                "gar-cluster",
                "--target-dir",
                "target/tsan",
            ])
            .args(passthrough(args)),
    )
}

fn host_triple(root: &Path) -> Option<String> {
    let out = Command::new("rustc")
        .current_dir(root)
        .args(["+nightly", "-vV"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
}

fn nightly_sysroot(root: &Path) -> Option<String> {
    let out = Command::new("rustc")
        .current_dir(root)
        .args(["+nightly", "--print", "sysroot"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout)
        .ok()
        .map(|s| s.trim().to_string())
}
