//! In-repo static analysis: concurrency and determinism rules that the
//! stock toolchain cannot express. Text-based (line scanning plus a
//! brace-stack for block context), deliberately simple — the rules are
//! conventions of *this* codebase, and a false positive costs one
//! suppression comment, not a type-system fight.
//!
//! Rules (all scoped to non-test code under `crates/*/src`):
//!
//! * `wait-loop` — every `Condvar::wait` call must sit inside an
//!   enclosing `while`/`loop` block so the predicate (generation
//!   counter, poison flag) is re-checked after every wakeup. A bare
//!   wait is a lost-wakeup/spurious-wakeup bug waiting to happen.
//! * `cluster-unwrap` — no `.unwrap()` / `.expect(` in `crates/cluster`
//!   non-test code: a panicking node must poison the collectives (so
//!   peers fail with `Error::Poisoned`), not abort with a stack trace.
//! * `relaxed` — every `Ordering::Relaxed` atomic op must carry a
//!   nearby `// relaxed: <why>` justification comment (within the
//!   12 preceding lines). Relaxed is correct for independent counters
//!   read after a join, and wrong almost everywhere else; the comment
//!   forces the author to say which case this is.
//! * `hash-order` — in the files that build wire messages or rule
//!   reports, iterating a `HashMap`/`HashSet` is forbidden: hash
//!   iteration order varies across runs/platforms and silently breaks
//!   the byte-identical-report determinism guarantee. Lookups are fine;
//!   iteration must go through a sorted or insertion-ordered structure
//!   (or be explicitly suppressed where a deterministic sort follows).
//! * `no-deadline` — every blocking receive/wait in `crates/cluster`
//!   non-test code must go through a deadline-aware API so a hung peer
//!   surfaces as `Error::Timeout` instead of a hang: `.recv()` is
//!   forbidden except on the `ctx` receiver (`NodeCtx::recv` is the
//!   deadline-aware wrapper — poll-sliced, poison-checked, deadlined),
//!   and a bare Condvar `.wait(` is forbidden (use `wait_timeout` or
//!   route through `wait_collective`). The `_timeout`/`_deadline`
//!   variants never match.
//! * `no-instant` — `Instant::now()` is forbidden outside `crates/obs`:
//!   all wall-clock reads go through `gar_obs::Stopwatch` (or an obs
//!   span) so timing stays observable and the no-timestamp guarantee of
//!   `metrics.json` (byte-identical reruns) cannot be eroded by ad-hoc
//!   clock reads leaking into reports.
//! * `no-raw-net` — `std::net` sockets (`TcpListener`, `TcpStream`,
//!   `UdpSocket`) are forbidden outside `crates/serve`: all network I/O
//!   belongs to the serving crate, where every frame read funnels
//!   through `protocol::read_frame` and its `MAX_FRAME_BYTES` guard.
//!   Inside `crates/serve`, bulk stream reads (`.read(`, `.read_exact(`,
//!   `.read_to_end(`) are forbidden outside `protocol.rs` for the same
//!   reason — a handler reading a socket directly would bypass the
//!   length check that makes oversize frames unexploitable.
//!
//! Suppression: `// lint:allow(<rule>): <reason>` on the offending line
//! or the line above. The reason is mandatory — the colon is part of
//! the pattern.

use std::fmt;
use std::path::{Path, PathBuf};

const RULE_WAIT_LOOP: &str = "wait-loop";
const RULE_CLUSTER_UNWRAP: &str = "cluster-unwrap";
const RULE_RELAXED: &str = "relaxed";
const RULE_HASH_ORDER: &str = "hash-order";
const RULE_NO_DEADLINE: &str = "no-deadline";
const RULE_NO_INSTANT: &str = "no-instant";
const RULE_NO_RAW_NET: &str = "no-raw-net";

/// The one file allowed to read raw bytes off a stream: the frame codec
/// whose length guard (`MAX_FRAME_BYTES`) every read passes through.
const FRAME_CODEC_FILE: &str = "crates/serve/src/protocol.rs";

/// How many lines above an `Ordering::Relaxed` site a `relaxed:`
/// justification comment may sit (covers one comment per short fn).
const RELAXED_WINDOW: usize = 12;

/// Files whose `HashMap`/`HashSet` iteration feeds wire messages or
/// rule reports. Paths are workspace-relative; a trailing `/` means the
/// whole directory.
const HASH_ORDER_SCOPE: &[&str] = &[
    "crates/mining/src/wire.rs",
    "crates/mining/src/report.rs",
    "crates/mining/src/rules.rs",
    "crates/mining/src/parallel/",
    "crates/cluster/src/",
];

#[derive(Debug)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

pub fn run(root: &Path) -> u8 {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("xtask lint: unreadable file {}", path.display());
            return 2;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &src));
        scanned += 1;
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("xtask lint: {scanned} files clean");
        0
    } else {
        println!(
            "xtask lint: {} finding(s) in {scanned} files",
            findings.len()
        );
        1
    }
}

/// Recursively collects `.rs` files under `crates/*/src` (skipping
/// `tests/`, benches and build output — rules target library code; the
/// in-file `#[cfg(test)]` regions are excluded by the block scanner).
fn collect_rs_files(crates_dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(crates_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_under(&src, out);
        }
    }
}

fn collect_rs_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints one file. `rel` is the workspace-relative path (used for rule
/// scoping); `src` is the file contents. Public within the crate so the
/// unit tests can lint synthetic sources without touching the disk.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let a = Analysis::of(src);
    let mut findings = Vec::new();

    for (i, code) in a.code.iter().enumerate() {
        let line_no = i + 1;
        if a.in_test[i] {
            continue;
        }

        // wait-loop: all crates.
        if code.contains(".wait(") && !a.wait_in_loop[i] && !a.suppressed(i, RULE_WAIT_LOOP) {
            findings.push(Finding {
                file: rel.to_string(),
                line: line_no,
                rule: RULE_WAIT_LOOP,
                msg: "Condvar::wait outside a while/loop predicate re-check; \
                      a spurious or early wakeup returns with the condition unmet"
                    .to_string(),
            });
        }

        // cluster-unwrap: crates/cluster only.
        if rel.starts_with("crates/cluster/")
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !a.suppressed(i, RULE_CLUSTER_UNWRAP)
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: line_no,
                rule: RULE_CLUSTER_UNWRAP,
                msg: "unwrap/expect in cluster non-test code; return an Error (and let \
                      the collectives be poisoned) instead of panicking a node"
                    .to_string(),
            });
        }

        // no-deadline: crates/cluster only.
        if rel.starts_with("crates/cluster/") && !a.suppressed(i, RULE_NO_DEADLINE) {
            if let Some(what) = blocking_call_without_deadline(code) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: line_no,
                    rule: RULE_NO_DEADLINE,
                    msg: format!(
                        "blocking `{what}` without a deadline in cluster non-test code; \
                         use the deadline-aware API (NodeCtx::recv / recv_timeout / \
                         wait_timeout) so a hung peer surfaces as Error::Timeout"
                    ),
                });
            }
        }

        // no-instant: everywhere except the observability crate, which
        // owns the clock (Stopwatch, span timers, the trace epoch).
        if !rel.starts_with("crates/obs/")
            && code.contains("Instant::now()")
            && !a.suppressed(i, RULE_NO_INSTANT)
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: line_no,
                rule: RULE_NO_INSTANT,
                msg: "raw Instant::now() outside crates/obs; time through \
                      gar_obs::Stopwatch (or a span) so wall-clock reads stay \
                      observable and out of deterministic artifacts"
                    .to_string(),
            });
        }

        // relaxed: all crates.
        if code.contains("Ordering::Relaxed")
            && !a.has_relaxed_justification(i)
            && !a.suppressed(i, RULE_RELAXED)
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: line_no,
                rule: RULE_RELAXED,
                msg: format!(
                    "Ordering::Relaxed without a `// relaxed: <why>` justification \
                     within {RELAXED_WINDOW} lines"
                ),
            });
        }

        // no-raw-net: sockets belong to crates/serve; within it, raw
        // stream reads belong to the frame codec.
        if !a.suppressed(i, RULE_NO_RAW_NET) {
            if !rel.starts_with("crates/serve/") {
                if let Some(what) = raw_net_token(code) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: line_no,
                        rule: RULE_NO_RAW_NET,
                        msg: format!(
                            "raw `{what}` outside crates/serve; network I/O lives in the \
                             serving crate so every frame passes the MAX_FRAME_BYTES guard \
                             in gar_serve::protocol"
                        ),
                    });
                }
            } else if rel != FRAME_CODEC_FILE {
                if let Some(what) = raw_stream_read(code) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: line_no,
                        rule: RULE_NO_RAW_NET,
                        msg: format!(
                            "raw `{what}` outside {FRAME_CODEC_FILE}; read frames through \
                             protocol::read_frame so the length is checked against \
                             MAX_FRAME_BYTES before any allocation"
                        ),
                    });
                }
            }
        }
    }

    if in_hash_order_scope(rel) {
        findings.extend(hash_order_rule(rel, &a));
    }

    findings.sort_by_key(|f| f.line);
    findings
}

fn in_hash_order_scope(rel: &str) -> bool {
    HASH_ORDER_SCOPE.iter().any(|scope| {
        if let Some(dir) = scope.strip_suffix('/') {
            rel.starts_with(dir) && rel.len() > dir.len()
        } else {
            rel == *scope
        }
    })
}

/// Declaration-site tracking: collect every identifier declared (or
/// received as a parameter/field) with a `HashMap`/`HashSet` type in
/// this file, then flag iteration over any of them in non-test code.
fn hash_order_rule(rel: &str, a: &Analysis) -> Vec<Finding> {
    let mut names: Vec<String> = Vec::new();
    for code in &a.code {
        if !mentions_hash_type(code) {
            continue;
        }
        if let Some(name) = declared_name(code) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }

    let mut findings = Vec::new();
    for (i, code) in a.code.iter().enumerate() {
        if a.in_test[i] || a.suppressed(i, RULE_HASH_ORDER) {
            continue;
        }
        for name in &names {
            if iterates(code, name) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: RULE_HASH_ORDER,
                    msg: format!(
                        "iteration over hash collection `{name}` feeding wire/report \
                         construction; hash order is nondeterministic — sort first or \
                         use an ordered structure"
                    ),
                });
                break;
            }
        }
    }
    findings
}

/// Returns the offending call (`.recv()` or `.wait(`) when the line
/// contains a blocking receive/wait with no deadline path. `.recv()` is
/// allowed on the `ctx` receiver by convention: `NodeCtx::recv` *is* the
/// deadline-aware wrapper (it polls `recv_timeout` in poison-checked
/// slices). The `_timeout`/`_deadline` variants never match — the
/// patterns require the opening paren right after the bare name.
fn blocking_call_without_deadline(code: &str) -> Option<&'static str> {
    if code.contains(".wait(") {
        return Some(".wait(");
    }
    let mut from = 0;
    while let Some(rel) = code[from..].find(".recv()") {
        let pos = from + rel;
        if receiver_ident(&code[..pos]) != "ctx" {
            return Some(".recv()");
        }
        from = pos + ".recv()".len();
    }
    None
}

/// The identifier segment immediately preceding a method call:
/// `self.ctx` → "ctx", `rx` → "rx", `self.inbox` → "inbox".
fn receiver_ident(before: &str) -> &str {
    let start = before
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(before.len());
    &before[start..]
}

fn starts_with_hash_type(ty: &str) -> bool {
    let ty = ty.strip_prefix('&').unwrap_or(ty).trim_start();
    let ty = ty.strip_prefix("mut ").unwrap_or(ty).trim_start();
    ["FxHashMap", "FxHashSet", "HashMap", "HashSet"]
        .iter()
        .any(|t| ty.starts_with(t) && !is_ident_char(ty[t.len()..].chars().next().unwrap_or('<')))
}

fn mentions_hash_type(code: &str) -> bool {
    ["FxHashMap", "FxHashSet", "HashMap", "HashSet"]
        .iter()
        .any(|t| contains_token(code, t))
}

/// Extracts the declared identifier from a line that mentions a hash
/// type: `let [mut] NAME ...`, or `NAME: [&][mut ]...Hash...` for
/// parameters and struct fields. Returns None for `use` lines, return
/// types and other non-declarations.
fn declared_name(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return None;
    }
    // `let [mut] NAME` wins when present (covers `let x: T = ..` and
    // `let x = FxHashMap::default()`), but only when the *top-level*
    // type is the hash collection — `let v: Vec<FxHashSet<u32>> = ..`
    // iterates deterministically and must not poison the name.
    if let Some(pos) = find_token(code, "let") {
        let rest = code[pos + 3..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
        if !name.is_empty() {
            let after = rest[name.len()..].trim_start();
            let top_level = if let Some(ann) = after.strip_prefix(':') {
                // Annotated: check the annotation's outermost type.
                let ty = ann.split('=').next().unwrap_or(ann).trim();
                starts_with_hash_type(ty)
            } else if let Some(rhs) = after.strip_prefix('=') {
                // Unannotated: `let m = FxHashMap::default()` etc.
                starts_with_hash_type(rhs.trim_start())
            } else {
                false
            };
            return top_level.then_some(name);
        }
    }
    // Parameter / field: the identifier before the `:` that precedes the
    // hash type token.
    for ty in ["FxHashMap", "FxHashSet", "HashMap", "HashSet"] {
        let Some(tpos) = find_token(code, ty) else {
            continue;
        };
        let before = code[..tpos].trim_end();
        // Skip type-path prefixes (`gar_types::FxHashMap<..>`) and
        // return types (`-> FxHashMap<..>`).
        if before.ends_with("::") || before.ends_with("->") {
            return None;
        }
        let before = before
            .strip_suffix("mut")
            .map(str::trim_end)
            .unwrap_or(before);
        let before = before
            .strip_suffix('&')
            .map(str::trim_end)
            .unwrap_or(before);
        let before = match before.strip_suffix(':') {
            Some(b) => b.trim_end(),
            None => return None,
        };
        let name: String = before
            .chars()
            .rev()
            .take_while(|c| is_ident_char(*c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if !name.is_empty() && !name.chars().next().unwrap().is_ascii_digit() {
            return Some(name);
        }
    }
    None
}

/// Does this line iterate `name`? Either a `for .. in` whose iterable
/// mentions the identifier, or a direct iterator-adaptor call on it.
fn iterates(code: &str, name: &str) -> bool {
    for suffix in [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ] {
        let pat = format!("{name}{suffix}");
        if let Some(pos) = code.find(&pat) {
            // Reject partial-identifier matches (`sorted_groups.iter()`
            // must not match name `groups`).
            let pre_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
            if pre_ok {
                return true;
            }
        }
    }
    if let Some(for_pos) = find_token(code, "for") {
        let after_for = &code[for_pos..];
        if let Some(in_rel) = find_token(after_for, "in") {
            let iterable = &after_for[in_rel + 2..];
            // `for x in map` / `for x in &map` / `for (k, v) in &mut map`
            if find_token(iterable, name).is_some() {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Source analysis: comment stripping + block context.
// ---------------------------------------------------------------------

struct Analysis {
    /// Raw lines (suppression and justification comments live here).
    raw: Vec<String>,
    /// Comment-stripped lines (all rule matching happens here).
    code: Vec<String>,
    /// Line is inside a `#[cfg(test)]`-gated block.
    in_test: Vec<bool>,
    /// Every `.wait(` occurrence on the line sits inside a
    /// `while`/`loop` block (char-accurate; true when no wait present).
    wait_in_loop: Vec<bool>,
}

impl Analysis {
    fn of(src: &str) -> Analysis {
        let raw: Vec<String> = src.lines().map(str::to_string).collect();
        let code = strip_comments(&raw);

        // Block scanner: text since the last `;`/`{`/`}` is the pending
        // "header"; when a `{` opens, the header decides whether the new
        // block is a loop (token `while`/`loop`) or test-gated
        // (`#[cfg(test)]` / `#[cfg(all(test` attribute in the header).
        struct Block {
            is_loop: bool,
            is_test: bool,
        }
        let mut stack: Vec<Block> = Vec::new();
        let mut pending = String::new();
        let mut in_test = Vec::with_capacity(code.len());
        let mut wait_in_loop = Vec::with_capacity(code.len());

        for line in &code {
            // Byte offsets of `.wait(` on this line; the loop check is
            // taken at each occurrence's position so same-line openings
            // (`while p() { g = cv.wait(g); }`) are seen correctly.
            let wait_positions: Vec<usize> = {
                let mut v = Vec::new();
                let mut from = 0;
                while let Some(rel) = line[from..].find(".wait(") {
                    v.push(from + rel);
                    from += rel + 1;
                }
                v
            };
            let test_at_start = stack.iter().any(|b| b.is_test);
            let mut all_waits_looped = true;

            for (pos, ch) in line.char_indices() {
                if wait_positions.contains(&pos) && !stack.iter().any(|b| b.is_loop) {
                    all_waits_looped = false;
                }
                match ch {
                    '{' => {
                        let is_loop = find_token(&pending, "while").is_some()
                            || find_token(&pending, "loop").is_some();
                        let is_test =
                            pending.contains("#[cfg(test)") || pending.contains("#[cfg(all(test");
                        let parent_test = stack.last().map(|b| b.is_test).unwrap_or(false);
                        stack.push(Block {
                            is_loop,
                            is_test: is_test || parent_test,
                        });
                        pending.clear();
                    }
                    '}' => {
                        stack.pop();
                        pending.clear();
                    }
                    ';' => pending.clear(),
                    c => pending.push(c),
                }
            }
            pending.push(' ');
            // A line counts as test code if it is inside the region at
            // either end, so closing-brace lines stay exempt.
            in_test.push(test_at_start || stack.iter().any(|b| b.is_test));
            wait_in_loop.push(all_waits_looped);
        }

        Analysis {
            raw,
            code,
            in_test,
            wait_in_loop,
        }
    }

    /// `// lint:allow(<rule>): reason` on line `i` or anywhere in the
    /// contiguous comment block directly above it. The trailing colon is
    /// part of the pattern: a reason is mandatory.
    fn suppressed(&self, i: usize, rule: &str) -> bool {
        let pat = format!("lint:allow({rule}):");
        if self.raw[i].contains(&pat) {
            return true;
        }
        let mut j = i;
        while j > 0 && self.raw[j - 1].trim_start().starts_with("//") {
            j -= 1;
            if self.raw[j].contains(&pat) {
                return true;
            }
        }
        false
    }

    /// A `relaxed:` marker (comment text) on the line or within the
    /// preceding window.
    fn has_relaxed_justification(&self, i: usize) -> bool {
        let lo = i.saturating_sub(RELAXED_WINDOW);
        self.raw[lo..=i]
            .iter()
            .any(|l| l.to_ascii_lowercase().contains("relaxed:"))
    }
}

/// Strips `//` line comments and `/* */` block comments (tracking
/// multi-line block comments), leaving string/char literal contents in
/// place but protecting `//` and `/*` sequences inside them. Lifetimes
/// (`'a`) are distinguished from char literals heuristically.
fn strip_comments(raw: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(raw.len());
    let mut in_block_comment = false;
    for line in raw {
        let mut code = String::with_capacity(line.len());
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        let mut in_string = false;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            if in_block_comment {
                if c == '*' && next == Some('/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_string {
                code.push(c);
                if c == '\\' {
                    if let Some(n) = next {
                        code.push(n);
                        i += 1;
                    }
                } else if c == '"' {
                    in_string = false;
                }
                i += 1;
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    code.push(c);
                    i += 1;
                }
                '\'' => {
                    // Char literal if it closes within a couple of
                    // characters; otherwise a lifetime.
                    let is_char =
                        matches!((next, bytes.get(i + 2)), (Some('\\'), _) | (_, Some('\'')));
                    if is_char {
                        // Consume until the closing quote (bounded).
                        code.push(c);
                        i += 1;
                        let mut consumed = 0;
                        while i < bytes.len() && consumed < 4 {
                            let cc = bytes[i];
                            code.push(cc);
                            i += 1;
                            consumed += 1;
                            if cc == '\\' && i < bytes.len() {
                                code.push(bytes[i]);
                                i += 1;
                            } else if cc == '\'' {
                                break;
                            }
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '/' if next == Some('/') => break,
                '/' if next == Some('*') => {
                    in_block_comment = true;
                    i += 2;
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(code);
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte position of `token` in `code` as a whole word (not part of a
/// longer identifier), or None.
fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(rel) = code[start..].find(token) {
        let pos = start + rel;
        let pre_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
        let end = pos + token.len();
        let post_ok = end >= code.len() || !is_ident_char(code[end..].chars().next().unwrap());
        if pre_ok && post_ok {
            return Some(pos);
        }
        start = pos + token.len();
    }
    None
}

/// `contains_token` including generic positions (`FxHashMap<K, V>`).
fn contains_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// The socket vocabulary banned outside `crates/serve`. `std::net` is a
/// path fragment rather than an identifier, so a plain substring match
/// is the right test for it.
fn raw_net_token(code: &str) -> Option<&'static str> {
    if code.contains("std::net") {
        return Some("std::net");
    }
    ["TcpListener", "TcpStream", "UdpSocket"]
        .into_iter()
        .find(|t| contains_token(code, t))
}

/// Bulk stream reads banned inside `crates/serve` outside the frame
/// codec. Method-call syntax only: free functions like `std::fs::read`
/// have `::` (not `.`) before the name and stay legal.
fn raw_stream_read(code: &str) -> Option<&'static str> {
    [".read_exact(", ".read_to_end(", ".read("]
        .into_iter()
        .find(|t| code.contains(t))
        .map(|t| t.trim_start_matches('.').trim_end_matches('('))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ----- wait-loop ---------------------------------------------------

    /// The acceptance-criteria seeded violation: a bare `condvar.wait()`
    /// outside any generation-checked loop must be flagged.
    #[test]
    fn seeded_bare_wait_is_flagged() {
        let src = "\
fn broken(cv: &Condvar, m: &Mutex<State>) {
    let s = m.lock();
    let _s = cv.wait(s);
}
";
        let f = lint_source("crates/cluster/src/collective.rs", src);
        // In the cluster crate a bare wait violates both the predicate
        // re-check rule and the deadline rule.
        assert_eq!(rules(&f), vec![RULE_WAIT_LOOP, RULE_NO_DEADLINE], "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn wait_in_while_loop_is_clean() {
        let src = "\
fn ok(cv: &Condvar, m: &Mutex<State>, my_gen: u64) {
    let mut s = m.lock();
    while s.gen == my_gen {
        // lint:allow(no-deadline): fixture pins only the wait-loop rule
        s = cv.wait(s);
    }
}
";
        assert!(lint_source("crates/cluster/src/collective.rs", src).is_empty());
    }

    #[test]
    fn wait_in_bare_loop_is_clean() {
        // `loop { .. break; }` re-checks its predicate via the break
        // condition; accepted like `while`.
        let src = "\
fn ok(cv: &Condvar, m: &Mutex<State>) {
    let mut s = m.lock();
    loop {
        if s.ready { break; }
        // lint:allow(no-deadline): fixture pins only the wait-loop rule
        s = cv.wait(s);
    }
}
";
        assert!(lint_source("crates/cluster/src/sched.rs", src).is_empty());
    }

    #[test]
    fn wait_same_line_as_while_is_clean() {
        let src = "\
// lint:allow(no-deadline): fixture pins only the wait-loop rule
fn ok() { while p() { g = cv.wait(g); } }
";
        assert!(lint_source("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn wait_in_for_loop_is_still_flagged() {
        // A `for` loop runs a fixed iteration count; it does not
        // re-check the waited-on predicate.
        let src = "\
fn broken(cv: &Condvar, m: &Mutex<State>) {
    for _ in 0..2 {
        // lint:allow(no-deadline): fixture pins only the wait-loop rule
        let _s = cv.wait(m.lock());
    }
}
";
        let f = lint_source("crates/cluster/src/x.rs", src);
        assert_eq!(rules(&f), vec![RULE_WAIT_LOOP]);
    }

    #[test]
    fn bare_wait_in_test_module_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn scenario(cv: &Condvar, m: &Mutex<bool>) {
        let _g = cv.wait(m.lock());
    }
}
";
        assert!(lint_source("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_requires_reason() {
        let with_reason = "\
fn shim(cv: &Condvar, g: Guard) {
    // lint:allow(wait-loop): std passthrough; callers loop
    // lint:allow(no-deadline): raw primitive the deadline wrapper uses
    let _g = cv.wait(g);
}
";
        assert!(lint_source("crates/cluster/src/sync.rs", with_reason).is_empty());

        let without_reason = "\
fn shim(cv: &Condvar, g: Guard) {
    // lint:allow(wait-loop)
    // lint:allow(no-deadline): raw primitive the deadline wrapper uses
    let _g = cv.wait(g);
}
";
        let f = lint_source("crates/cluster/src/sync.rs", without_reason);
        assert_eq!(rules(&f), vec![RULE_WAIT_LOOP]);
    }

    #[test]
    fn wait_in_comment_or_string_is_ignored() {
        let src = "\
fn doc() {
    // callers must not use cv.wait( outside a loop
    let s = \"cv.wait(x)\";
    let _ = s;
}
";
        // The comment is stripped; the string literal mention has no
        // receiver and `.wait(` *is* present in the literal — the rule
        // deliberately tolerates this rare false positive, so pin the
        // current (flagging) behavior for the string case only.
        let f = lint_source("crates/mining/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    // ----- cluster-unwrap ----------------------------------------------

    #[test]
    fn unwrap_in_cluster_non_test_is_flagged() {
        let src = "fn f() { let x = g().unwrap(); h(x); }\n";
        let f = lint_source("crates/cluster/src/runner.rs", src);
        assert_eq!(rules(&f), vec![RULE_CLUSTER_UNWRAP]);
    }

    #[test]
    fn expect_in_cluster_non_test_is_flagged() {
        let src = "fn f() { let x = g().expect(\"boom\"); h(x); }\n";
        let f = lint_source("crates/cluster/src/runner.rs", src);
        assert_eq!(rules(&f), vec![RULE_CLUSTER_UNWRAP]);
    }

    #[test]
    fn unwrap_outside_cluster_is_not_flagged() {
        let src = "fn f() { let x = g().unwrap(); h(x); }\n";
        assert!(lint_source("crates/mining/src/report.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f() { let x = m.lock().unwrap_or_else(|e| e.into_inner()); drop(x); }\n";
        assert!(lint_source("crates/cluster/src/sync.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_cluster_tests_is_exempt() {
        let src = "\
#[cfg(all(test, not(gar_loom)))]
mod tests {
    #[test]
    fn t() {
        run().unwrap();
    }
}
";
        assert!(lint_source("crates/cluster/src/collective.rs", src).is_empty());
    }

    // ----- no-deadline --------------------------------------------------

    #[test]
    fn raw_channel_recv_in_cluster_is_flagged() {
        let src = "fn pump(rx: &Receiver<Envelope>) { let env = rx.recv(); use_it(env); }\n";
        let f = lint_source("crates/cluster/src/runner.rs", src);
        assert_eq!(rules(&f), vec![RULE_NO_DEADLINE]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn field_recv_in_cluster_is_flagged() {
        // `self.inbox.recv()` bypasses the deadline-aware NodeCtx::recv.
        let src = "fn pump(&self) { let env = self.inbox.recv(); use_it(env); }\n";
        let f = lint_source("crates/cluster/src/node.rs", src);
        assert_eq!(rules(&f), vec![RULE_NO_DEADLINE]);
    }

    #[test]
    fn ctx_recv_is_the_deadline_aware_api_and_clean() {
        // NodeCtx::recv *is* the deadline-aware wrapper; both the local
        // binding and the field form are accepted.
        for src in [
            "fn f(ctx: &NodeCtx) { let env = ctx.recv()?; use_it(env); }\n",
            "fn f(&self) { let env = self.ctx.recv()?; use_it(env); }\n",
        ] {
            assert!(
                lint_source("crates/cluster/src/runner.rs", src).is_empty(),
                "{src}"
            );
        }
    }

    #[test]
    fn recv_timeout_and_wait_timeout_are_clean() {
        let src = "\
fn poll(&self) {
    let a = self.inbox.recv_timeout(SLICE);
    let (g, expired) = cv.wait_timeout(s, remaining);
    use_it(a, g, expired);
}
";
        assert!(lint_source("crates/cluster/src/node.rs", src).is_empty());
    }

    #[test]
    fn recv_outside_cluster_is_not_flagged() {
        let src = "fn f(rx: &Receiver<u64>) { let v = rx.recv(); use_it(v); }\n";
        assert!(lint_source("crates/mining/src/parallel/common.rs", src).is_empty());
    }

    #[test]
    fn recv_in_cluster_tests_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(rx: &Receiver<u64>) {
        let _ = rx.recv();
    }
}
";
        assert!(lint_source("crates/cluster/src/node.rs", src).is_empty());
    }

    #[test]
    fn no_deadline_suppression_with_reason_is_honored() {
        let src = "\
fn drain(rx: &Receiver<u64>) {
    // lint:allow(no-deadline): drain after every sender has exited
    let v = rx.recv();
    use_it(v);
}
";
        assert!(lint_source("crates/cluster/src/runner.rs", src).is_empty());
    }

    // ----- no-instant ---------------------------------------------------

    #[test]
    fn instant_now_outside_obs_is_flagged() {
        for src in [
            "fn f() { let t = Instant::now(); use_it(t); }\n",
            "fn f() { let t = std::time::Instant::now(); use_it(t); }\n",
        ] {
            let f = lint_source("crates/mining/src/report.rs", src);
            assert_eq!(rules(&f), vec![RULE_NO_INSTANT], "{src}");
        }
    }

    #[test]
    fn instant_now_inside_obs_is_the_sanctioned_clock() {
        let src = "fn f() { let t = Instant::now(); use_it(t); }\n";
        assert!(lint_source("crates/obs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn stopwatch_usage_is_clean() {
        let src = "fn f() { let t = Stopwatch::start(); use_it(t.elapsed()); }\n";
        assert!(lint_source("crates/cli/src/commands/mine.rs", src).is_empty());
    }

    #[test]
    fn instant_now_in_tests_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() {
        let _t = Instant::now();
    }
}
";
        assert!(lint_source("crates/cluster/src/runner.rs", src).is_empty());
    }

    #[test]
    fn instant_now_suppression_with_reason_is_honored() {
        let src = "\
fn f() {
    // lint:allow(no-instant): virtual clock shim under --cfg gar_loom
    let t = Instant::now();
    use_it(t);
}
";
        assert!(lint_source("crates/cluster/src/collective.rs", src).is_empty());
    }

    // ----- no-raw-net ---------------------------------------------------

    #[test]
    fn raw_sockets_outside_serve_are_flagged() {
        for src in [
            "use std::net::TcpStream;\n",
            "fn f(addr: &str) { let s = TcpStream::connect(addr); use_it(s); }\n",
            "fn f() { let l = TcpListener::bind(\"127.0.0.1:0\"); use_it(l); }\n",
            "fn f() { let u = UdpSocket::bind(\"127.0.0.1:0\"); use_it(u); }\n",
        ] {
            let f = lint_source("crates/mining/src/parallel/hhpgm.rs", src);
            assert_eq!(rules(&f), vec![RULE_NO_RAW_NET], "{src}");
        }
    }

    #[test]
    fn sockets_inside_serve_are_the_sanctioned_transport() {
        let src = "\
use std::net::{TcpListener, TcpStream};
fn f(l: &TcpListener) {
    let s = l.accept();
    use_it(s);
}
";
        assert!(lint_source("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn raw_stream_reads_inside_serve_are_flagged_outside_the_codec() {
        for src in [
            "fn f(s: &mut TcpStream) { s.read_exact(&mut [0u8; 4]).ok(); }\n",
            "fn f(s: &mut TcpStream) { let mut v = vec![]; s.read_to_end(&mut v).ok(); }\n",
            "fn f(s: &mut TcpStream) { let mut b = [0u8; 64]; s.read(&mut b).ok(); }\n",
        ] {
            let f = lint_source("crates/serve/src/client.rs", src);
            assert_eq!(rules(&f), vec![RULE_NO_RAW_NET], "{src}");
        }
    }

    #[test]
    fn the_frame_codec_itself_may_read_raw_bytes() {
        let src = "fn f(r: &mut impl Read, b: &mut [u8]) { r.read(b).ok(); }\n";
        assert!(lint_source("crates/serve/src/protocol.rs", src).is_empty());
    }

    #[test]
    fn fs_read_free_function_is_not_a_stream_read() {
        let src = "fn f(p: &Path) { let b = std::fs::read(p); use_it(b); }\n";
        assert!(lint_source("crates/serve/src/store.rs", src).is_empty());
    }

    #[test]
    fn raw_net_in_tests_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() {
        let _s = TcpStream::connect(\"127.0.0.1:1\");
    }
}
";
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_net_suppression_with_reason_is_honored() {
        let src = "\
fn f() {
    // lint:allow(no-raw-net): doc example rendered, never compiled
    let s = TcpStream::connect(\"127.0.0.1:1\");
    use_it(s);
}
";
        assert!(lint_source("crates/cli/src/commands/serve.rs", src).is_empty());
    }

    // ----- relaxed ------------------------------------------------------

    #[test]
    fn relaxed_without_justification_is_flagged() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let f = lint_source("crates/cluster/src/stats.rs", src);
        assert_eq!(rules(&f), vec![RULE_RELAXED]);
    }

    #[test]
    fn relaxed_with_nearby_comment_is_clean() {
        let src = "\
fn f(c: &AtomicU64) {
    // relaxed: independent counter, read only after the worker joins
    c.fetch_add(1, Ordering::Relaxed);
}
";
        assert!(lint_source("crates/cluster/src/stats.rs", src).is_empty());
    }

    #[test]
    fn relaxed_comment_covers_a_window_of_sites() {
        let src = "\
fn snapshot(&self) -> Stats {
    // relaxed: all counters are independent and the reader runs after
    // every writer has been joined, so no inter-counter ordering exists.
    Stats {
        a: self.a.load(Ordering::Relaxed),
        b: self.b.load(Ordering::Relaxed),
        c: self.c.load(Ordering::Relaxed),
    }
}
";
        assert!(lint_source("crates/cluster/src/stats.rs", src).is_empty());
    }

    #[test]
    fn seqcst_needs_no_comment() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::SeqCst); }\n";
        assert!(lint_source("crates/cluster/src/stats.rs", src).is_empty());
    }

    // ----- hash-order ---------------------------------------------------

    #[test]
    fn hash_map_iteration_in_scope_is_flagged() {
        let src = "\
fn encode(support: &FxHashMap<Itemset, u64>, buf: &mut Vec<u8>) {
    for (k, v) in support {
        push(buf, k, v);
    }
}
";
        let f = lint_source("crates/mining/src/wire.rs", src);
        assert_eq!(rules(&f), vec![RULE_HASH_ORDER]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hash_map_adaptor_iteration_is_flagged() {
        for call in [
            "support.iter()",
            "support.keys()",
            "support.values()",
            "support.drain(..)",
        ] {
            let src = format!(
                "fn f() {{ let support: FxHashMap<u32, u64> = make(); let v: Vec<_> = {call}.collect(); use_it(v); }}\n"
            );
            let f = lint_source("crates/mining/src/report.rs", &src);
            assert_eq!(rules(&f), vec![RULE_HASH_ORDER], "{call}");
        }
    }

    #[test]
    fn hash_map_lookup_is_clean() {
        let src = "\
fn f(support: &FxHashMap<Itemset, u64>, key: &Itemset) -> u64 {
    support.get(key).copied().unwrap_or(0)
}
";
        assert!(lint_source("crates/mining/src/parallel/rules.rs", src).is_empty());
    }

    #[test]
    fn similarly_named_vec_is_not_confused_with_the_map() {
        let src = "\
fn f() {
    let groups: FxHashMap<u32, u64> = make();
    let sorted_groups: Vec<_> = order(&groups);
    for g in sorted_groups.iter() {
        use_it(g);
    }
}
";
        assert!(lint_source("crates/mining/src/parallel/duplicate.rs", src).is_empty());
    }

    #[test]
    fn vec_of_hash_sets_iterates_deterministically() {
        // Iterating the outer Vec is index-ordered; only the inner sets
        // are hash-ordered, and they are probed, not iterated.
        let src = "\
fn f(n: usize) {
    let mut owner_roots: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    for s in owner_roots.iter_mut() {
        s.clear();
    }
}
";
        assert!(lint_source("crates/mining/src/parallel/hhpgm.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_outside_scope_is_not_flagged() {
        let src = "\
fn f() {
    let seen: FxHashSet<u32> = make();
    for s in &seen {
        use_it(s);
    }
}
";
        assert!(lint_source("crates/mining/src/counter/hashmap.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_with_suppression_is_clean() {
        let src = "\
fn f() {
    let mut groups: FxHashMap<u32, Vec<usize>> = make();
    // lint:allow(hash-order): collected into a Vec and sorted below
    for (k, v) in groups.drain() {
        push(k, v);
    }
}
";
        assert!(lint_source("crates/mining/src/parallel/duplicate.rs", src).is_empty());
    }

    // ----- analysis internals -------------------------------------------

    #[test]
    fn block_comments_are_stripped_across_lines() {
        let src = "\
fn f() {
    /* a block comment mentioning cv.wait( spanning
       multiple lines with Ordering::Relaxed inside */
    real();
}
";
        assert!(lint_source("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn lifetime_ticks_do_not_derail_the_scanner() {
        let src = "\
fn f<'a>(x: &'a FxHashMap<u32, u64>) -> Option<&'a u64> {
    x.get(&0)
}
";
        assert!(lint_source("crates/mining/src/wire.rs", src).is_empty());
    }

    #[test]
    fn declared_name_extraction() {
        assert_eq!(
            declared_name(
                "    let mut groups: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();"
            ),
            Some("groups".to_string())
        );
        assert_eq!(
            declared_name("    index: &FxHashMap<Itemset, usize>,"),
            Some("index".to_string())
        );
        assert_eq!(
            declared_name("use gar_types::{FxHashMap, FxHashSet};"),
            None
        );
        assert_eq!(declared_name(") -> FxHashMap<Itemset, u64> {"), None);
    }
}
