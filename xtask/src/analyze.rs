//! Drivers for the gar-analyze static-analysis pass.
//!
//! * `cargo xtask lint` — the legacy rule set (the six original line
//!   rules plus `det-taint`), no baseline. Kept as the fast pre-commit
//!   habit and the `lint` CI job.
//! * `cargo xtask analyze [--check] [--json FILE]` — the full catalog,
//!   filtered through the checked-in `ANALYZE_BASELINE.txt`. `--check`
//!   is CI mode: any finding not in the baseline fails the run, and so
//!   does a stale baseline entry (so the file can only shrink toward
//!   empty). `--json` writes the `gar-analyze-v1` report consumed by
//!   the CI artifact upload.
//!
//! Exit codes (shared by both commands): 0 clean, 1 findings, 2
//! internal/usage error.

use gar_analyze::{analyze_root, Analysis, Baseline, BaselineOutcome, RuleSet};
use std::path::Path;

const BASELINE_FILE: &str = "ANALYZE_BASELINE.txt";

pub fn lint(root: &Path) -> u8 {
    let analysis = match analyze_root(root, RuleSet::Legacy) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: {e}");
            return 2;
        }
    };
    for f in &analysis.findings {
        println!("{f}");
    }
    summarize("lint", &analysis, analysis.findings.len());
    u8::from(!analysis.findings.is_empty())
}

pub fn run(root: &Path, args: &[String]) -> u8 {
    let mut check = false;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => match it.next() {
                Some(path) => json_out = Some(path.clone()),
                None => {
                    eprintln!("analyze: --json needs a file argument");
                    return 2;
                }
            },
            other => {
                eprintln!("analyze: unknown argument `{other}` (expected --check / --json FILE)");
                return 2;
            }
        }
    }

    let analysis = match analyze_root(root, RuleSet::All) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };
    let baseline = match Baseline::load(&root.join(BASELINE_FILE)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };
    let outcome = baseline.apply(analysis.findings.clone());

    if let Some(path) = &json_out {
        let json = gar_analyze::to_json(&analysis, &outcome);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("analyze: writing {path}: {e}");
            return 2;
        }
        println!("analyze: wrote JSON report to {path}");
    }

    report(&analysis, &outcome, check)
}

fn report(analysis: &Analysis, outcome: &BaselineOutcome, check: bool) -> u8 {
    for f in &outcome.new {
        println!("{f}");
    }
    if !outcome.baselined.is_empty() {
        println!(
            "analyze: {} finding(s) suppressed by {BASELINE_FILE}",
            outcome.baselined.len()
        );
    }
    for stale in &outcome.stale {
        println!(
            "analyze: stale baseline entry `{stale}` (no longer matches a finding — delete it)"
        );
    }
    summarize("analyze", analysis, outcome.new.len());

    let stale_fails = check && !outcome.stale.is_empty();
    if stale_fails {
        println!(
            "analyze: --check treats stale baseline entries as failures so \
             {BASELINE_FILE} only shrinks toward empty"
        );
    }
    u8::from(!outcome.new.is_empty() || stale_fails)
}

fn summarize(cmd: &str, analysis: &Analysis, reported: usize) {
    if reported == 0 {
        println!(
            "{cmd}: clean — {} file(s), {} function(s) indexed",
            analysis.files_scanned, analysis.fns_indexed
        );
    } else {
        println!(
            "{cmd}: {reported} finding(s) in {} file(s) scanned \
             (suppress with `// lint:allow(<rule>): <reason>` where justified)",
            analysis.files_scanned
        );
    }
}
