//! Repo automation, invoked as `cargo xtask <command>` (see
//! `.cargo/config.toml` for the alias).
//!
//! * `lint` — the legacy in-repo static analysis pass (concurrency and
//!   determinism rules the stock toolchain cannot express), now running
//!   on the `gar-analyze` lexer so string literals and comments can
//!   never trigger it.
//! * `analyze` — the full `gar-analyze` catalog: the lint rules plus
//!   the flow-aware `panic-path`, `lock-blocking` and `unsafe-audit`
//!   rules, filtered through the checked-in `ANALYZE_BASELINE.txt`.
//! * `loom` — model-checks the cluster collectives and the serve-layer
//!   epoch cell by rebuilding them on the `gar-modelcheck` virtual
//!   primitives (`--cfg gar_loom`).
//! * `chaos` — seeded fault-injection soak over the mining runtime
//!   (tolerated schedules must leave the output byte-identical).
//! * `serve-chaos` — seeded fault-injection soak over the serving layer
//!   (shard panics, connection resets, corrupt hot-swaps, overload
//!   bursts; `GAR_SERVE_CHAOS_SEEDS` pins the seed matrix).
//! * `bench` — the perf-regression gate: runs the pinned smoke matrix
//!   (see `crates/bench/src/bin/bench_gate.rs`) and, with `--check`,
//!   compares modeled execution times against the committed
//!   `BENCH_PR10.json` baseline; `--gate-wall` additionally gates
//!   wall-clock/modeled ratios (absolute 1.5× ceiling at 8 nodes plus
//!   a per-entry ratchet against the baseline's recorded ratios).
//! * `ci` — runs the whole CI job sequence locally, in the same order
//!   as `.github/workflows/ci.yml`, stopping at the first failure.
//! * `serve-smoke` — the serving-layer smoke: mine a tiny dataset,
//!   persist the rule store, serve it at 1 and 4 shards, drive it with
//!   the seeded `serve_load` generator, and assert byte-identical
//!   response transcripts plus per-shard metrics (see
//!   `crates/bench/src/bin/serve_load.rs`).
//! * `serve-bench` — the serve-layer perf gate: the batched
//!   single-root-heavy workload at 1 and 4 shards, ratcheted so 4-shard
//!   qps stays strictly above 1-shard qps (the PR-8 inversion fix) and
//!   batched 1-shard qps stays at least 2× the PR-4 single-query
//!   number; `--check` compares against the committed `BENCH_PR8.json`.
//! * `miri` — runs the UB interpreter over the unsafe-bearing crates
//!   when the `miri` component is installed; degrades to a skip
//!   otherwise (this build environment has no network to install it).
//! * `tsan` — ThreadSanitizer over the cluster tests when nightly +
//!   `rust-src` are available; degrades to a skip otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

mod analyze;
mod runners;

fn usage() -> &'static str {
    "usage: cargo xtask <command>\n\
     \n\
     commands:\n\
       ci            run the full CI job sequence locally (fmt, clippy,\n\
                     lint, analyze, test, loom, chaos, serve-chaos,\n\
                     bench --check --gate-wall, serve-smoke, serve-bench)\n\
       lint          run the legacy static-analysis rules (token-aware)\n\
       analyze [--check] [--json FILE]\n\
                     run the full gar-analyze catalog; --check is CI mode\n\
                     (baseline-gated: new findings and stale baseline\n\
                     entries both fail); --json writes a gar-analyze-v1\n\
                     report\n\
       loom          model-check the cluster collectives and the serve\n\
                     epoch cell (--cfg gar_loom)\n\
       chaos         seeded fault-injection soak (GAR_CHAOS_ITERS scales it)\n\
       serve-chaos   seeded serve-layer fault soak (GAR_SERVE_CHAOS_SEEDS\n\
                     pins the seed matrix)\n\
       bench [--check] [--gate-wall] [--tolerance F] [--out FILE]\n\
                     run the pinned smoke matrix; --check gates modeled\n\
                     times against the committed BENCH_PR10.json,\n\
                     --gate-wall additionally gates wall/modeled ratios\n\
       serve-smoke [--out FILE]\n\
                     mine → persist → serve → load-test; asserts deterministic\n\
                     transcripts and writes a gar-serve-bench-v1 baseline\n\
       serve-bench [--check] [--tolerance F] [--out FILE] [--baseline FILE]\n\
                     batched serve perf gate at 1 and 4 shards; --check gates\n\
                     against the committed BENCH_PR8.json (4-shard > 1-shard\n\
                     qps, batched >= 2x the PR4 single-query baseline)\n\
       miri [--strict]   run miri over unsafe-bearing crates (skip if unavailable)\n\
       tsan [--strict]   run ThreadSanitizer over cluster tests (skip if unavailable)\n\
     \n\
     --strict makes miri/tsan fail instead of skip when the toolchain\n\
     component is missing."
}

/// Workspace root: xtask always lives directly under it.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{}", usage());
            // Usage errors are 2; 1 is reserved for "findings/failures".
            return ExitCode::from(2);
        }
    };
    let code = match cmd {
        "lint" => analyze::lint(&repo_root()),
        "analyze" => analyze::run(&repo_root(), rest),
        "ci" => runners::ci(&repo_root(), rest),
        "loom" => runners::loom(&repo_root(), rest),
        "chaos" => runners::chaos(&repo_root(), rest),
        "serve-chaos" => runners::serve_chaos(&repo_root(), rest),
        "bench" => runners::bench(&repo_root(), rest),
        "serve-smoke" => runners::serve_smoke(&repo_root(), rest),
        "serve-bench" => runners::serve_bench(&repo_root(), rest),
        "miri" => runners::miri(&repo_root(), rest),
        "tsan" => runners::tsan(&repo_root(), rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            0
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            2
        }
    };
    ExitCode::from(code)
}
