//! Offline stand-in for the `rand 0.8` API subset this workspace uses.
//!
//! Callers depend on it under the name `rand` (Cargo dependency rename),
//! so `use rand::{Rng, SeedableRng}` and `rand::rngs::StdRng` compile
//! unchanged. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, but **not** bit-compatible with the
//! real `rand::rngs::StdRng` (ChaCha12). All workspace tests assert
//! statistical or same-seed-determinism properties, never exact values.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution of `rand`:
/// `f64`/`f32` uniform in `[0, 1)`, `bool` fair, integers uniform.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Uniform sample in `[lo, hi)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Lemire multiply-shift; the modulo bias at 2^-64 per draw
                // is far below anything the statistical tests resolve.
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

impl UniformInt for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The ergonomic sampling interface (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample in the half-open `range`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn gen_range_is_uniform_enough() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(6);
        let _ = r.gen_range(5u32..5);
    }
}
