//! Offline stand-in for the `criterion 0.5` API subset this workspace
//! uses. It is a fixed-budget timing loop, not a statistics engine: each
//! benchmark warms up briefly, then runs timed batches until a time
//! budget or the sample count is exhausted, and prints mean and minimum
//! per-iteration times. Good enough to compare the counter
//! implementations on one machine; not calibrated for regressions below
//! a few percent.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (`criterion::Criterion` subset).
pub struct Criterion {
    sample_size: usize,
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 30,
            measure_budget: Duration::from_millis(750),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, self.measure_budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.criterion.measure_budget, f);
        self
    }

    /// Ends the group (report flushing happens per-benchmark here).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

/// Hands the measured closure to the timing loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    min_iter: Duration,
    deadline: Instant,
}

impl Bencher {
    /// Times repeated calls of `f` until the sample budget is spent.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        loop {
            let start = Instant::now();
            let out = f();
            let dt = start.elapsed();
            std::hint::black_box(out);
            self.iters_done += 1;
            self.elapsed += dt;
            if dt < self.min_iter {
                self.min_iter = dt;
            }
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_one(label: &str, samples: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up pass: populate caches and lazy state, untimed.
    let mut warm = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        min_iter: Duration::MAX,
        deadline: Instant::now() + Duration::from_millis(100),
    };
    f(&mut warm);

    let per_sample = budget / samples.max(1) as u32;
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            min_iter: Duration::MAX,
            deadline: Instant::now() + per_sample,
        };
        f(&mut b);
        total_iters += b.iters_done;
        total_time += b.elapsed;
        if b.min_iter < best {
            best = b.min_iter;
        }
    }
    if total_iters == 0 {
        println!("{label}: no iterations completed");
        return;
    }
    let mean = total_time / total_iters as u32;
    println!("{label}: mean {mean:?}/iter, min {best:?}/iter ({total_iters} iters)");
}

/// Groups benchmark functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            sample_size: 2,
            measure_budget: Duration::from_millis(10),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion {
            sample_size: 1,
            measure_budget: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 2));
        group.finish();
    }
}
