//! Offline stand-in for the `bytes 1` API subset this workspace uses.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer (`Arc<Vec<u8>>`
//! underneath — clones share one allocation, which is what keeps the
//! cluster simulator's fan-out sends allocation-free, and freezing an
//! owned `Vec<u8>` moves it into the shared allocation without copying a
//! single payload byte). [`BytesMut`] is a growable builder that freezes
//! into a `Bytes`; its `split()` leaves the builder's capacity in place,
//! so the batch-flush idiom `buf.split().freeze()` reuses one allocation
//! across flushes. Zero-copy slicing of a sub-range is not implemented
//! because nothing in the workspace slices a `Bytes` without copying.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing nothing: the static slice is copied once into a
    /// shared allocation (the real crate points at the static data; the
    /// workspace only uses this for tiny test payloads).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Copies a slice into a fresh exact-size shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    /// Moves the vector into the shared allocation — no byte copy.
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        *self.data == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte builder, frozen into [`Bytes`] when complete.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Takes the accumulated bytes, leaving this builder empty but with
    /// its capacity intact (the `split().freeze()` idiom for reusable
    /// batch buffers: repeated flushes write into one warm allocation).
    pub fn split(&mut self) -> BytesMut {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf);
        self.buf.clear();
        BytesMut { buf: out }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian append operations (`bytes::BufMut` subset).
pub trait BufMut {
    /// Appends a `u32` in little-endian byte order.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a raw byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(7);
        b.put_slice(&[1, 2]);
        assert_eq!(b.len(), 14);
        let frozen = b.freeze();
        assert_eq!(&frozen[..4], &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(&frozen[4..12], &7u64.to_le_bytes());
        assert_eq!(&frozen[12..], &[1, 2]);
    }

    #[test]
    fn split_leaves_builder_empty_and_reusable() {
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        let first = b.split().freeze();
        assert!(b.is_empty());
        b.put_u32_le(2);
        let second = b.split().freeze();
        assert_eq!(&first[..], &1u32.to_le_bytes());
        assert_eq!(&second[..], &2u32.to_le_bytes());
    }

    #[test]
    fn split_retains_builder_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(&[7u8; 48]);
        let cap = b.buf.capacity();
        let flushed = b.split().freeze();
        assert_eq!(flushed.len(), 48);
        assert!(b.is_empty());
        assert_eq!(b.buf.capacity(), cap, "split must keep the warm buffer");
    }

    #[test]
    fn freeze_moves_without_copying() {
        let v = vec![3u8; 32];
        let ptr = v.as_ptr();
        let frozen = Bytes::from(v);
        assert_eq!(frozen.as_ref().as_ptr(), ptr, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(Bytes::from_static(b"xy"), Bytes::from(vec![b'x', b'y']));
    }

    #[test]
    fn slicing_through_deref() {
        let a = Bytes::from(vec![9u8; 10]);
        assert_eq!(a.len(), 10);
        assert_eq!(&a[..3], &[9, 9, 9]);
        assert!(!a.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from_static(b"a\n");
        assert_eq!(format!("{a:?}"), "b\"a\\n\"");
    }
}
