//! Offline stand-in for the `proptest 1` API subset this workspace uses.
//!
//! Random testing without shrinking: each `#[test]` inside [`proptest!`]
//! runs `cases` times with inputs drawn from the given strategies. On
//! failure the panic message carries the case's seed and the `Debug`
//! rendering of every generated argument, so any failure replays with
//! `GAR_PROPTEST_SEED=<seed> cargo test <name>`.
//!
//! Implemented surface: range strategies (`0u32..200`), tuple strategies,
//! [`Strategy::prop_map`], [`collection::vec`] / [`collection::btree_set`]
//! / [`collection::btree_map`], `num::u64::ANY`, `prop_assert!`,
//! `prop_assert_eq!`, `ProptestConfig::with_cases`, and early `return
//! Ok(())` from test bodies. Not implemented: shrinking, `prop_assume`,
//! `prop_oneof`, recursive strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, UniformInt};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// How many cases each property runs (subset of proptest's config).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Smaller than proptest's 256: no shrinker means failures print
        // whole inputs, and the heavy differential suites multiply this
        // by full mining runs. Override with GAR_PROPTEST_CASES.
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case. Construct through [`TestCaseError::fail`] or
/// the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: UniformInt + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// An inclusive length/size band for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi + 1)
        }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with a size in `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Sets can stall below the target size when the element space
            // is small; bail out after a bounded number of rejections
            // rather than looping forever (proptest does the same).
            let mut attempts = 0usize;
            while out.len() < n && attempts < 50 * (n + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < 50 * (n + 1) {
                out.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Numeric "any value" strategies (`proptest::num` subset).
pub mod num {
    /// Strategies over `u64`.
    pub mod u64 {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngCore;

        /// Every `u64`, uniformly.
        pub struct Any;

        /// Uniform over all of `u64`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn sample(&self, rng: &mut StdRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

/// Drives the cases of one property (used by the [`proptest!`] macro).
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    /// Builds a runner for the named property.
    pub fn new(config: &ProptestConfig, name: &str) -> TestRunner {
        let cases = std::env::var("GAR_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        // Stable per-property seed so every run explores the same inputs
        // (deterministic CI); perturb with GAR_PROPTEST_SEED to explore.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let base_seed = std::env::var("GAR_PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(h);
        TestRunner { cases, base_seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for one case.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.base_seed.wrapping_add(u64::from(case)))
    }

    /// Panics with a replayable report when `result` is a failure.
    pub fn check(&self, case: u32, result: Result<(), TestCaseError>, inputs: &str) {
        if let Err(TestCaseError(msg)) = result {
            panic!(
                "property failed at case {case}/{cases}: {msg}\n\
                 replay: GAR_PROPTEST_SEED={seed} (case offset {case})\n\
                 inputs:\n{inputs}",
                cases = self.cases,
                seed = self.base_seed,
            );
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $cfg;
            let runner = $crate::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let rendered = {
                    let mut s = String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), $arg));)+
                    s
                };
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.check(case, result, &rendered);
            }
        }
    )*};
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = crate::collection::vec(0u32..100, 3..8);
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    fn btree_set_respects_exact_size() {
        let strat = crate::collection::btree_set(0u32..40, 3..=3usize);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng).len(), 3);
        }
    }

    #[test]
    fn small_element_space_terminates() {
        let strat = crate::collection::btree_set(0u32..2, 5..=10usize);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(strat.sample(&mut rng).len() <= 2);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(strat.sample(&mut rng) <= 18);
        }
    }

    // The macro path itself, including early return and failure capture.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_in_range(x in 5u32..10, v in crate::collection::vec(0u32..3, 0..4)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() < 4);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert_eq!(v.iter().filter(|&&e| e > 2).count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_report_seed_and_inputs() {
        let config = ProptestConfig::with_cases(1);
        let runner = TestRunner::new(&config, "failures_report_seed_and_inputs");
        runner.check(0, Err(TestCaseError::fail("boom")), "  x = 1\n");
    }
}
