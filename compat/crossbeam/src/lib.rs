//! Offline stand-in for the `crossbeam 0.8` API subset this workspace
//! uses: unbounded MPSC channels, implemented over `std::sync::mpsc`.
//!
//! The cluster simulator gives every node one inbox (`Receiver`) and a
//! clone of every peer's `Sender` — a strict MPSC pattern, so std's
//! channel is a faithful substitute. (Real crossbeam channels are MPMC
//! and faster under contention; neither property is load-bearing here.)

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; clonable across threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half; owned by exactly one consumer.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    /// Carries the unsent message like crossbeam's.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender is gone and
    /// the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Queues `value`; errors only when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives, the deadline elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fan_in_delivery() {
        let (tx, rx) = unbounded::<usize>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_returns_message() {
        let (tx, rx) = unbounded::<String>();
        drop(rx);
        let err = tx.send("hello".into()).unwrap_err();
        assert_eq!(err.0, "hello");
    }
}
