//! Quickstart: mine generalized association rules from a hand-built
//! store taxonomy with the sequential Cumulate algorithm.
//!
//! Run with: `cargo run --release --example quickstart`

use gar::mining::rules::derive_rules;
use gar::mining::sequential::cumulate;
use gar::mining::MiningParams;
use gar::storage::PartitionedDatabase;
use gar::taxonomy::TaxonomyBuilder;
use gar::types::ItemId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The [SA95] running example taxonomy:
    //
    //   clothes(0) ─┬─ outerwear(1) ─┬─ jackets(3)
    //               │                └─ ski pants(4)
    //               └─ shirts(2)
    //   footwear(5) ─┬─ shoes(6)
    //                └─ hiking boots(7)
    let names = [
        "clothes",
        "outerwear",
        "shirts",
        "jackets",
        "ski pants",
        "footwear",
        "shoes",
        "hiking boots",
    ];
    let mut builder = TaxonomyBuilder::new(8);
    for (child, parent) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
        builder.edge(child, parent)?;
    }
    let taxonomy = builder.build()?;

    // Six purchase transactions over the leaf items.
    let item = |i: u32| ItemId(i);
    let transactions = vec![
        vec![item(2)],          // a shirt
        vec![item(3), item(7)], // jacket + hiking boots
        vec![item(4), item(7)], // ski pants + hiking boots
        vec![item(6)],          // shoes
        vec![item(6)],          // shoes
        vec![item(3)],          // a jacket
    ];
    let db = PartitionedDatabase::build_in_memory(1, transactions.into_iter())?;

    // Mine with 30% minimum support.
    let params = MiningParams::with_min_support(0.30);
    let output = cumulate(db.partition(0), &taxonomy, &params)?;

    println!(
        "Large itemsets (min support 30% of {} txns):",
        output.num_transactions
    );
    for (itemset, count) in output.all_large() {
        let labels: Vec<&str> = itemset.items().iter().map(|i| names[i.index()]).collect();
        println!("  {{{}}}  sup_cou = {count}", labels.join(", "));
    }

    // Derive rules at 60% confidence. Note the hierarchy at work: no raw
    // transaction contains "outerwear", yet rules about it emerge.
    println!("\nRules (min confidence 60%):");
    for rule in derive_rules(&output, 0.60, Some(&taxonomy)) {
        let fmt = |s: &gar::types::Itemset| {
            s.items()
                .iter()
                .map(|i| names[i.index()])
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  {} => {}   (support {:.0}%, confidence {:.0}%)",
            fmt(&rule.antecedent),
            fmt(&rule.consequent),
            rule.support * 100.0,
            rule.confidence * 100.0
        );
    }
    Ok(())
}
