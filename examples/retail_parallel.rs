//! Parallel mining of a synthetic retail dataset on a simulated
//! 8-node shared-nothing cluster with H-HPGM-FGD (the paper's best
//! algorithm), compared against sequential Cumulate.
//!
//! Run with: `cargo run --release --example retail_parallel`

use gar::cluster::ClusterConfig;
use gar::datagen::presets;
use gar::datagen::TransactionGenerator;
use gar::mining::parallel::mine_parallel;
use gar::mining::rules::derive_rules;
use gar::mining::sequential::cumulate;
use gar::mining::{Algorithm, MiningParams};
use gar::storage::PartitionedDatabase;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NODES: usize = 8;
    // The paper's R30F5 dataset at 1/50 scale: 64 000 transactions,
    // 600 items under 30 roots with fanout 5.
    let spec = presets::r30f5(7).scaled(0.02);
    println!(
        "dataset: {} ({} txns, {} items, {} roots, fanout {})",
        spec.name, spec.num_transactions, spec.num_items, spec.num_roots, spec.fanout
    );

    let mut generator = TransactionGenerator::new(&spec)?;
    let txns: Vec<_> = generator.by_ref().collect();
    let taxonomy = generator.into_taxonomy();

    // Hierarchy extension makes high-level itemsets combinatorially
    // frequent (every transaction touches several root categories), so
    // the large-itemset lattice keeps widening with k. The paper
    // evaluates per pass for the same reason; three passes show the full
    // pipeline without the lattice blow-up.
    let params = MiningParams::with_min_support(0.015).max_pass(3);

    // Sequential baseline.
    let seq_db = PartitionedDatabase::build_in_memory(1, txns.clone().into_iter())?;
    let t0 = Instant::now();
    let seq = cumulate(seq_db.partition(0), &taxonomy, &params)?;
    let seq_wall = t0.elapsed();

    // Parallel run: the transaction file spread over 8 node disks.
    let db = PartitionedDatabase::build_in_memory(NODES, txns.into_iter())?;
    // Scaled-down "256 MB": big enough that FGD has free space to copy
    // the hottest candidates into, small enough that most stay
    // hash-partitioned and real exchange traffic flows.
    let cluster = ClusterConfig::new(NODES, 1024 * 1024);
    let report = mine_parallel(Algorithm::HHpgmFgd, &db, &taxonomy, &params, &cluster)?;

    println!(
        "\nlarge itemsets found: {} (parallel) / {} (sequential)",
        report.output.num_large(),
        seq.num_large()
    );
    assert_eq!(
        report.output.num_large(),
        seq.num_large(),
        "parallel must match sequential"
    );

    println!("sequential wall time : {seq_wall:?}");
    println!(
        "parallel wall time   : {:?}  ({NODES} worker threads)",
        report.wall
    );
    println!(
        "modeled SP-2 time    : {:.2} s  (critical path over nodes)",
        report.modeled_seconds
    );

    println!("\nper-pass breakdown:");
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>12} {:>14}",
        "pass", "candidates", "duplicated", "large", "avg MB recv", "modeled (s)"
    );
    for p in &report.pass_reports {
        println!(
            "{:>4} {:>12} {:>12} {:>10} {:>12.3} {:>14.3}",
            p.k,
            p.num_candidates,
            p.num_duplicated,
            p.num_large,
            p.avg_mb_received(),
            p.modeled_seconds
        );
    }

    let rules = derive_rules(&report.output, 0.5, Some(&taxonomy));
    println!("\ntop rules at 50% confidence ({} total):", rules.len());
    for rule in rules.iter().take(10) {
        println!("  {rule}");
    }
    Ok(())
}
