//! The [SA95] R-interesting filter in action: mine a hierarchical
//! dataset, derive rules, and show how the interest measure strips the
//! rules that merely restate their generalizations. Also cross-checks
//! Cumulate against Stratify (the other [SA95] strategy).
//!
//! Run with: `cargo run --release --example interesting_rules`

use gar::datagen::presets;
use gar::datagen::TransactionGenerator;
use gar::mining::rules::{derive_rules, prune_uninteresting};
use gar::mining::sequential::{cumulate, stratify};
use gar::mining::MiningParams;
use gar::storage::PartitionedDatabase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = presets::r30f3(21).scaled(0.005);
    println!(
        "dataset {}: {} txns, {} items, fanout {}",
        spec.name, spec.num_transactions, spec.num_items, spec.fanout
    );
    let mut generator = TransactionGenerator::new(&spec)?;
    let txns: Vec<_> = generator.by_ref().collect();
    let taxonomy = generator.into_taxonomy();
    let db = PartitionedDatabase::build_in_memory(1, txns.into_iter())?;

    let params = MiningParams::with_min_support(0.01).max_pass(2);
    let output = cumulate(db.partition(0), &taxonomy, &params)?;

    // Stratify is a different counting schedule over the same answer.
    let strat = stratify(db.partition(0), &taxonomy, &params, 2)?;
    assert_eq!(output.num_large(), strat.num_large());
    println!(
        "{} large itemsets (Cumulate and Stratify agree exactly)",
        output.num_large()
    );

    let rules = derive_rules(&output, 0.6, Some(&taxonomy));
    println!("\n{} rules at 60% confidence", rules.len());

    for r_factor in [1.1, 1.5, 2.0] {
        let kept = prune_uninteresting(&rules, &output, &taxonomy, r_factor);
        println!(
            "R = {r_factor}: {} rules survive ({:.0}% filtered as restating an ancestor rule)",
            kept.len(),
            100.0 * (rules.len() - kept.len()) as f64 / rules.len().max(1) as f64
        );
    }

    let interesting = prune_uninteresting(&rules, &output, &taxonomy, 1.5);
    println!("\nmost confident R-interesting rules:");
    for rule in interesting.iter().take(8) {
        println!("  {rule}");
    }
    Ok(())
}
