//! Head-to-head comparison of all six parallel algorithms on one
//! dataset — a miniature of the paper's Figure 14 / Table 6 story.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use gar::cluster::ClusterConfig;
use gar::datagen::presets;
use gar::datagen::TransactionGenerator;
use gar::mining::parallel::mine_parallel;
use gar::mining::{Algorithm, MiningParams};
use gar::storage::PartitionedDatabase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NODES: usize = 8;
    let spec = presets::r30f5(11).scaled(0.01);
    let mut generator = TransactionGenerator::new(&spec)?;
    let txns: Vec<_> = generator.by_ref().collect();
    let taxonomy = generator.into_taxonomy();
    let db = PartitionedDatabase::build_in_memory(NODES, txns.into_iter())?;

    // A deliberately modest memory budget so NPGM has to fragment and the
    // duplication algorithms have *some* free space to fill — the regime
    // the paper's evaluation section lives in.
    let params = MiningParams::with_min_support(0.008).max_pass(2);
    let cluster = ClusterConfig::new(NODES, 384 * 1024);

    println!(
        "dataset {} | {} txns | {NODES} nodes | minsup {:.1}% | pass 2 focus\n",
        spec.name,
        spec.num_transactions,
        params.min_support * 100.0
    );
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "algorithm",
        "large",
        "frags",
        "dup",
        "avg MB recv",
        "max/avg probe",
        "modeled (s)",
        "wall (ms)"
    );

    let mut baseline: Option<usize> = None;
    for alg in Algorithm::parallel_all() {
        let report = mine_parallel(alg, &db, &taxonomy, &params, &cluster)?;
        let p2 = report.pass(2).expect("pass 2 ran");
        let probes = p2.probes_per_node();
        let skew = gar::cluster::stats::skew_summary(&probes);
        let total_large = report.output.num_large();
        match baseline {
            None => baseline = Some(total_large),
            Some(b) => assert_eq!(b, total_large, "{alg} disagrees with the others"),
        }
        println!(
            "{:<12} {:>9} {:>10} {:>10} {:>12.3} {:>12.2}x {:>14.3} {:>10}",
            alg.name(),
            total_large,
            p2.num_fragments,
            p2.num_duplicated,
            p2.avg_mb_received(),
            skew.max_over_mean,
            report.modeled_seconds,
            report.wall.as_millis()
        );
    }
    println!("\n(all algorithms found the identical large itemsets)");
    Ok(())
}
