//! Workload-distribution analysis: how evenly do the hash-table probes
//! spread over the nodes? A miniature of the paper's Figure 15, with
//! ASCII bars.
//!
//! Run with: `cargo run --release --example skew_analysis`

use gar::cluster::stats::skew_summary;
use gar::cluster::ClusterConfig;
use gar::datagen::presets;
use gar::datagen::TransactionGenerator;
use gar::mining::parallel::mine_parallel;
use gar::mining::{Algorithm, MiningParams};
use gar::storage::PartitionedDatabase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NODES: usize = 8;
    let spec = presets::r30f5(3).scaled(0.01);
    let mut generator = TransactionGenerator::new(&spec)?;
    let txns: Vec<_> = generator.by_ref().collect();
    let taxonomy = generator.into_taxonomy();
    let db = PartitionedDatabase::build_in_memory(NODES, txns.into_iter())?;

    let params = MiningParams::with_min_support(0.008).max_pass(2);
    let cluster = ClusterConfig::new(NODES, 384 * 1024);

    println!("per-node sup_cou-increment probes at pass 2 ({NODES} nodes)\n");
    for alg in [
        Algorithm::HHpgm,
        Algorithm::HHpgmTgd,
        Algorithm::HHpgmPgd,
        Algorithm::HHpgmFgd,
    ] {
        let report = mine_parallel(alg, &db, &taxonomy, &params, &cluster)?;
        let probes = report.pass(2).expect("pass 2").probes_per_node();
        let max = *probes.iter().max().unwrap_or(&1) as f64;
        let skew = skew_summary(&probes);
        println!(
            "{} (max/avg = {:.2}, cv = {:.2}):",
            alg.name(),
            skew.max_over_mean,
            skew.cv
        );
        for (node, &p) in probes.iter().enumerate() {
            let width = ((p as f64 / max) * 50.0).round() as usize;
            println!("  node {node:>2} | {:<50} {p}", "#".repeat(width));
        }
        println!();
    }
    println!("flatter bars = better load balance; the duplication grain");
    println!("gets finer from top to bottom, as in the paper's Figure 15.");
    Ok(())
}
