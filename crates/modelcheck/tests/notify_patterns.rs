//! Regression tests for the checker's treatment of the check-then-park
//! window: a notifier that takes the mutex between flag-store and notify
//! must be safe in every schedule, while an unlocked notify must be
//! caught as a lost wakeup (the `detects_lost_wakeup` unit test covers
//! the latter; this file pins the former, which once falsely deadlocked
//! while the `Condvar::wait` entry yield point was being added).

use gar_modelcheck::sync::atomic::{AtomicUsize, Ordering};
use gar_modelcheck::sync::{Condvar, Mutex};
use gar_modelcheck::{model_with, thread, Config};
use std::sync::Arc;

#[test]
fn locked_notify_is_never_lost() {
    model_with(
        Config {
            fail_on_truncation: true,
            ..Config::default()
        },
        || {
            let flag = Arc::new(AtomicUsize::new(0));
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let t = {
                let flag = Arc::clone(&flag);
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    flag.store(1, Ordering::SeqCst);
                    // Taking and releasing the mutex orders this notify
                    // after any in-flight predicate check: the waiter is
                    // either not yet parked (and will see the flag) or
                    // already on the wait queue (and receives the wake).
                    drop(pair.0.lock());
                    pair.1.notify_all();
                })
            };
            let mut g = pair.0.lock();
            while flag.load(Ordering::SeqCst) == 0 {
                g = pair.1.wait(g);
            }
            drop(g);
            t.join().unwrap();
        },
    );
}
