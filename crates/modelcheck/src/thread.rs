//! Virtual threads (`std::thread` subset: `spawn` + `JoinHandle`).
//!
//! Each virtual thread is backed by a real OS thread, but the scheduler
//! in the crate root only ever lets one of them run between yield
//! points, so execution is fully serialized and replayable.

use crate::{current_context, finish_thread, schedule_point, wait_for_turn, Status, CONTEXT};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as OsMutex};

/// Result type matching `std::thread::Result`.
pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

/// Handle to a spawned virtual thread.
pub struct JoinHandle<T> {
    id: usize,
    slot: Arc<OsMutex<Option<Result<T>>>>,
}

/// Spawns a virtual thread running `f`. Must be called from inside a
/// [`crate::model`] closure.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    schedule_point();
    let (exec, _me) = current_context();
    let slot: Arc<OsMutex<Option<Result<T>>>> = Arc::new(OsMutex::new(None));
    let id;
    {
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        id = st.statuses.len();
        st.statuses.push(Status::Runnable);
        st.joiners.push(Vec::new());
        st.timed.push(false);
        st.rescued.push(false);
    }
    let child_exec = Arc::clone(&exec);
    let child_slot = Arc::clone(&slot);
    let os_handle = std::thread::spawn(move || {
        CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&child_exec), id)));
        // Wait to be scheduled for the first time.
        {
            let st = child_exec.state.lock().unwrap_or_else(|e| e.into_inner());
            let waited = panic::catch_unwind(AssertUnwindSafe(|| {
                wait_for_turn(&child_exec, st, id);
            }));
            if waited.is_err() {
                // Execution tore down before this thread ever ran.
                child_exec.cv.notify_all();
                return;
            }
        }
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        match result {
            Ok(value) => {
                *child_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(value));
                finish_thread(&child_exec, id, Ok(()));
            }
            Err(payload) => {
                // Propagate the panic to the scheduler (which records it
                // as a model failure) and to any joiner.
                let msg = crate::panic_message(&*payload);
                *child_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(Box::new(msg)));
                finish_thread(&child_exec, id, Err(payload));
            }
        }
    });
    {
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        st.os_handles.push(os_handle);
    }
    JoinHandle { id, slot }
}

impl<T> JoinHandle<T> {
    /// Blocks the calling virtual thread until the target finishes.
    pub fn join(self) -> Result<T> {
        loop {
            let (exec, me) = current_context();
            let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
            crate::check_abort(&st);
            if st.statuses[self.id] == Status::Finished {
                drop(st);
                let taken = self.slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                return match taken {
                    Some(r) => r,
                    // Finished with an empty slot only happens during
                    // tear-down unwinds; surface it as a join error.
                    None => Err(Box::new("virtual thread aborted".to_string())),
                };
            }
            st.joiners[self.id].push(me);
            st.statuses[me] = Status::Blocked;
            crate::block_current(&exec, st, me);
        }
    }
}

/// Yields the current virtual thread (pure scheduling point).
pub fn yield_now() {
    schedule_point();
}
