//! Home-grown loom-style model checker for the cluster collectives.
//!
//! crates.io is unreachable in this build environment, so instead of the
//! real `loom` crate this module implements the same *testing discipline*
//! from scratch:
//!
//! * Test bodies run under [`model`], which executes the closure many
//!   times, each time forcing a different thread interleaving.
//! * Virtual [`sync::Mutex`], [`sync::Condvar`], [`sync::atomic`]
//!   types and [`thread::spawn`] mirror the `std::sync` APIs but route
//!   every visible operation through a cooperative scheduler: exactly one
//!   virtual thread runs at a time, and at every synchronization
//!   operation the scheduler consults a decision trace to pick which
//!   thread runs next.
//! * Schedules are enumerated depth-first: each execution records the
//!   `(chosen, options)` branch points it hit; the explorer then advances
//!   the last non-exhausted branch point (odometer style) and replays the
//!   prefix, exploring every reachable interleaving up to the configured
//!   bounds.
//! * Deadlocks — including *lost wakeups*, where every thread is parked
//!   in a `Condvar` with nobody left to signal — are detected the moment
//!   no thread is runnable, and reported with the schedule trace.
//!
//! Differences from loom, so nobody over-trusts a green run:
//!
//! * Only sequentially-consistent interleavings are explored. loom also
//!   explores the weaker C11 orderings (an `Ordering::Relaxed` load may
//!   observe stale values); here every atomic op acts on a single global
//!   value. Code whose correctness depends on *which* memory ordering is
//!   used still needs review — the in-repo `xtask lint` `relaxed` rule
//!   exists exactly because this checker cannot see those bugs.
//! * Exploration is bounded by [`Config::max_schedules`],
//!   [`Config::max_steps`] per execution, and optionally a preemption
//!   bound (`Config::preemption_bound`, as in iterative context
//!   bounding: most concurrency bugs manifest with very few forced
//!   preemptions). Small models (2–3 threads, short critical sections)
//!   complete exhaustively; a truncated search prints a warning unless
//!   [`Config::fail_on_truncation`] is set.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};

pub mod sync;
pub mod thread;

/// Exploration bounds for one [`model_with`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Stop after this many executed schedules even if the DFS frontier
    /// is not exhausted.
    pub max_schedules: usize,
    /// Per-execution cap on scheduler decisions; hitting it fails the
    /// execution (it almost always means a livelock such as a spin loop
    /// that never blocks).
    pub max_steps: usize,
    /// If `Some(k)`, only schedules with at most `k` preemptions (forced
    /// switches away from a runnable thread) are explored. `None`
    /// explores all interleavings.
    pub preemption_bound: Option<usize>,
    /// Treat hitting `max_schedules` before DFS exhaustion as a failure
    /// instead of a warning.
    pub fail_on_truncation: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_schedules: 100_000,
            max_steps: 50_000,
            preemption_bound: None,
            fail_on_truncation: false,
        }
    }
}

/// Runs `f` under the model checker with default bounds, panicking on
/// the first schedule that deadlocks or panics.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    model_with(Config::default(), f);
}

/// Runs `f` under the model checker with explicit bounds. Returns the
/// number of distinct schedules executed.
pub fn model_with(config: Config, f: impl Fn() + Send + Sync + 'static) -> usize {
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let exec = Execution::new(&config, replay.clone());
        let outcome = exec.run(Arc::clone(&f));
        schedules += 1;
        if let Some(failure) = outcome.failure {
            panic!(
                "model checking failed on schedule #{schedules}: {failure}\n\
                 decision trace (thread chosen at each point): {:?}",
                outcome.trace.iter().map(|d| d.chosen).collect::<Vec<_>>()
            );
        }
        // Odometer advance: bump the deepest decision that still has an
        // unexplored sibling, drop everything after it.
        let mut next = outcome.trace;
        let mut advanced = false;
        while let Some(d) = next.pop() {
            if d.index + 1 < d.options {
                replay = next.iter().map(|p| p.index).collect();
                replay.push(d.index + 1);
                advanced = true;
                break;
            }
        }
        if !advanced {
            return schedules; // DFS frontier exhausted: every schedule visited.
        }
        if schedules >= config.max_schedules {
            let msg = format!(
                "model search truncated after {schedules} schedules \
                 (frontier not exhausted; raise Config::max_schedules)"
            );
            if config.fail_on_truncation {
                panic!("{msg}");
            }
            eprintln!("warning: {msg}");
            return schedules;
        }
    }
}

/// One branch point in a schedule: which runnable-set index was taken,
/// out of how many options.
#[derive(Clone, Copy, Debug)]
struct Decision {
    /// Index into the options list that was chosen.
    index: usize,
    /// Number of options that were available.
    options: usize,
    /// Thread id actually chosen (for failure traces).
    chosen: usize,
}

struct Outcome {
    trace: Vec<Decision>,
    failure: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

/// Shared state of one execution, guarded by `Execution::state`.
struct ExecState {
    statuses: Vec<Status>,
    /// Virtual thread currently allowed to run.
    current: usize,
    /// Decisions made so far this execution.
    trace: Vec<Decision>,
    /// Prefix of option indices to replay before free exploration.
    replay: Vec<usize>,
    preemptions: usize,
    failure: Option<String>,
    /// Real OS handles for spawned virtual threads, joined by the
    /// controller at execution end.
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Per-thread list of joiner thread ids to wake on finish.
    joiners: Vec<Vec<usize>>,
    /// Per-thread flag: blocked in a *timed* wait, so if the whole
    /// system stops making progress the scheduler may wake it with a
    /// timeout instead of declaring deadlock.
    timed: Vec<bool>,
    /// Per-thread flag set when the deadlock path woke a timed waiter;
    /// its wait returns `timed_out = true`.
    rescued: Vec<bool>,
}

struct Execution {
    state: OsMutex<ExecState>,
    cv: OsCondvar,
    max_steps: usize,
    preemption_bound: Option<usize>,
}

std::thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Payload used to unwind virtual threads when the execution is being
/// torn down (deadlock or a panic elsewhere); distinguishable from user
/// panics.
struct ExecAbort;

fn current_context() -> (Arc<Execution>, usize) {
    CONTEXT.with(|c| {
        c.borrow()
            .clone()
            // lint:allow(panic-path): the virtual primitives only exist
            // inside model(); using one outside is a harness misuse and
            // panicking (under #[cfg(gar_loom)] test builds) is the
            // intended failure mode, not a production path.
            .expect("modelcheck primitive used outside model() closure")
    })
}

impl Execution {
    fn new(config: &Config, replay: Vec<usize>) -> Arc<Execution> {
        Arc::new(Execution {
            state: OsMutex::new(ExecState {
                statuses: vec![Status::Runnable],
                current: 0,
                trace: Vec::new(),
                replay,
                preemptions: 0,
                failure: None,
                os_handles: Vec::new(),
                joiners: vec![Vec::new()],
                timed: vec![false],
                rescued: vec![false],
            }),
            cv: OsCondvar::new(),
            max_steps: config.max_steps,
            preemption_bound: config.preemption_bound,
        })
    }

    fn run(self: Arc<Execution>, f: Arc<impl Fn() + Send + Sync + 'static>) -> Outcome {
        let exec = Arc::clone(&self);
        let root = std::thread::spawn(move || {
            CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
            // Thread 0 starts as `current`; no need to wait for a turn.
            let result = panic::catch_unwind(AssertUnwindSafe(|| f()));
            finish_thread(&exec, 0, result);
        });
        // Wait until every virtual thread finished or a failure tore the
        // execution down.
        let handles;
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let done =
                    st.failure.is_some() || st.statuses.iter().all(|s| *s == Status::Finished);
                if done {
                    break;
                }
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            self.cv.notify_all();
            handles = std::mem::take(&mut st.os_handles);
        }
        let _ = root.join();
        for h in handles {
            let _ = h.join();
        }
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        Outcome {
            trace: st.trace.clone(),
            failure: st.failure.clone(),
        }
    }

    /// Picks the next thread to run, recording the branch point. Caller
    /// holds the state lock; `me` is the thread giving up control.
    /// Returns the chosen thread, or `None` if nothing is runnable.
    fn pick_next(&self, st: &mut ExecState, me: usize) -> Option<usize> {
        let me_runnable = st.statuses[me] == Status::Runnable;
        let mut options: Vec<usize> = Vec::new();
        if me_runnable {
            options.push(me); // index 0 = keep running: never a preemption.
        }
        let bound_hit = me_runnable && self.preemption_bound.is_some_and(|b| st.preemptions >= b);
        if !bound_hit {
            let more = st
                .statuses
                .iter()
                .enumerate()
                .filter(|(t, s)| *t != me && **s == Status::Runnable)
                .map(|(t, _)| t);
            options.extend(more);
        }
        if options.is_empty() {
            return None;
        }
        let depth = st.trace.len();
        let index = if depth < st.replay.len() {
            st.replay[depth].min(options.len() - 1)
        } else {
            0
        };
        let chosen = options[index];
        if trace_enabled() {
            eprintln!(
                "[mc] d{} me=t{me} statuses={:?} options={options:?} -> t{chosen}",
                st.trace.len(),
                st.statuses
            );
        }
        st.trace.push(Decision {
            index,
            options: options.len(),
            chosen,
        });
        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.current = chosen;
        Some(chosen)
    }

    /// Fails the execution: records the message, wakes everything so
    /// parked virtual threads can unwind.
    fn fail(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.cv.notify_all();
    }
}

/// Yield point: gives every other runnable thread a chance to run before
/// the caller's next visible operation. Called (directly or indirectly)
/// by every virtual synchronization primitive.
pub fn schedule_point() {
    let (exec, me) = current_context();
    let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    check_abort(&st);
    if st.trace.len() >= exec.max_steps {
        exec.fail(
            &mut st,
            format!(
                "execution exceeded {} scheduler steps (livelock? spin loop \
                 without blocking?)",
                exec.max_steps
            ),
        );
        drop(st);
        panic::panic_any(ExecAbort);
    }
    // `me` is runnable, so pick_next cannot return None here.
    exec.pick_next(&mut st, me);
    exec.cv.notify_all();
    wait_for_turn(&exec, st, me);
}

/// Parks the calling thread after the caller (holding the lock via the
/// returned closure pattern) marked it blocked in some primitive's wait
/// list. Wakes when rescheduled as runnable.
fn block_current(exec: &Arc<Execution>, mut st: OsGuard<'_, ExecState>, me: usize) {
    debug_assert_eq!(st.statuses[me], Status::Blocked);
    match exec.pick_next(&mut st, me) {
        Some(_) => exec.cv.notify_all(),
        None => {
            // Nobody can run. In real time a stalled system makes every
            // pending timeout expire, so timed waiters are woken with
            // `timed_out = true` rather than reported as a deadlock.
            if rescue_timed_waiters(&mut st) {
                exec.pick_next(&mut st, me);
                exec.cv.notify_all();
            } else {
                let snapshot: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(t, s)| format!("t{t}:{s:?}"))
                    .collect();
                exec.fail(
                    &mut st,
                    format!(
                        "deadlock: no runnable thread (lost wakeup?) — {}",
                        snapshot.join(" ")
                    ),
                );
                drop(st);
                panic::panic_any(ExecAbort);
            }
        }
    }
    wait_for_turn(exec, st, me);
}

/// Wakes every thread parked in a timed wait, marking it rescued (its
/// wait returns with `timed_out = true`). Returns whether any thread
/// was woken. Called only when no thread is runnable.
fn rescue_timed_waiters(st: &mut ExecState) -> bool {
    let mut woke = false;
    for t in 0..st.statuses.len() {
        if st.statuses[t] == Status::Blocked && st.timed[t] {
            st.statuses[t] = Status::Runnable;
            st.timed[t] = false;
            st.rescued[t] = true;
            woke = true;
        }
    }
    woke
}

/// Nondeterministic choice point: returns a value in `0..options`,
/// exploring every branch across schedules. Models events whose timing
/// is outside the program, such as timer expiry. Does not switch
/// threads.
pub fn choice(options: usize) -> usize {
    assert!(options > 0, "choice() needs at least one option");
    let (exec, me) = current_context();
    let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    check_abort(&st);
    let depth = st.trace.len();
    let index = if depth < st.replay.len() {
        st.replay[depth].min(options - 1)
    } else {
        0
    };
    if trace_enabled() {
        eprintln!("[mc] d{depth} t{me} choice({options}) -> {index}");
    }
    st.trace.push(Decision {
        index,
        options,
        chosen: me,
    });
    index
}

fn wait_for_turn(exec: &Arc<Execution>, mut st: OsGuard<'_, ExecState>, me: usize) {
    loop {
        check_abort(&st);
        if st.current == me && st.statuses[me] == Status::Runnable {
            return;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

fn check_abort(st: &ExecState) {
    if st.failure.is_some() {
        panic::panic_any(ExecAbort);
    }
}

fn finish_thread(
    exec: &Arc<Execution>,
    me: usize,
    result: Result<(), Box<dyn std::any::Any + Send>>,
) {
    let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
    match result {
        Ok(()) => {}
        Err(payload) => {
            if payload.downcast_ref::<ExecAbort>().is_some() {
                // Tear-down unwind: the failure is already recorded.
                exec.cv.notify_all();
                return;
            }
            let msg = panic_message(&payload);
            exec.fail(&mut st, format!("virtual thread {me} panicked: {msg}"));
        }
    }
    st.statuses[me] = Status::Finished;
    let joiners = std::mem::take(&mut st.joiners[me]);
    for j in joiners {
        st.statuses[j] = Status::Runnable;
    }
    if st.failure.is_none() && !st.statuses.iter().all(|s| *s == Status::Finished) {
        // Hand control to someone else; detect deadlock if nobody can run.
        if exec.pick_next(&mut st, me).is_none() {
            if rescue_timed_waiters(&mut st) {
                exec.pick_next(&mut st, me);
            } else {
                let snapshot: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(t, s)| format!("t{t}:{s:?}"))
                    .collect();
                exec.fail(
                    &mut st,
                    format!(
                        "deadlock after thread {me} finished: no runnable thread — {}",
                        snapshot.join(" ")
                    ),
                );
            }
        }
    }
    exec.cv.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Queue of thread ids, FIFO to keep schedules deterministic.
type WaitQueue = VecDeque<usize>;

/// True when `GAR_MODELCHECK_TRACE` is set: the scheduler and the sync
/// primitives narrate every decision and operation to stderr. For
/// debugging failing schedules; output is enormous.
fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("GAR_MODELCHECK_TRACE").is_some())
}

/// Narrates one primitive operation when tracing is on.
pub(crate) fn trace_op(op: &str) {
    if trace_enabled() {
        let (_, me) = current_context();
        eprintln!("[mc] t{me} {op}");
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn explores_both_orders_of_two_increments() {
        // Two threads doing read-modify-write through a mutex: every
        // schedule must observe the final value 2.
        let schedules = model_with(Config::default(), || {
            let m = StdArc::new(Mutex::new(0u32));
            let t = {
                let m = StdArc::clone(&m);
                thread::spawn(move || {
                    let mut g = m.lock();
                    *g += 1;
                })
            };
            {
                let mut g = m.lock();
                *g += 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock(), 2);
        });
        assert!(
            schedules > 1,
            "expected multiple interleavings, got {schedules}"
        );
    }

    #[test]
    fn finds_unsynchronized_interleaving() {
        // A non-atomic check-then-act through an atomic: at least one
        // schedule lets both threads read 0 before either writes, so the
        // final count is 1, not 2. The model checker must find it.
        let saw_lost_update = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = StdArc::clone(&saw_lost_update);
        model_with(Config::default(), move || {
            let v = StdArc::new(AtomicUsize::new(0));
            let t = {
                let v = StdArc::clone(&v);
                thread::spawn(move || {
                    let old = v.load(Ordering::SeqCst);
                    v.store(old + 1, Ordering::SeqCst);
                })
            };
            let old = v.load(Ordering::SeqCst);
            v.store(old + 1, Ordering::SeqCst);
            t.join().unwrap();
            if v.load(Ordering::SeqCst) == 1 {
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        });
        assert!(
            saw_lost_update.load(std::sync::atomic::Ordering::SeqCst),
            "DFS failed to reach the racy interleaving"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn detects_lost_wakeup() {
        // Classic lost wakeup: the waiter checks the flag, the notifier
        // sets it and signals *before* the waiter parks — modeled here by
        // an unconditional wait with a notify that can fire first. Some
        // schedule parks the waiter forever; the checker must flag it.
        model(|| {
            let pair = StdArc::new((Mutex::new(false), Condvar::new()));
            let t = {
                let pair = StdArc::clone(&pair);
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    let mut started = m.lock();
                    *started = true;
                    cv.notify_all();
                    drop(started);
                })
            };
            let (m, cv) = &*pair;
            let started = m.lock();
            // BUG under test: no `while !*started` loop around the wait.
            let _g = cv.wait(started);
            drop(_g);
            t.join().unwrap();
        });
    }

    #[test]
    fn generation_loop_survives_all_schedules() {
        // The fixed version of the pattern above: waiting in a condition
        // loop. No schedule may deadlock.
        model(|| {
            let pair = StdArc::new((Mutex::new(false), Condvar::new()));
            let t = {
                let pair = StdArc::clone(&pair);
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    *m.lock() = true;
                    cv.notify_all();
                })
            };
            let (m, cv) = &*pair;
            let mut started = m.lock();
            while !*started {
                started = cv.wait(started);
            }
            drop(started);
            t.join().unwrap();
        });
    }

    #[test]
    fn preemption_bound_shrinks_search() {
        let body = || {
            let v = StdArc::new(AtomicUsize::new(0));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let v = StdArc::clone(&v);
                    thread::spawn(move || {
                        v.fetch_add(1, Ordering::SeqCst);
                        v.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(v.load(Ordering::SeqCst), 4);
        };
        let full = model_with(Config::default(), body);
        let bounded = model_with(
            Config {
                preemption_bound: Some(1),
                ..Config::default()
            },
            body,
        );
        assert!(
            bounded < full,
            "bound {bounded} should cut schedules below {full}"
        );
    }

    #[test]
    fn choice_explores_every_branch() {
        let seen = StdArc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        let sink = StdArc::clone(&seen);
        model(move || {
            let v = choice(3);
            sink.lock().unwrap().insert(v);
        });
        assert_eq!(seen.lock().unwrap().len(), 3);
    }

    #[test]
    fn timed_wait_is_rescued_instead_of_deadlocking() {
        // Nobody ever notifies: an untimed wait here would be a deadlock
        // (see `detects_lost_wakeup`), but a timed wait must return with
        // `timed_out = true` on every schedule.
        model(|| {
            let pair = StdArc::new((Mutex::new(false), Condvar::new()));
            let (m, cv) = &*pair;
            let g = m.lock();
            let (g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(1));
            assert!(timed_out, "wait with no notifier must report expiry");
            drop(g);
        });
    }

    #[test]
    fn timed_wait_races_notify_without_losing_either() {
        // A notifier sets the flag; the timer may expire first. Every
        // schedule must end with the flag observed or a reported
        // timeout — never a deadlock, never a wait that returns with
        // neither.
        let saw_timeout = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let saw_flag = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let (t_flag, f_flag) = (StdArc::clone(&saw_timeout), StdArc::clone(&saw_flag));
        model(move || {
            let pair = StdArc::new((Mutex::new(false), Condvar::new()));
            let t = {
                let pair = StdArc::clone(&pair);
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    *m.lock() = true;
                    cv.notify_all();
                })
            };
            let (m, cv) = &*pair;
            let mut ready = m.lock();
            let mut timed_out = false;
            while !*ready && !timed_out {
                let (g, expired) = cv.wait_timeout(ready, std::time::Duration::from_millis(1));
                ready = g;
                timed_out = expired;
            }
            assert!(*ready || timed_out);
            if timed_out {
                t_flag.store(true, std::sync::atomic::Ordering::SeqCst);
            }
            if *ready {
                f_flag.store(true, std::sync::atomic::Ordering::SeqCst);
            }
            drop(ready);
            t.join().unwrap();
        });
        // Both outcomes must be reachable, or the model is not actually
        // exploring the race.
        assert!(saw_timeout.load(std::sync::atomic::Ordering::SeqCst));
        assert!(saw_flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    #[should_panic(expected = "scheduler steps")]
    fn livelock_hits_step_budget() {
        model_with(
            Config {
                max_steps: 200,
                ..Config::default()
            },
            || {
                let v = AtomicUsize::new(0);
                // Spin forever without blocking: must trip max_steps.
                while v.load(Ordering::SeqCst) == 0 {}
            },
        );
    }
}
