//! Virtual synchronization primitives mirroring the `std::sync` APIs.
//!
//! Safety model: the scheduler in the crate root guarantees that exactly
//! one virtual thread executes between yield points, and every method
//! here that touches primitive state either runs at a yield point or
//! holds the execution's state lock. The `UnsafeCell`s below are
//! therefore never accessed concurrently, which is what justifies the
//! `unsafe impl Sync` blocks.

use crate::{block_current, current_context, schedule_point, Status, WaitQueue};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion (`std::sync::Mutex` subset, panic-free `lock`).
pub struct Mutex<T> {
    data: UnsafeCell<T>,
    state: UnsafeCell<MutexState>,
}

struct MutexState {
    locked: bool,
    waiters: WaitQueue,
}

// SAFETY: all access to the UnsafeCells is serialized by the model
// scheduler (one runnable virtual thread at a time; state mutations
// happen with the execution lock held).
unsafe impl<T: Send> Sync for Mutex<T> {}
unsafe impl<T: Send> Send for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            data: UnsafeCell::new(value),
            state: UnsafeCell::new(MutexState {
                locked: false,
                waiters: WaitQueue::new(),
            }),
        }
    }

    /// Acquires the lock, parking the virtual thread while contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        crate::trace_op("mutex.lock");
        schedule_point();
        self.acquire_after_yield();
        MutexGuard { mutex: self }
    }

    /// Lock acquisition without a fresh yield point — used on the
    /// re-acquire path of `Condvar::wait`, where waking from the wait
    /// queue already was the scheduling event.
    fn acquire_after_yield(&self) {
        loop {
            let (exec, me) = current_context();
            let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
            crate::check_abort(&st);
            // SAFETY: serialized by the scheduler; see module header.
            let ms = unsafe { &mut *self.state.get() };
            if !ms.locked {
                ms.locked = true;
                return;
            }
            ms.waiters.push_back(me);
            st.statuses[me] = Status::Blocked;
            block_current(&exec, st, me);
        }
    }

    fn unlock(&self) {
        crate::trace_op("mutex.unlock");
        let (exec, _me) = current_context();
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: serialized by the scheduler; see module header.
        let ms = unsafe { &mut *self.state.get() };
        debug_assert!(ms.locked, "unlock of an unlocked model Mutex");
        ms.locked = false;
        // Wake every waiter; they re-contend in acquire_after_yield, so
        // the scheduler (not queue order) decides who wins the lock.
        while let Some(t) = ms.waiters.pop_front() {
            st.statuses[t] = Status::Runnable;
        }
        exec.cv.notify_all();
    }
}

/// RAII guard; unlocking is a scheduler-visible event on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the virtual lock, and execution is
        // serialized, so no aliasing access exists.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
        // Give freshly woken contenders a chance to win the lock before
        // this thread's next operation.
        if !std::thread::panicking() {
            schedule_point();
        }
    }
}

/// Condition variable (`std::sync::Condvar` subset with guard-passing
/// `wait`, no poisoning, no timeouts).
pub struct Condvar {
    waiters: UnsafeCell<WaitQueue>,
}

// SAFETY: serialized by the model scheduler; see module header.
unsafe impl Sync for Condvar {}
unsafe impl Send for Condvar {}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            waiters: UnsafeCell::new(WaitQueue::new()),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified,
    /// then re-acquires the mutex. Like the real primitive, waking is
    /// not synchronous with `notify_*` — the woken thread re-contends
    /// the lock, so callers must re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        // Yield point *before* the release-and-park: this is the window
        // where a notifier that does not hold the mutex can fire before
        // the waiter is on the wait queue — the lost-wakeup interleaving.
        // (The release-and-park itself is atomic, as in the real
        // primitive.) Without this yield the model would treat
        // predicate-check → park as one indivisible step and miss such
        // bugs entirely.
        crate::trace_op("condvar.wait enter");
        schedule_point();
        let mutex = guard.mutex;
        // Manual release: skip the guard's Drop (which would add an
        // extra yield point between unlock and park, breaking the
        // release-and-wait atomicity condvars guarantee).
        std::mem::forget(guard);
        {
            let (exec, me) = current_context();
            let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
            crate::check_abort(&st);
            // SAFETY: serialized by the scheduler; see module header.
            let ms = unsafe { &mut *mutex.state.get() };
            debug_assert!(ms.locked, "Condvar::wait with unlocked mutex");
            ms.locked = false;
            while let Some(t) = ms.waiters.pop_front() {
                st.statuses[t] = Status::Runnable;
            }
            // SAFETY: serialized by the scheduler; see module header.
            let cw = unsafe { &mut *self.waiters.get() };
            cw.push_back(me);
            st.statuses[me] = Status::Blocked;
            block_current(&exec, st, me);
        }
        mutex.acquire_after_yield();
        MutexGuard { mutex }
    }

    /// Like [`Condvar::wait`], but the wait may also end because the
    /// deadline expired; the second tuple element reports expiry. The
    /// timer is external to the program, so expiry is modeled as a
    /// nondeterministic branch: either the deadline fires before any
    /// notification, or the thread parks as a *timed* waiter that the
    /// scheduler may wake with `timed_out = true` when the whole system
    /// stops making progress (instead of declaring deadlock). As with
    /// the real primitive, a timeout may race a notification — callers
    /// must re-check their predicate either way.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        crate::trace_op("condvar.wait_timeout enter");
        schedule_point();
        let mutex = guard.mutex;
        // Manual release, as in `wait`: skip the guard's Drop.
        std::mem::forget(guard);
        if crate::choice(2) == 1 {
            // The deadline fires before this thread is ever notified:
            // release the mutex, let others run, re-acquire, report
            // expiry.
            crate::trace_op("condvar.wait_timeout expires");
            mutex.unlock();
            schedule_point();
            mutex.acquire_after_yield();
            return (MutexGuard { mutex }, true);
        }
        let timed_out;
        {
            let (exec, me) = current_context();
            let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
            crate::check_abort(&st);
            // SAFETY: serialized by the scheduler; see module header.
            let ms = unsafe { &mut *mutex.state.get() };
            debug_assert!(ms.locked, "Condvar::wait_timeout with unlocked mutex");
            ms.locked = false;
            while let Some(t) = ms.waiters.pop_front() {
                st.statuses[t] = Status::Runnable;
            }
            // SAFETY: serialized by the scheduler; see module header.
            let cw = unsafe { &mut *self.waiters.get() };
            cw.push_back(me);
            st.statuses[me] = Status::Blocked;
            st.timed[me] = true;
            block_current(&exec, st, me);
            let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
            crate::check_abort(&st);
            st.timed[me] = false;
            timed_out = std::mem::replace(&mut st.rescued[me], false);
            if timed_out {
                // A rescued thread is still queued on the condvar; a
                // later notify must not double-wake it.
                // SAFETY: serialized by the scheduler; see module header.
                let cw = unsafe { &mut *self.waiters.get() };
                cw.retain(|t| *t != me);
            }
        }
        mutex.acquire_after_yield();
        (MutexGuard { mutex }, timed_out)
    }

    /// Wakes one waiter (FIFO).
    pub fn notify_one(&self) {
        schedule_point();
        let (exec, _me) = current_context();
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: serialized by the scheduler; see module header.
        let cw = unsafe { &mut *self.waiters.get() };
        if let Some(t) = cw.pop_front() {
            st.statuses[t] = Status::Runnable;
            st.timed[t] = false;
            exec.cv.notify_all();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        crate::trace_op("condvar.notify_all");
        schedule_point();
        let (exec, _me) = current_context();
        let mut st = exec.state.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: serialized by the scheduler; see module header.
        let cw = unsafe { &mut *self.waiters.get() };
        let mut woke = false;
        while let Some(t) = cw.pop_front() {
            st.statuses[t] = Status::Runnable;
            st.timed[t] = false;
            woke = true;
        }
        if woke {
            exec.cv.notify_all();
        }
    }
}

pub use std::sync::Arc;

pub mod atomic {
    //! Model atomics. Every operation is a yield point followed by a
    //! serialized read/modify/write of a single global value, i.e. the
    //! model explores sequentially consistent interleavings only — the
    //! `Ordering` argument is accepted for API compatibility but does
    //! not weaken anything (see the crate-level caveats).

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $ty:ty) => {
            pub struct $name {
                value: super::UnsafeCell<$ty>,
            }

            // SAFETY: serialized by the model scheduler; every access
            // below happens at a yield point with the execution lock
            // held implicitly through single-thread-at-a-time execution.
            unsafe impl Sync for $name {}
            unsafe impl Send for $name {}

            impl $name {
                pub const fn new(value: $ty) -> $name {
                    $name {
                        value: super::UnsafeCell::new(value),
                    }
                }

                fn with<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                    crate::trace_op("atomic op");
                    crate::schedule_point();
                    // SAFETY: execution is serialized; no concurrent
                    // access to the cell can exist.
                    f(unsafe { &mut *self.value.get() })
                }

                pub fn load(&self, _order: Ordering) -> $ty {
                    self.with(|v| *v)
                }

                pub fn store(&self, new: $ty, _order: Ordering) {
                    self.with(|v| *v = new);
                }

                pub fn swap(&self, new: $ty, _order: Ordering) -> $ty {
                    self.with(|v| std::mem::replace(v, new))
                }

                pub fn compare_exchange(
                    &self,
                    expected: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.with(|v| {
                        if *v == expected {
                            *v = new;
                            Ok(expected)
                        } else {
                            Err(*v)
                        }
                    })
                }
            }
        };
    }

    model_atomic!(AtomicBool, bool);
    model_atomic!(AtomicUsize, usize);
    model_atomic!(AtomicU64, u64);

    macro_rules! model_atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                pub fn fetch_add(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let old = *v;
                        *v = old.wrapping_add(delta);
                        old
                    })
                }

                pub fn fetch_sub(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let old = *v;
                        *v = old.wrapping_sub(delta);
                        old
                    })
                }
            }
        };
    }

    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
}
