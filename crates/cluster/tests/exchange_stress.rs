//! Randomized stress tests of the exchange protocol: arbitrary message
//! matrices must be delivered exactly, and termination must hold under
//! any interleaving of sends and polls.

// The full simulator does not exist in model-checking builds.
#![cfg(not(gar_loom))]

use bytes::Bytes;
use gar_cluster::{Cluster, ClusterConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_sent_message_arrives_exactly_once(
        nodes in 2usize..6,
        // messages[sender] = number of messages to each peer
        per_peer in 0usize..40,
        payload_len in 0usize..100,
    ) {
        let cfg = ClusterConfig::new(nodes, 1 << 20);
        let received = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        let run = Cluster::run(&cfg, |ctx| {
            let mut ex = ctx.exchange();
            for peer in 0..ctx.num_nodes() {
                if peer == ctx.node_id() {
                    continue;
                }
                for i in 0..per_peer {
                    let body = vec![(i % 251) as u8; payload_len];
                    ex.send(peer, 1, Bytes::from(body))?;
                    if i % 7 == 0 {
                        ex.poll(|env| {
                            received.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(env.payload.len() as u64, Ordering::Relaxed);
                            Ok(())
                        })?;
                    }
                }
            }
            ex.finish(|env| {
                received.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(env.payload.len() as u64, Ordering::Relaxed);
                Ok(())
            })?;
            Ok(())
        }).unwrap();

        let expected = (nodes * (nodes - 1) * per_peer) as u64;
        prop_assert_eq!(received.load(Ordering::Relaxed), expected);
        prop_assert_eq!(sum.load(Ordering::Relaxed), expected * payload_len as u64);
        // The ledgers agree with the ground truth.
        let total_recv_msgs: u64 = run.stats.iter().map(|s| s.messages_received).sum();
        // EOS tokens: every node sends one to each peer.
        prop_assert_eq!(total_recv_msgs, expected + (nodes * (nodes - 1)) as u64);
    }

    #[test]
    fn collectives_survive_repeated_rounds(nodes in 1usize..6, rounds in 1usize..20) {
        let cfg = ClusterConfig::new(nodes, 1 << 20);
        Cluster::run(&cfg, |ctx| {
            for r in 0..rounds {
                let v = ctx.all_reduce_u64(&[1, r as u64])?;
                assert_eq!(v[0], ctx.num_nodes() as u64);
                assert_eq!(v[1], (r * ctx.num_nodes()) as u64);
                ctx.barrier()?;
                let data = ctx
                    .is_coordinator()
                    .then(|| Bytes::from(vec![r as u8; 3]));
                let b = ctx.broadcast(data)?;
                assert_eq!(&b[..], &[r as u8; 3]);
            }
            Ok(())
        }).unwrap();
    }
}
