//! Property tests for the `--faults` spec grammar: an arbitrary
//! [`FaultPlan`] rendered to its spec string and parsed back must
//! reproduce every field, and re-rendering must be a fixed point.
//!
//! The grammar is the reproduction channel for fault-injection runs
//! (reports print `plan.render()` so a failure can be replayed), so
//! `parse ∘ render` must be the identity on everything a plan carries.

use gar_cluster::{FaultOp, FaultPlan, ServeFaultOp};
use proptest::prelude::*;
use std::time::Duration;

const OPS: [FaultOp; 5] = [
    FaultOp::Panic,
    FaultOp::Hang,
    FaultOp::Drop,
    FaultOp::Corrupt,
    FaultOp::ScanError,
];

const SERVE_OPS: [ServeFaultOp; 5] = [
    ServeFaultOp::ConnReset,
    ServeFaultOp::SlowFrame,
    ServeFaultOp::ShardPanic,
    ServeFaultOp::ShardStall,
    ServeFaultOp::StaleSwap,
];

/// Probabilities in [0, 1] with three decimal digits. The compat
/// strategy ranges are integer-only, so floats are derived; millesimal
/// steps keep `f64::Display` short while still exercising the float
/// round trip (`Display` output always re-parses to the same f64).
fn arb_prob() -> impl Strategy<Value = f64> {
    (0u32..1001).prop_map(|n| f64::from(n) / 1000.0)
}

fn arb_op() -> impl Strategy<Value = FaultOp> {
    (0usize..OPS.len()).prop_map(|i| OPS[i])
}

/// Serve-side fault points as `(op, at, job)`: `job` is only rendered
/// for the shard ops (`…@sNqM`), and the 1-based positions (`job` for
/// shard ops, `at` for `stale-swap@rN`) must stay ≥ 1 to be parsable.
fn arb_serve_fault() -> impl Strategy<Value = (ServeFaultOp, usize, usize)> {
    (0usize..SERVE_OPS.len(), 0usize..16, 1usize..10).prop_map(|(i, at, job)| {
        let op = SERVE_OPS[i];
        match op {
            ServeFaultOp::ShardPanic | ServeFaultOp::ShardStall => (op, at, job),
            ServeFaultOp::StaleSwap => (op, at.max(1), 0),
            ServeFaultOp::ConnReset | ServeFaultOp::SlowFrame => (op, at, 0),
        }
    })
}

/// (seed, [p_drop, p_dup, p_corrupt, p_delay, p_scan], delay-ms,
/// hang-ms, scheduled (node, pass, op) triples, serve fault points) —
/// everything `render` can express. Millisecond sleeps include the
/// defaults (1 and 500) so the omit-if-default path is exercised too.
type PlanParts = (
    u64,
    (f64, f64, f64, f64, f64),
    u64,
    u64,
    Vec<(usize, usize, FaultOp)>,
    Vec<(ServeFaultOp, usize, usize)>,
);

fn arb_plan_parts() -> impl Strategy<Value = PlanParts> {
    (
        proptest::num::u64::ANY,
        (arb_prob(), arb_prob(), arb_prob(), arb_prob(), arb_prob()),
        0u64..2000,
        0u64..2000,
        proptest::collection::vec((0usize..16, 0usize..10, arb_op()), 0..6),
        proptest::collection::vec(arb_serve_fault(), 0..6),
    )
}

fn build_plan((seed, probs, delay_ms, hang_ms, scheduled, serve): &PlanParts) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: *seed,
        p_drop: probs.0,
        p_dup: probs.1,
        p_corrupt: probs.2,
        p_delay: probs.3,
        p_scan_error: probs.4,
        delay: Duration::from_millis(*delay_ms),
        hang: Duration::from_millis(*hang_ms),
        ..FaultPlan::default()
    };
    for &(node, pass, op) in scheduled {
        plan = plan.schedule(node, pass, op);
    }
    for &(op, at, job) in serve {
        plan = plan.schedule_serve(op, at, job);
    }
    plan
}

proptest! {
    #[test]
    fn fault_plan_spec_round_trips(parts in arb_plan_parts()) {
        let plan = build_plan(&parts);
        let rendered = plan.render();
        let reparsed = FaultPlan::parse(&rendered)
            .unwrap_or_else(|e| panic!("render produced an unparsable spec `{rendered}`: {e}"));

        prop_assert_eq!(reparsed.seed, plan.seed);
        prop_assert_eq!(reparsed.p_drop, plan.p_drop);
        prop_assert_eq!(reparsed.p_dup, plan.p_dup);
        prop_assert_eq!(reparsed.p_corrupt, plan.p_corrupt);
        prop_assert_eq!(reparsed.p_delay, plan.p_delay);
        prop_assert_eq!(reparsed.p_scan_error, plan.p_scan_error);
        prop_assert_eq!(reparsed.delay, plan.delay);
        prop_assert_eq!(reparsed.hang, plan.hang);

        // Scheduled fault points survive in order (`ScheduledFault`
        // carries run state, so compare the declarative triple).
        prop_assert_eq!(reparsed.scheduled.len(), plan.scheduled.len());
        for (got, want) in reparsed.scheduled.iter().zip(&plan.scheduled) {
            prop_assert_eq!(got.node, want.node);
            prop_assert_eq!(got.pass, want.pass);
            prop_assert_eq!(got.op, want.op);
        }

        // Serve-side fault points too (`ServeFault` carries a fired
        // flag, so again compare the declarative triple).
        prop_assert_eq!(reparsed.serve.len(), plan.serve.len());
        for (got, want) in reparsed.serve.iter().zip(&plan.serve) {
            prop_assert_eq!(got.op, want.op);
            prop_assert_eq!(got.at, want.at);
            prop_assert_eq!(got.job, want.job);
        }

        // And render is a fixed point of the round trip.
        prop_assert_eq!(reparsed.render(), rendered);
    }

    // Junk that survives parsing must itself round-trip from then on:
    // whatever `parse` accepts, `render` can reproduce.
    #[test]
    fn parse_then_render_is_stable(tokens in proptest::collection::vec(
        (0usize..8, 0usize..16, 0usize..10), 1..5))
    {
        let keys = ["seed", "p-drop", "p-dup", "p-corrupt", "p-delay", "p-scan",
                    "delay-ms", "hang-ms"];
        let spec = tokens
            .iter()
            .map(|&(key, a, b)| match keys[key] {
                k @ ("seed" | "delay-ms" | "hang-ms") => format!("{k}={}", a * 100 + b),
                k => format!("{k}=0.{a}{b}"),
            })
            .collect::<Vec<_>>()
            .join(",");
        let plan = FaultPlan::parse(&spec).unwrap();
        let reparsed = FaultPlan::parse(&plan.render()).unwrap();
        prop_assert_eq!(reparsed.render(), plan.render());
    }
}
