//! Model checking of the generation-counted collectives.
//!
//! Compiled only under `--cfg gar_loom` (run via `cargo xtask loom`),
//! where [`gar_cluster::Collectives`] is built on the `gar-modelcheck`
//! virtual primitives: every schedule of every scenario below is
//! explored (up to the stated bounds), so a passing suite means no
//! interleaving of these operations can deadlock, lose a wakeup, return
//! a stale generation's result, or mis-accumulate.
//!
//! Scenario sizes are chosen so the unbounded searches complete
//! exhaustively in seconds; the 3-node and poison scenarios use a
//! preemption bound (iterative context bounding: almost all concurrency
//! bugs need very few forced preemptions) to keep the suite fast while
//! still covering every 2-preemption schedule.

#![cfg(gar_loom)]

use gar_cluster::Collectives;
use gar_modelcheck::{model_with, thread, Config};
use gar_types::Error;
use std::sync::Arc;

fn exhaustive() -> Config {
    Config {
        fail_on_truncation: true,
        ..Config::default()
    }
}

fn bounded(preemptions: usize) -> Config {
    Config {
        preemption_bound: Some(preemptions),
        fail_on_truncation: true,
        ..Config::default()
    }
}

/// Runs `f(node, collectives)` on `n` virtual threads and joins them.
fn spawn_nodes(n: usize, f: impl Fn(usize, &Collectives) + Send + Sync + Copy + 'static) {
    let c = Arc::new(Collectives::new(n));
    let handles: Vec<_> = (1..n)
        .map(|id| {
            let c = Arc::clone(&c);
            thread::spawn(move || f(id, &c))
        })
        .collect();
    f(0, &c);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn barrier_two_nodes_reused_across_generations() {
    let schedules = model_with(exhaustive(), || {
        spawn_nodes(2, |id, c| {
            // Two back-to-back barriers: generation reuse is exactly
            // where a waiter released by generation g must not consume
            // generation g+1's arrival accounting.
            c.barrier(id).unwrap();
            c.barrier(id).unwrap();
        });
    });
    assert!(schedules > 1);
}

#[test]
fn barrier_three_nodes() {
    model_with(bounded(2), || {
        spawn_nodes(3, |id, c| {
            c.barrier(id).unwrap();
            c.barrier(id).unwrap();
        });
    });
}

#[test]
fn all_reduce_two_nodes_accumulates_once_per_node() {
    model_with(exhaustive(), || {
        spawn_nodes(2, |id, c| {
            // Distinct powers of two: any double-count or dropped
            // contribution changes the sum.
            let r = c.all_reduce_u64(id, &[1 << id]).unwrap();
            assert_eq!(r[0], 0b11);
        });
    });
}

#[test]
fn all_reduce_generations_do_not_bleed() {
    model_with(bounded(3), || {
        spawn_nodes(2, |id, c| {
            // Round 1 sums to 3, round 2 to 30: a waiter handed the
            // wrong generation's result (or an accumulator not reset
            // between rounds) fails one of the asserts.
            let a = c.all_reduce_u64(id, &[1 + id as u64]).unwrap();
            assert_eq!(a[0], 3);
            let b = c.all_reduce_u64(id, &[10 * (1 + id as u64)]).unwrap();
            assert_eq!(b[0], 30);
        });
    });
}

#[test]
fn all_reduce_three_nodes() {
    model_with(bounded(2), || {
        spawn_nodes(3, |id, c| {
            let r = c.all_reduce_u64(id, &[1 << id]).unwrap();
            assert_eq!(r[0], 0b111);
        });
    });
}

#[test]
fn broadcast_slot_handoff_across_generations() {
    model_with(bounded(3), || {
        spawn_nodes(2, |id, c| {
            // Round 1 rooted at node 0, round 2 at node 1: the slot must
            // be taken by the closing node of round 1 before any arrival
            // of round 2 stores into it.
            let d = (id == 0).then(|| bytes::Bytes::from_static(b"first"));
            let r = c.broadcast(id, d).unwrap();
            assert_eq!(&r[..], b"first");
            let d = (id == 1).then(|| bytes::Bytes::from_static(b"second"));
            let r = c.broadcast(id, d).unwrap();
            assert_eq!(&r[..], b"second");
        });
    });
}

#[test]
fn broadcast_two_roots_is_rejected_in_every_schedule() {
    model_with(exhaustive(), || {
        let c = Arc::new(Collectives::new(2));
        let peer = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.broadcast(1, Some(bytes::Bytes::from_static(b"b"))))
        };
        let mine = c.broadcast(0, Some(bytes::Bytes::from_static(b"a")));
        let theirs = peer.join().unwrap();
        // Whoever arrives second errors; the run is poisoned either way
        // and at most one root can have "won".
        assert!(mine.is_err() || theirs.is_err());
        assert!(c.is_poisoned());
    });
}

#[test]
fn poison_races_barrier_wait_without_lost_wakeup() {
    // THE regression test for the lost-wakeup bug this suite found in
    // the original implementation: `poison` used to set the flag and
    // notify *without* taking the barrier mutex, so a poison landing
    // between a waiter's predicate check and its park was never
    // delivered and the waiter slept forever. The model checker explores
    // that exact window; with the unlocked notify this test deadlocks.
    model_with(exhaustive(), || {
        let c = Arc::new(Collectives::new(2));
        let poisoner = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.poison(1))
        };
        // Node 0 heads into a barrier that node 1 will never join: only
        // the poison can release it.
        let err = c.barrier(0).unwrap_err();
        assert!(matches!(err, Error::Poisoned { node: 1 }));
        poisoner.join().unwrap();
    });
}

#[test]
fn poison_races_all_reduce_wait() {
    model_with(exhaustive(), || {
        let c = Arc::new(Collectives::new(2));
        let poisoner = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.poison(1))
        };
        let err = c.all_reduce_u64(0, &[7]).unwrap_err();
        assert!(matches!(err, Error::Poisoned { node: 1 }));
        poisoner.join().unwrap();
    });
}

#[test]
fn poison_races_broadcast_wait() {
    model_with(exhaustive(), || {
        let c = Arc::new(Collectives::new(2));
        let poisoner = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.poison(1))
        };
        let err = c.broadcast(0, None).unwrap_err();
        assert!(matches!(err, Error::Poisoned { node: 1 }));
        poisoner.join().unwrap();
    });
}

#[test]
fn deadline_expiry_races_poison_single_root_cause() {
    // A deadline expiring while another node is poisoning the run: the
    // waiter must report exactly one root cause — its own Timeout if its
    // poison CAS won, the foreign Poisoned{1} if it lost — and never
    // hang. Under the model the timer branch is explored at every park,
    // so both orders of the CAS race are covered. (Preemption-bounded:
    // every re-park re-offers the timer choice, so the unbounded
    // frontier does not terminate.)
    model_with(bounded(2), || {
        let c = Arc::new(Collectives::with_deadline(
            2,
            Some(std::time::Duration::from_millis(10)),
        ));
        let poisoner = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.poison(1))
        };
        let err = c.barrier(0).unwrap_err();
        match err {
            Error::Timeout { node: 0, ref op } => {
                assert_eq!(op, "barrier");
                assert_eq!(
                    c.poisoned_by(),
                    Some(0),
                    "a reported Timeout means this node's poison CAS won"
                );
            }
            Error::Poisoned { node: 1 } => {}
            e => panic!("unexpected error: {e}"),
        }
        poisoner.join().unwrap();
        assert!(c.is_poisoned());
    });
}

#[test]
fn deadline_expiry_races_normal_completion() {
    // A deadline expiring while the barrier is legitimately completing:
    // a wakeup that raced the timer must win (the waiter re-checks the
    // generation under the lock — a timeout may never eat a completed
    // round), and if the timer does win, exactly one node reports
    // Timeout and every other error names that same culprit.
    model_with(bounded(3), || {
        let c = Arc::new(Collectives::with_deadline(
            2,
            Some(std::time::Duration::from_millis(10)),
        ));
        let peer = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.barrier(1))
        };
        let mine = c.barrier(0);
        let theirs = peer.join().unwrap();
        if mine.is_ok() && theirs.is_ok() {
            assert!(!c.is_poisoned(), "healthy completion must not poison");
        } else {
            let culprit = c.poisoned_by().expect("an error implies poison");
            for (me, r) in [(0usize, &mine), (1usize, &theirs)] {
                match r {
                    Ok(()) => {}
                    Err(Error::Timeout { node, op }) => {
                        assert_eq!((*node, op.as_str()), (me, "barrier"));
                        assert_eq!(
                            culprit, me,
                            "timeout double-reported against a foreign poison"
                        );
                    }
                    Err(Error::Poisoned { node }) => assert_eq!(*node, culprit),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    });
}

#[test]
fn poison_vs_completing_barrier() {
    // Poison racing a barrier that *can* complete: each node must either
    // pass the barrier or observe Poisoned{node: 2} — never hang, never
    // report a different culprit.
    model_with(bounded(3), || {
        let c = Arc::new(Collectives::new(2));
        let poisoner = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.poison(2))
        };
        let other = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.barrier(1))
        };
        let mine = c.barrier(0);
        let theirs = other.join().unwrap();
        for r in [mine, theirs] {
            match r {
                Ok(()) => {}
                Err(Error::Poisoned { node }) => assert_eq!(node, 2),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        poisoner.join().unwrap();
    });
}
