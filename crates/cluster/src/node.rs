//! The per-node execution context: messaging, collectives, ledgers.
//!
//! Messaging robustness: every envelope carries a per-(sender, receiver)
//! sequence number and a payload checksum. The receiver delivers each
//! sequence number exactly once (injected duplicates are absorbed
//! silently), reports a sequence gap as a [`Error::NodeFailure`] naming
//! the lossy sender, and reports a checksum mismatch as
//! [`Error::Corrupt`] — so of the injectable message faults, duplication
//! is *tolerated* while loss and corruption are *detected* (see
//! DESIGN.md §8).

use crate::collective::Collectives;
use crate::fault::{FaultOp, FaultState};
use crate::stats::NodeStats;
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use gar_obs::{Obs, Stopwatch};
use gar_types::{Error, Result};
use std::cell::{Cell, RefCell};
use std::hash::Hasher;
use std::sync::Arc;
use std::time::Duration;

/// Reserved message tag marking the end of a node's contribution to the
/// current exchange phase (the distributed-termination token).
pub const CONTROL_TAG_EOS: u32 = u32::MAX;

/// Number of children of `node` in a binomial reduction tree over
/// `0..n` rooted at node 0: in round `r` (step `2^r`), every node
/// congruent to `2^r (mod 2^{r+1})` sends to `node - 2^r` and drops out.
pub(crate) fn binomial_children(node: usize, n: usize) -> usize {
    let mut count = 0;
    let mut step = 1;
    while step < n {
        if node.is_multiple_of(2 * step) {
            if node + step < n {
                count += 1;
            }
        } else {
            break; // this node sends at this round and exits
        }
        step *= 2;
    }
    count
}

/// A point-to-point message on the simulated interconnect.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub from: usize,
    /// Application-defined tag ([`CONTROL_TAG_EOS`] is reserved).
    pub tag: u32,
    /// Payload. `Bytes` keeps fan-out sends allocation-free.
    pub payload: Bytes,
    /// Per-(sender, receiver) sequence number, assigned at send time.
    /// Lets the receiver absorb duplicates and detect losses.
    pub seq: u64,
    /// Checksum over `(from, tag, seq, payload)`, computed before any
    /// injected corruption so the receiver can detect a damaged payload.
    pub checksum: u64,
}

/// Envelope checksum: FxHash over the header fields and payload bytes.
fn envelope_checksum(from: usize, tag: u32, seq: u64, payload: &[u8]) -> u64 {
    let mut h = gar_types::FxHasher::default();
    h.write_usize(from);
    h.write_u32(tag);
    h.write_u64(seq);
    h.write(payload);
    h.finish()
}

/// Poll granularity of the deadline-aware blocking receive: short enough
/// to observe a poisoned run promptly, long enough to stay off the CPU.
const RECV_POLL_SLICE: Duration = Duration::from_millis(2);

/// Everything one simulated node can do: its identity, its private memory
/// budget, point-to-point messaging with per-byte accounting, and the
/// coordinator collectives. Handed by value to each node's closure by
/// [`crate::Cluster::run`].
pub struct NodeCtx {
    node_id: usize,
    memory_budget: u64,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    stats: Arc<Vec<NodeStats>>,
    collectives: Arc<Collectives>,
    /// Per-destination next outgoing sequence number. `RefCell`: the ctx
    /// is handed out by shared reference but only ever used from its own
    /// node's thread.
    send_seq: RefCell<Vec<u64>>,
    /// Per-sender next expected incoming sequence number.
    recv_seq: RefCell<Vec<u64>>,
    /// Active fault injection, if the run has a [`crate::FaultPlan`].
    faults: Option<FaultState>,
    /// Observability sink (disabled by default; shared with the run's
    /// [`crate::ClusterConfig`]).
    obs: Obs,
    /// The pass most recently announced via [`NodeCtx::set_pass`]; labels
    /// this node's metrics and spans.
    pass: Cell<u64>,
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)] // crate-internal, called once by the runner
    pub(crate) fn new(
        node_id: usize,
        memory_budget: u64,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
        stats: Arc<Vec<NodeStats>>,
        collectives: Arc<Collectives>,
        faults: Option<FaultState>,
        obs: Obs,
    ) -> NodeCtx {
        let n = senders.len();
        NodeCtx {
            node_id,
            memory_budget,
            senders,
            inbox,
            stats,
            collectives,
            send_seq: RefCell::new(vec![0; n]),
            recv_seq: RefCell::new(vec![0; n]),
            faults,
            obs,
            pass: Cell::new(0),
        }
    }

    /// This node's identifier in `0..num_nodes`.
    #[inline]
    pub fn node_id(&self) -> usize {
        self.node_id
    }

    /// Cluster size.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.senders.len()
    }

    /// True for the coordinator (node 0 by convention, as in the paper).
    #[inline]
    pub fn is_coordinator(&self) -> bool {
        self.node_id == 0
    }

    /// The node's candidate-memory budget in bytes (the simulated 256 MB).
    #[inline]
    pub fn memory_budget(&self) -> u64 {
        self.memory_budget
    }

    /// This node's live counters.
    #[inline]
    pub fn stats(&self) -> &NodeStats {
        // lint:allow(panic-path): node_id < num_nodes by construction
        // (Cluster::run builds one ctx per stats slot); every other
        // stats access funnels through this accessor.
        &self.stats[self.node_id]
    }

    /// The run's observability sink.
    #[inline]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The pass most recently announced via [`NodeCtx::set_pass`]
    /// (0 before the first announcement).
    #[inline]
    pub fn current_pass(&self) -> u64 {
        self.pass.get()
    }

    /// Opens an observability span for `phase` on this node, labeled
    /// with the current pass. Inert when observability is disabled.
    pub fn span(&self, phase: &'static str) -> gar_obs::Span {
        self.obs.span(self.node_id as u64, self.pass.get(), phase)
    }

    /// Sends `payload` to node `to`. Messages to self are delivered but
    /// not charged to the communication ledger (the paper counts only
    /// inter-processor traffic; local work is CPU).
    ///
    /// This is the send-side fault boundary: an active [`crate::FaultPlan`]
    /// may delay, drop, duplicate, or corrupt the message here. Injected
    /// traffic is charged to `faults_injected`, never to the ledger.
    pub fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<()> {
        let len = payload.len() as u64;
        let seq = {
            let mut seqs = self.send_seq.borrow_mut();
            let slot = seqs.get_mut(to).ok_or_else(|| Error::NodeFailure {
                node: to,
                reason: format!("send to unknown peer {to}"),
            })?;
            let seq = *slot;
            *slot += 1;
            seq
        };
        let checksum = envelope_checksum(self.node_id, tag, seq, &payload);
        let mut duplicate = false;
        let mut payload = payload;
        if let Some(f) = &self.faults {
            let effects = f.on_send();
            let injected = effects.fault_count();
            if injected > 0 {
                self.stats().record_faults(injected);
                let labels = [("node", self.node_id as u64), ("pass", self.pass.get())];
                if effects.delay.is_some() {
                    self.obs.add("fault.delay", &labels, 1);
                }
                if effects.drop {
                    self.obs.add("fault.drop", &labels, 1);
                }
                if effects.corrupt {
                    self.obs.add("fault.corrupt", &labels, 1);
                }
                if effects.duplicate {
                    self.obs.add("fault.duplicate", &labels, 1);
                }
            }
            if let Some(d) = effects.delay {
                std::thread::sleep(d);
            }
            if effects.drop {
                // The sequence number was consumed, so the receiver will
                // observe the hole (as a gap, or as a timeout if this
                // was the last message it was waiting for).
                return Ok(());
            }
            if effects.corrupt {
                // Flip a payload byte *after* the checksum was computed.
                let mut v = payload.to_vec();
                match v.len() {
                    0 => v.push(0xFF),
                    // lint:allow(panic-path): n is v.len() of this
                    // non-empty arm, so n / 2 is always in bounds.
                    n => v[n / 2] ^= 0xFF,
                }
                payload = Bytes::from(v);
            }
            duplicate = effects.duplicate;
        }
        let env = Envelope {
            from: self.node_id,
            tag,
            payload,
            seq,
            checksum,
        };
        let copies = if duplicate { 2 } else { 1 };
        let sender = self.senders.get(to).ok_or_else(|| Error::NodeFailure {
            node: to,
            reason: format!("send to unknown peer {to}"),
        })?;
        for _ in 0..copies {
            sender.send(env.clone()).map_err(|_| Error::NodeFailure {
                node: to,
                reason: "inbox disconnected".into(),
            })?;
        }
        if to != self.node_id {
            self.stats().record_send(len);
            let link = [("node", self.node_id as u64), ("peer", to as u64)];
            self.obs.add("cluster.messages_sent", &link, 1);
            self.obs.add("cluster.bytes_sent", &link, len);
            self.obs.observe(
                "cluster.message_bytes",
                &[("node", self.node_id as u64)],
                len,
            );
        }
        Ok(())
    }

    /// Receive-side admission: absorbs duplicates (returns `None`),
    /// rejects gaps and corruption, charges the ledger for admitted
    /// remote messages.
    fn admit(&self, env: Envelope) -> Result<Option<Envelope>> {
        let expected = self
            .recv_seq
            .borrow()
            .get(env.from)
            .copied()
            .ok_or_else(|| Error::NodeFailure {
                node: env.from,
                reason: format!("message from unknown peer {}", env.from),
            })?;
        if env.seq < expected {
            // Already delivered: an injected duplicate. Absorb it.
            return Ok(None);
        }
        if env.seq > expected {
            return Err(Error::NodeFailure {
                node: env.from,
                reason: format!(
                    "message loss detected: expected seq {expected} from node {}, got seq {}",
                    env.from, env.seq
                ),
            });
        }
        if let Some(slot) = self.recv_seq.borrow_mut().get_mut(env.from) {
            *slot = expected + 1;
        }
        if envelope_checksum(env.from, env.tag, env.seq, &env.payload) != env.checksum {
            return Err(Error::Corrupt(format!(
                "message from node {} failed checksum (tag {}, seq {})",
                env.from, env.tag, env.seq
            )));
        }
        if env.from != self.node_id {
            self.stats().record_recv(env.payload.len() as u64);
            let link = [("node", self.node_id as u64), ("peer", env.from as u64)];
            self.obs.add("cluster.messages_received", &link, 1);
            self.obs
                .add("cluster.bytes_received", &link, env.payload.len() as u64);
        }
        Ok(Some(env))
    }

    /// Blocking receive. Charges the receive ledger for remote messages.
    ///
    /// The wait is deadline-aware: it polls in short slices so a
    /// poisoned run is observed promptly (instead of parking on a peer
    /// that will never send), and if the cluster was configured with a
    /// deadline, a wait that outlives it poisons the run and returns
    /// [`Error::Timeout`].
    pub fn recv(&self) -> Result<Envelope> {
        let start = Stopwatch::start();
        loop {
            if let Some(env) = self.try_admit_blocking()? {
                return Ok(env);
            }
            if let Some(limit) = self.collectives.deadline() {
                if start.elapsed() >= limit {
                    self.collectives.poison(self.node_id);
                    return Err(Error::Timeout {
                        node: self.node_id,
                        op: "recv".into(),
                    });
                }
            }
        }
    }

    /// One bounded wait slice of [`NodeCtx::recv`]: returns an admitted
    /// envelope, or `None` if the slice elapsed (or only duplicates
    /// arrived). Errors on poison, disconnect, gap, or corruption.
    fn try_admit_blocking(&self) -> Result<Option<Envelope>> {
        if self.collectives.is_poisoned() {
            // Surfaces the root cause instead of waiting on a dead peer.
            return self.collectives.check_poison().map(|()| None);
        }
        match self.inbox.recv_timeout(RECV_POLL_SLICE) {
            Ok(env) => self.admit(env),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Error::NodeFailure {
                node: self.node_id,
                reason: "all senders disconnected".into(),
            }),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Envelope>> {
        loop {
            match self.inbox.try_recv() {
                Ok(env) => {
                    if let Some(env) = self.admit(env)? {
                        return Ok(Some(env));
                    }
                    // Absorbed duplicate: keep draining.
                }
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    return Err(Error::NodeFailure {
                        node: self.node_id,
                        reason: "all senders disconnected".into(),
                    })
                }
            }
        }
    }

    /// Rendezvous of all nodes (uncharged control traffic).
    pub fn barrier(&self) -> Result<()> {
        self.obs
            .add("collective.barrier", &[("node", self.node_id as u64)], 1);
        self.collectives.barrier(self.node_id)
    }

    /// Gathers every node's `contribution` at the coordinator, sums
    /// element-wise, broadcasts the sum — the paper's "all node's sup_cou
    /// are gathered into the coordinator node ... and broadcast".
    ///
    /// Charged as a **binomial-tree** reduce + broadcast (what MPL's
    /// collective operations implement): each node sends its partial sum
    /// once up the tree and forwards the result once per child on the way
    /// down, so the coordinator handles `⌈log2 N⌉` vectors instead of
    /// `N-1` — a star-topology charge would hand the coordinator a
    /// spurious bottleneck the real machine does not have.
    pub fn all_reduce_u64(&self, contribution: &[u64]) -> Result<Arc<Vec<u64>>> {
        let bytes = 8 * contribution.len() as u64;
        let children = binomial_children(self.node_id, self.num_nodes()) as u64;
        let has_parent = u64::from(self.node_id != 0);
        // Up: one send to the parent, one receive per child.
        // Down: one receive from the parent, one send per child.
        let sends = has_parent + children;
        let recvs = children + has_parent;
        for _ in 0..sends {
            self.stats().record_send(bytes);
        }
        for _ in 0..recvs {
            self.stats().record_recv(bytes);
        }
        let me = [("node", self.node_id as u64)];
        self.obs.add("collective.all_reduce", &me, 1);
        self.obs.add("collective.messages_sent", &me, sends);
        self.obs.add("collective.bytes_sent", &me, bytes * sends);
        self.obs.add("collective.messages_received", &me, recvs);
        self.obs
            .add("collective.bytes_received", &me, bytes * recvs);
        self.collectives.all_reduce_u64(self.node_id, contribution)
    }

    /// One-to-all broadcast of `data` (exactly one node passes `Some`).
    /// Charged as one message down to each non-root node.
    pub fn broadcast(&self, data: Option<Bytes>) -> Result<Bytes> {
        let is_root = data.is_some();
        let root_send = data.as_ref().map(|d| d.len() as u64);
        let out = self.collectives.broadcast(self.node_id, data)?;
        let me = [("node", self.node_id as u64)];
        self.obs.add("collective.broadcast", &me, 1);
        if is_root {
            let bytes = root_send.unwrap_or(0);
            for _ in 0..self.num_nodes() - 1 {
                self.stats().record_send(bytes);
            }
            let fanout = self.num_nodes() as u64 - 1;
            self.obs.add("collective.messages_sent", &me, fanout);
            self.obs.add("collective.bytes_sent", &me, bytes * fanout);
        } else {
            self.stats().record_recv(out.len() as u64);
            self.obs.add("collective.messages_received", &me, 1);
            self.obs
                .add("collective.bytes_received", &me, out.len() as u64);
        }
        Ok(out)
    }

    /// Marks this run failed on behalf of this node (wakes peers blocked
    /// in collectives; the resulting [`Error::Poisoned`] names this node
    /// unless a peer poisoned first).
    pub fn poison(&self) {
        self.collectives.poison(self.node_id);
    }

    /// Announces the start of mining pass `k`. This is the pass-boundary
    /// fault point: a scheduled `panic@` fault panics here (modeling a
    /// node crash), and a scheduled `hang@` fault sleeps for the plan's
    /// hang duration (modeling an unresponsive node, which peers detect
    /// via their deadline).
    pub fn set_pass(&self, k: usize) {
        self.pass.set(k as u64);
        let Some(f) = &self.faults else { return };
        f.set_pass(k);
        let labels = [("node", self.node_id as u64), ("pass", k as u64)];
        match f.on_pass_start() {
            Some(FaultOp::Panic) => {
                self.stats().record_faults(1);
                self.obs.add("fault.panic", &labels, 1);
                // lint:allow(panic-path): this panic *is* the injected
                // fault — the runtime's panic recovery path is exactly
                // what the chaos suite exercises here.
                panic!("injected panic: node {} pass {k}", self.node_id);
            }
            Some(FaultOp::Hang) => {
                self.stats().record_faults(1);
                self.obs.add("fault.hang", &labels, 1);
                std::thread::sleep(f.hang_duration());
            }
            _ => {}
        }
    }

    /// The partition-scan fault boundary: returns an injected retryable
    /// I/O error if the active plan fires a scan fault at this point.
    /// Mining code calls this when *opening* a partition scan (before any
    /// transaction is consumed), so a retry never double-counts.
    pub fn inject_scan_fault(&self) -> Result<()> {
        let Some(f) = &self.faults else {
            return Ok(());
        };
        if f.on_scan() {
            self.stats().record_faults(1);
            self.obs.add(
                "fault.scan_error",
                &[("node", self.node_id as u64), ("pass", self.pass.get())],
                1,
            );
            return Err(Error::io(
                format!("injected scan fault on node {}", self.node_id),
                std::io::Error::other("fault injection"),
            ));
        }
        Ok(())
    }

    /// Starts an all-to-all data-exchange phase (see [`Exchange`]).
    pub fn exchange(&self) -> Exchange<'_> {
        Exchange {
            ctx: self,
            eos_seen: 0,
        }
    }
}

/// One all-to-all exchange phase with distributed termination: every node
/// streams data messages to peers, interleaving opportunistic receives
/// (bounding queue growth), then flushes an EOS token to every peer and
/// drains its inbox until it has seen EOS from all of them.
///
/// This is the count-support communication pattern of HPGM and the
/// H-HPGM family (paper Figures 3 and 5, lines 7-18).
pub struct Exchange<'a> {
    ctx: &'a NodeCtx,
    eos_seen: usize,
}

impl Exchange<'_> {
    /// Sends a data message to `to` (self-sends allowed; see
    /// [`NodeCtx::send`]).
    pub fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<()> {
        debug_assert_ne!(tag, CONTROL_TAG_EOS, "EOS tag is reserved");
        self.ctx.send(to, tag, payload)
    }

    /// Drains currently pending messages without blocking, invoking
    /// `on_data` per data message. Call this periodically while producing.
    pub fn poll(&mut self, mut on_data: impl FnMut(&Envelope) -> Result<()>) -> Result<()> {
        while let Some(env) = self.ctx.try_recv()? {
            if env.tag == CONTROL_TAG_EOS {
                self.eos_seen += 1;
            } else {
                on_data(&env)?;
            }
        }
        Ok(())
    }

    /// Signals this node is done producing, then blocks until every peer
    /// has signaled too, handing each remaining data message to `on_data`.
    pub fn finish(mut self, mut on_data: impl FnMut(&Envelope) -> Result<()>) -> Result<()> {
        let me = self.ctx.node_id();
        for peer in 0..self.ctx.num_nodes() {
            if peer != me {
                self.ctx.send(peer, CONTROL_TAG_EOS, Bytes::new())?;
            }
        }
        let expect = self.ctx.num_nodes() - 1;
        while self.eos_seen < expect {
            let env = self.ctx.recv()?;
            if env.tag == CONTROL_TAG_EOS {
                self.eos_seen += 1;
            } else {
                on_data(&env)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::binomial_children;

    #[test]
    fn binomial_tree_shape() {
        // n = 8 rooted at 0: children(0) = {1,2,4}, children(2) = {3},
        // children(4) = {5,6}, children(6) = {7}; odd nodes are leaves.
        assert_eq!(binomial_children(0, 8), 3);
        assert_eq!(binomial_children(1, 8), 0);
        assert_eq!(binomial_children(2, 8), 1);
        assert_eq!(binomial_children(3, 8), 0);
        assert_eq!(binomial_children(4, 8), 2);
        assert_eq!(binomial_children(6, 8), 1);
        // Edges total n - 1 for various n.
        for n in 1..40 {
            let edges: usize = (0..n).map(|i| binomial_children(i, n)).sum();
            assert_eq!(edges, n - 1, "n = {n}");
        }
    }
}
