//! Synchronization shim: `std::sync` in normal builds, the
//! `gar-modelcheck` virtual primitives under `--cfg gar_loom`.
//!
//! Everything in [`crate::collective`] goes through these names, so the
//! exact code that runs in production is the code the model checker
//! explores (`cargo xtask loom`). The shim presents one API over both
//! backends:
//!
//! * `Mutex::lock` returns the guard directly. On the `std` backend a
//!   poisoned lock is recovered with `into_inner` — a panicking node
//!   already poisons the collectives at a higher level (see
//!   [`crate::Collectives::poison`]), and the protocol state itself is
//!   kept consistent by the panicking operation never leaving a
//!   half-updated generation behind.
//! * `Condvar::wait` consumes and returns the guard (`std` style);
//!   callers must loop on their predicate either way.

#[cfg(not(gar_loom))]
mod backend {
    use std::sync::PoisonError;

    pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    pub use std::sync::Arc;

    /// `std::sync::Mutex` with panic-poisoning flattened away.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard type re-exported so signatures can name it under both
    /// backends.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// `std::sync::Condvar` with panic-poisoning flattened away.
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            // lint:allow(wait-loop): raw std passthrough — the predicate
            // re-check loop lives at every call site (collective.rs).
            // lint:allow(no-deadline): this *is* the primitive the
            // deadline-aware wrapper (Collectives::wait_while) builds on.
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        /// Waits with a deadline; the bool reports expiry.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: std::time::Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (guard, result) = self
                .0
                .wait_timeout(guard, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            (guard, result.timed_out())
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Monotonic clock for deadline accounting.
    pub use std::time::Instant;
}

#[cfg(gar_loom)]
mod backend {
    pub use gar_modelcheck::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    pub use gar_modelcheck::sync::{Condvar, Mutex, MutexGuard};
    pub use std::sync::Arc;

    /// Virtual time stands still under the model checker: deadlines
    /// never expire by clock — expiry is a nondeterministic scheduler
    /// branch inside the model `Condvar::wait_timeout` instead.
    #[derive(Clone, Copy, Debug)]
    pub struct Instant;

    impl Instant {
        pub fn now() -> Instant {
            Instant
        }

        pub fn elapsed(&self) -> std::time::Duration {
            std::time::Duration::ZERO
        }
    }
}

pub(crate) use backend::{Arc, AtomicUsize, Condvar, Instant, Mutex, Ordering};

// These are part of the shim surface even where collective.rs currently
// names guards through inference and tracks poison state in an
// AtomicUsize.
#[allow(unused_imports)]
pub(crate) use backend::{AtomicBool, MutexGuard};
