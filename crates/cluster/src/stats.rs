//! Per-node counters: the raw material of every figure in the paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live, thread-safe counters for one simulated node. All increments are
/// relaxed — the counters are independent tallies, never used for
/// synchronization.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Point-to-point messages sent.
    pub messages_sent: AtomicU64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: AtomicU64,
    /// Point-to-point messages received.
    pub messages_received: AtomicU64,
    /// Point-to-point payload bytes received (Table 6's metric).
    pub bytes_received: AtomicU64,
    /// Candidate hash-table probes performed on this node (Figure 15's
    /// metric: "the number of hash table probes to increment sup_cou").
    pub hash_probes: AtomicU64,
    /// Abstract CPU work units (itemset generations, ancestor walks, ...).
    pub cpu_ticks: AtomicU64,
    /// Bytes read from the node's local disk partition.
    pub io_bytes: AtomicU64,
    /// Full passes over the local partition (NPGM fragments re-scan).
    pub scan_passes: AtomicU64,
    /// Faults injected on this node by the active [`crate::FaultPlan`]
    /// (drops, duplicates, corruptions, delays, scan errors, panics,
    /// hangs).
    pub faults_injected: AtomicU64,
}

impl NodeStats {
    /// Captures a consistent-enough snapshot (relaxed loads; callers take
    /// snapshots at phase boundaries where the node threads are quiesced).
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        // relaxed: the counters are independent monotonic tallies and
        // snapshots are taken at phase boundaries after the worker
        // threads quiesce, so no inter-counter ordering is required.
        NodeStatsSnapshot {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            hash_probes: self.hash_probes.load(Ordering::Relaxed),
            cpu_ticks: self.cpu_ticks.load(Ordering::Relaxed),
            io_bytes: self.io_bytes.load(Ordering::Relaxed),
            scan_passes: self.scan_passes.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }

    /// Adds `n` abstract CPU work units.
    #[inline]
    pub fn add_cpu(&self, n: u64) {
        // relaxed: independent monotonic counter; aggregated via snapshot()
        self.cpu_ticks.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` successful hash-table probes (sup_cou increments — the
    /// unit of Figure 15). CPU work for counting is charged separately via
    /// [`NodeStats::add_cpu`] with the counter's `work` meter, which also
    /// covers unsuccessful probes.
    #[inline]
    pub fn add_probes(&self, n: u64) {
        // relaxed: independent monotonic counter; aggregated via snapshot()
        self.hash_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a sent message of `bytes` payload bytes.
    #[inline]
    pub fn record_send(&self, bytes: u64) {
        // relaxed: count/byte tallies are read together only in snapshot()
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a received message of `bytes` payload bytes.
    #[inline]
    pub fn record_recv(&self, bytes: u64) {
        // relaxed: count/byte tallies are read together only in snapshot()
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` of local-disk input.
    #[inline]
    pub fn record_io(&self, bytes: u64) {
        // relaxed: independent monotonic counter; aggregated via snapshot()
        self.io_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one complete pass over the local partition.
    #[inline]
    pub fn record_scan_pass(&self) {
        // relaxed: independent monotonic counter; aggregated via snapshot()
        self.scan_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` injected faults.
    #[inline]
    pub fn record_faults(&self, n: u64) {
        // relaxed: independent monotonic counter; aggregated via snapshot()
        self.faults_injected.fetch_add(n, Ordering::Relaxed);
    }
}

/// A frozen copy of one node's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// See [`NodeStats::messages_sent`].
    pub messages_sent: u64,
    /// See [`NodeStats::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`NodeStats::messages_received`].
    pub messages_received: u64,
    /// See [`NodeStats::bytes_received`].
    pub bytes_received: u64,
    /// See [`NodeStats::hash_probes`].
    pub hash_probes: u64,
    /// See [`NodeStats::cpu_ticks`].
    pub cpu_ticks: u64,
    /// See [`NodeStats::io_bytes`].
    pub io_bytes: u64,
    /// See [`NodeStats::scan_passes`].
    pub scan_passes: u64,
    /// See [`NodeStats::faults_injected`].
    pub faults_injected: u64,
}

impl NodeStatsSnapshot {
    /// Component-wise difference (`self - earlier`): the activity between
    /// two phase boundaries.
    pub fn delta_since(&self, earlier: &NodeStatsSnapshot) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            messages_sent: self.messages_sent - earlier.messages_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            messages_received: self.messages_received - earlier.messages_received,
            bytes_received: self.bytes_received - earlier.bytes_received,
            hash_probes: self.hash_probes - earlier.hash_probes,
            cpu_ticks: self.cpu_ticks - earlier.cpu_ticks,
            io_bytes: self.io_bytes - earlier.io_bytes,
            scan_passes: self.scan_passes - earlier.scan_passes,
            faults_injected: self.faults_injected - earlier.faults_injected,
        }
    }
}

/// Skew summary of a per-node series (used for the Figure-15 narrative:
/// how flat is the probe distribution?).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest value.
    pub max: f64,
    /// `max / mean` — 1.0 is perfectly flat.
    pub max_over_mean: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
}

/// Computes the [`SkewSummary`] of a series. Returns a flat summary for an
/// all-zero or empty series.
pub fn skew_summary(values: &[u64]) -> SkewSummary {
    if values.is_empty() {
        return SkewSummary {
            mean: 0.0,
            max: 0.0,
            max_over_mean: 1.0,
            cv: 0.0,
        };
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<u64>() as f64 / n;
    let max = values.iter().copied().max().unwrap_or(0) as f64;
    if mean == 0.0 {
        return SkewSummary {
            mean,
            max,
            max_over_mean: 1.0,
            cv: 0.0,
        };
    }
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    SkewSummary {
        mean,
        max,
        max_over_mean: max / mean,
        cv: var.sqrt() / mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = NodeStats::default();
        s.record_send(100);
        s.record_send(50);
        s.record_recv(10);
        s.add_probes(7);
        s.add_cpu(3);
        s.record_io(4096);
        s.record_scan_pass();
        s.record_faults(2);
        let snap = s.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.messages_received, 1);
        assert_eq!(snap.bytes_received, 10);
        assert_eq!(snap.hash_probes, 7);
        assert_eq!(snap.cpu_ticks, 3);
        assert_eq!(snap.io_bytes, 4096);
        assert_eq!(snap.scan_passes, 1);
        assert_eq!(snap.faults_injected, 2);
    }

    #[test]
    fn delta_isolates_a_phase() {
        let s = NodeStats::default();
        s.record_send(100);
        let before = s.snapshot();
        s.record_send(23);
        s.add_probes(5);
        let after = s.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.messages_sent, 1);
        assert_eq!(d.bytes_sent, 23);
        assert_eq!(d.hash_probes, 5);
    }

    #[test]
    fn skew_of_flat_series_is_one() {
        let s = skew_summary(&[10, 10, 10, 10]);
        assert_eq!(s.max_over_mean, 1.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn skew_of_spiky_series() {
        let s = skew_summary(&[0, 0, 0, 100]);
        assert_eq!(s.mean, 25.0);
        assert_eq!(s.max_over_mean, 4.0);
        assert!(s.cv > 1.5);
    }

    #[test]
    fn skew_handles_degenerate_input() {
        assert_eq!(skew_summary(&[]).max_over_mean, 1.0);
        assert_eq!(skew_summary(&[0, 0]).max_over_mean, 1.0);
    }
}
