//! A shared-nothing parallel machine, simulated.
//!
//! The paper runs on a 16-node IBM SP-2: POWER2 processors, 256 MB local
//! memory and a 2 GB local disk per node, joined by the High-Performance
//! Switch, programmed in a message-passing style with a coordinator node.
//! This crate reproduces that execution model on one machine:
//!
//! * each simulated node is an OS thread with a private message inbox
//!   (crossbeam channels play the switch);
//! * every byte and message crossing a link is **counted per node** — the
//!   paper's Table 6 metric ("average amount of received messages") falls
//!   out of these counters directly;
//! * collective operations (barrier, all-reduce of support-count vectors,
//!   coordinator broadcast of `L_k`) are provided and *also* charged to the
//!   communication ledger as gather-to-coordinator + broadcast;
//! * a [`CostModel`] converts a node's counters (CPU ticks, bytes moved,
//!   I/O) into an SP-2-shaped execution time. Reported times are the
//!   critical path: `max` over nodes, per phase. Real wall-clock of the
//!   threaded run is reported alongside by the bench harness.
//!
//! Why a simulator instead of MPI: no SP-2 (or any multi-node machine)
//! exists in this environment, and Rust MPI bindings are thin. The paper's
//! claims are about *relative* communication volume, workload distribution
//! and speedup shape — all functions of the counted quantities, which this
//! substrate measures exactly (see DESIGN.md §2).

// Under `--cfg gar_loom` (see `cargo xtask loom`) only the collectives
// and the sync shim compile: the model checker replaces std primitives,
// and the channel/thread machinery of the full simulator is out of the
// model's scope.
mod collective;
#[cfg(not(gar_loom))]
mod cost;
#[cfg(not(gar_loom))]
mod fault;
#[cfg(not(gar_loom))]
mod node;
#[cfg(not(gar_loom))]
mod runner;
#[cfg(not(gar_loom))]
pub mod stats;
pub(crate) mod sync;

pub use collective::Collectives;
#[cfg(not(gar_loom))]
pub use cost::CostModel;
#[cfg(not(gar_loom))]
pub use fault::{FaultOp, FaultPlan, RetryPolicy, ScheduledFault, ServeFault, ServeFaultOp};
#[cfg(not(gar_loom))]
pub use node::{Envelope, NodeCtx, CONTROL_TAG_EOS};
#[cfg(not(gar_loom))]
pub use runner::{Cluster, ClusterConfig, ClusterFailure, ClusterRun, RunOutcome};
#[cfg(not(gar_loom))]
pub use stats::{NodeStats, NodeStatsSnapshot};
