//! Deterministic, seeded fault injection for the cluster simulator.
//!
//! A [`FaultPlan`] describes which faults to inject and where. Faults
//! come in two flavors:
//!
//! * **probabilistic** — message drop / duplication / corruption /
//!   delay at the [`crate::NodeCtx`] send boundary and read errors at
//!   the partition-scan boundary, each drawn from a per-node SplitMix64
//!   stream seeded from `(plan seed, node id)`. Because every node's
//!   operation sequence is deterministic and the stream is private to
//!   the node, the *same faults fire at the same operations on every
//!   run of the same plan*, regardless of thread scheduling.
//! * **scheduled** — exact `(node, pass, op)` points (panic, hang,
//!   drop, corrupt, scan error). Each scheduled fault fires **once**:
//!   the fired flag is shared across clones of the plan, so when
//!   degraded-mode recovery re-runs a pass the fault does not re-fire
//!   and the retry can converge.
//!
//! The plan is pure data; the hooks that consult it live in
//! [`crate::NodeCtx`] (send/recv and scan) and every injected fault is
//! counted in [`crate::NodeStats`].

use gar_types::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Kinds of faults a scheduled point can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Panic the node's thread at the start of the pass.
    Panic,
    /// Park the node past its peers' deadlines at the start of the pass.
    Hang,
    /// Silently drop the node's next outgoing message in the pass.
    Drop,
    /// Corrupt the payload of the node's next outgoing message in the pass.
    Corrupt,
    /// Fail the node's next partition-scan open in the pass.
    ScanError,
}

impl FaultOp {
    fn parse(s: &str) -> Option<FaultOp> {
        Some(match s {
            "panic" => FaultOp::Panic,
            "hang" => FaultOp::Hang,
            "drop" => FaultOp::Drop,
            "corrupt" => FaultOp::Corrupt,
            "scan" => FaultOp::ScanError,
            _ => return None,
        })
    }

    fn name(&self) -> &'static str {
        match self {
            FaultOp::Panic => "panic",
            FaultOp::Hang => "hang",
            FaultOp::Drop => "drop",
            FaultOp::Corrupt => "corrupt",
            FaultOp::ScanError => "scan",
        }
    }
}

/// One scheduled `(node, pass, op)` fault point.
#[derive(Clone, Debug)]
pub struct ScheduledFault {
    /// Node the fault fires on.
    pub node: usize,
    /// Mining pass the fault fires in (pass 1 is the item-counting pass).
    pub pass: usize,
    /// What to inject.
    pub op: FaultOp,
    /// Shared across clones of the plan: a fault consumed by one run
    /// attempt stays consumed when recovery re-runs the pass.
    fired: Arc<AtomicBool>,
}

impl ScheduledFault {
    /// A not-yet-fired scheduled fault.
    pub fn new(node: usize, pass: usize, op: FaultOp) -> ScheduledFault {
        ScheduledFault {
            node,
            pass,
            op,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Consumes the fault; only the first caller sees `true`.
    fn take(&self) -> bool {
        !self.fired.swap(true, Ordering::SeqCst)
    }

    /// Whether the fault has already fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// Kinds of faults the serving tier can inject (see `gar-serve`). They
/// address server-side entities rather than mining nodes: accepted
/// connections (in accept order), shard workers (by shard id and job
/// sequence number), and store-reload attempts (in request order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFaultOp {
    /// Drop the connection right after reading a request, before any
    /// response byte — the client sees a reset mid-query.
    ConnReset,
    /// Write the next response frame in tiny chunks with delays between
    /// them (partial writes; the client's read loop must reassemble).
    SlowFrame,
    /// Panic the shard worker at the given job number (1-based).
    ShardPanic,
    /// Stall the shard worker for the plan's `hang` duration at the
    /// given job number — backlog builds behind it.
    ShardStall,
    /// Corrupt the bytes of the numbered reload attempt (1-based) after
    /// they are read but before validation — the swap must be rejected
    /// while the old epoch keeps serving.
    StaleSwap,
}

impl ServeFaultOp {
    fn parse(s: &str) -> Option<ServeFaultOp> {
        Some(match s {
            "conn-reset" => ServeFaultOp::ConnReset,
            "slow-frame" => ServeFaultOp::SlowFrame,
            "shard-panic" => ServeFaultOp::ShardPanic,
            "shard-stall" => ServeFaultOp::ShardStall,
            "stale-swap" => ServeFaultOp::StaleSwap,
            _ => return None,
        })
    }

    fn name(&self) -> &'static str {
        match self {
            ServeFaultOp::ConnReset => "conn-reset",
            ServeFaultOp::SlowFrame => "slow-frame",
            ServeFaultOp::ShardPanic => "shard-panic",
            ServeFaultOp::ShardStall => "shard-stall",
            ServeFaultOp::StaleSwap => "stale-swap",
        }
    }
}

/// One scheduled serve-side fault point. `at` is the connection index,
/// shard id, or reload number depending on the op; `job` is the 1-based
/// job sequence number for shard ops (0 otherwise).
#[derive(Clone, Debug)]
pub struct ServeFault {
    /// What to inject.
    pub op: ServeFaultOp,
    /// Connection index (`c`), shard id (`s`), or reload number (`r`).
    pub at: usize,
    /// Job sequence number within the shard (`q`, 1-based); 0 for
    /// connection and reload faults.
    pub job: usize,
    /// Shared across clones, exactly like [`ScheduledFault::fired`].
    fired: Arc<AtomicBool>,
}

impl ServeFault {
    /// A not-yet-fired serve fault.
    pub fn new(op: ServeFaultOp, at: usize, job: usize) -> ServeFault {
        ServeFault {
            op,
            at,
            job,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    fn take(&self) -> bool {
        !self.fired.swap(true, Ordering::SeqCst)
    }

    /// Whether the fault has already fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A deterministic fault-injection plan for one cluster run (or a
/// sequence of recovery attempts over the same run).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the per-node probabilistic streams.
    pub seed: u64,
    /// Probability of silently dropping an outgoing message.
    pub p_drop: f64,
    /// Probability of duplicating an outgoing message.
    pub p_dup: f64,
    /// Probability of corrupting an outgoing message's payload.
    pub p_corrupt: f64,
    /// Probability of delaying an outgoing message by [`FaultPlan::delay`].
    pub p_delay: f64,
    /// Probability of failing a partition-scan open.
    pub p_scan_error: f64,
    /// Sleep injected when a delay fault fires.
    pub delay: Duration,
    /// Sleep injected when a hang fault fires; must exceed the peers'
    /// deadline for the hang to be observable as a timeout.
    pub hang: Duration,
    /// Exact fault points.
    pub scheduled: Vec<ScheduledFault>,
    /// Exact serve-side fault points (consulted by `gar-serve`).
    pub serve: Vec<ServeFault>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            p_drop: 0.0,
            p_dup: 0.0,
            p_corrupt: 0.0,
            p_delay: 0.0,
            p_scan_error: 0.0,
            delay: Duration::from_millis(1),
            hang: Duration::from_millis(500),
            scheduled: Vec::new(),
            serve: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn with_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Builder-style addition of a scheduled fault point.
    pub fn schedule(mut self, node: usize, pass: usize, op: FaultOp) -> FaultPlan {
        self.scheduled.push(ScheduledFault::new(node, pass, op));
        self
    }

    /// Builder-style addition of a serve-side fault point.
    pub fn schedule_serve(mut self, op: ServeFaultOp, at: usize, job: usize) -> FaultPlan {
        self.serve.push(ServeFault::new(op, at, job));
        self
    }

    /// Consumes the first unfired connection fault matching `(op, conn)`.
    /// `conn` is the index of the connection in accept order (0-based).
    pub fn take_serve_conn(&self, op: ServeFaultOp, conn: usize) -> bool {
        debug_assert!(matches!(
            op,
            ServeFaultOp::ConnReset | ServeFaultOp::SlowFrame
        ));
        self.serve
            .iter()
            .filter(|f| f.op == op && f.at == conn)
            .any(|f| f.take())
    }

    /// Consumes the first unfired shard fault matching `(op, shard, job)`.
    /// `job` is the 1-based job sequence number the shard worker is about
    /// to process (counted across restarts).
    pub fn take_serve_shard(&self, op: ServeFaultOp, shard: usize, job: usize) -> bool {
        debug_assert!(matches!(
            op,
            ServeFaultOp::ShardPanic | ServeFaultOp::ShardStall
        ));
        self.serve
            .iter()
            .filter(|f| f.op == op && f.at == shard && f.job == job)
            .any(|f| f.take())
    }

    /// Consumes the stale-swap fault for the numbered reload attempt
    /// (1-based, counted across the server's lifetime).
    pub fn take_serve_reload(&self, reload: usize) -> bool {
        self.serve
            .iter()
            .filter(|f| f.op == ServeFaultOp::StaleSwap && f.at == reload)
            .any(|f| f.take())
    }

    /// Parses the CLI `--faults` spec: comma-separated tokens, e.g.
    /// `seed=42,p-drop=0.01,delay-ms=2,panic@n1p2,scan@n0p1`.
    ///
    /// Key/value tokens: `seed`, `p-drop`, `p-dup`, `p-corrupt`,
    /// `p-delay`, `p-scan` (all probabilities in `[0, 1]`), `delay-ms`,
    /// `hang-ms`. Scheduled tokens: `<op>@n<node>p<pass>` with `op` one
    /// of `panic`, `hang`, `drop`, `corrupt`, `scan`.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let bad =
            |tok: &str, why: &str| Error::InvalidConfig(format!("fault spec token `{tok}`: {why}"));
        let mut plan = FaultPlan::default();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some((key, value)) = tok.split_once('=') {
                match key {
                    "seed" => {
                        plan.seed = value.parse().map_err(|_| bad(tok, "seed must be a u64"))?
                    }
                    "delay-ms" => {
                        let ms: u64 = value.parse().map_err(|_| bad(tok, "delay must be in ms"))?;
                        plan.delay = Duration::from_millis(ms);
                    }
                    "hang-ms" => {
                        let ms: u64 = value.parse().map_err(|_| bad(tok, "hang must be in ms"))?;
                        plan.hang = Duration::from_millis(ms);
                    }
                    "p-drop" | "p-dup" | "p-corrupt" | "p-delay" | "p-scan" => {
                        let p: f64 = value
                            .parse()
                            .map_err(|_| bad(tok, "probability must be a float"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(bad(tok, "probability must be within [0, 1]"));
                        }
                        match key {
                            "p-drop" => plan.p_drop = p,
                            "p-dup" => plan.p_dup = p,
                            "p-corrupt" => plan.p_corrupt = p,
                            "p-delay" => plan.p_delay = p,
                            _ => plan.p_scan_error = p,
                        }
                    }
                    _ => return Err(bad(tok, "unknown key")),
                }
            } else if let Some((op, at)) = tok.split_once('@') {
                if let Some(op) = ServeFaultOp::parse(op) {
                    let fault = match op {
                        ServeFaultOp::ConnReset | ServeFaultOp::SlowFrame => {
                            let conn = at
                                .strip_prefix('c')
                                .and_then(|c| c.parse().ok())
                                .ok_or_else(|| bad(tok, "expected <op>@c<conn>"))?;
                            ServeFault::new(op, conn, 0)
                        }
                        ServeFaultOp::ShardPanic | ServeFaultOp::ShardStall => {
                            let rest = at
                                .strip_prefix('s')
                                .ok_or_else(|| bad(tok, "expected <op>@s<shard>q<job>"))?;
                            let (shard, job) = rest
                                .split_once('q')
                                .ok_or_else(|| bad(tok, "expected <op>@s<shard>q<job>"))?;
                            let shard = shard
                                .parse()
                                .map_err(|_| bad(tok, "shard must be an integer"))?;
                            let job: usize = job
                                .parse()
                                .map_err(|_| bad(tok, "job must be an integer"))?;
                            if job == 0 {
                                return Err(bad(tok, "job numbers are 1-based"));
                            }
                            ServeFault::new(op, shard, job)
                        }
                        ServeFaultOp::StaleSwap => {
                            let reload: usize =
                                at.strip_prefix('r')
                                    .and_then(|r| r.parse().ok())
                                    .ok_or_else(|| bad(tok, "expected stale-swap@r<reload>"))?;
                            if reload == 0 {
                                return Err(bad(tok, "reload numbers are 1-based"));
                            }
                            ServeFault::new(op, reload, 0)
                        }
                    };
                    plan.serve.push(fault);
                    continue;
                }
                let op = FaultOp::parse(op)
                    .ok_or_else(|| bad(tok, "op must be panic|hang|drop|corrupt|scan"))?;
                let rest = at
                    .strip_prefix('n')
                    .ok_or_else(|| bad(tok, "expected <op>@n<node>p<pass>"))?;
                let (node, pass) = rest
                    .split_once('p')
                    .ok_or_else(|| bad(tok, "expected <op>@n<node>p<pass>"))?;
                let node = node
                    .parse()
                    .map_err(|_| bad(tok, "node must be an integer"))?;
                let pass = pass
                    .parse()
                    .map_err(|_| bad(tok, "pass must be an integer"))?;
                plan.scheduled.push(ScheduledFault::new(node, pass, op));
            } else {
                return Err(bad(tok, "expected key=value or <op>@n<node>p<pass>"));
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to the spec grammar (for reports and
    /// reproduction instructions).
    pub fn render(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        let d = FaultPlan::default();
        let mut prob = |key: &str, v: f64| {
            if v > 0.0 {
                parts.push(format!("{key}={v}"));
            }
        };
        prob("p-drop", self.p_drop);
        prob("p-dup", self.p_dup);
        prob("p-corrupt", self.p_corrupt);
        prob("p-delay", self.p_delay);
        prob("p-scan", self.p_scan_error);
        if self.delay != d.delay {
            parts.push(format!("delay-ms={}", self.delay.as_millis()));
        }
        if self.hang != d.hang {
            parts.push(format!("hang-ms={}", self.hang.as_millis()));
        }
        for s in &self.scheduled {
            parts.push(format!("{}@n{}p{}", s.op.name(), s.node, s.pass));
        }
        for f in &self.serve {
            parts.push(match f.op {
                ServeFaultOp::ConnReset | ServeFaultOp::SlowFrame => {
                    format!("{}@c{}", f.op.name(), f.at)
                }
                ServeFaultOp::ShardPanic | ServeFaultOp::ShardStall => {
                    format!("{}@s{}q{}", f.op.name(), f.at, f.job)
                }
                ServeFaultOp::StaleSwap => format!("{}@r{}", f.op.name(), f.at),
            });
        }
        parts.join(",")
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.p_drop == 0.0
            && self.p_dup == 0.0
            && self.p_corrupt == 0.0
            && self.p_delay == 0.0
            && self.p_scan_error == 0.0
            && self.scheduled.is_empty()
            && self.serve.is_empty()
    }

    /// Per-node injection state for one run attempt.
    pub(crate) fn node_state(&self, node: usize) -> FaultState {
        FaultState {
            plan: self.clone(),
            node,
            rng: std::cell::Cell::new(
                self.seed
                    .wrapping_add((node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
            pass: std::cell::Cell::new(0),
        }
    }
}

/// Effects to apply to one outgoing message.
#[derive(Debug, Default, PartialEq, Eq)]
pub(crate) struct SendEffects {
    pub drop: bool,
    pub duplicate: bool,
    pub corrupt: bool,
    pub delay: Option<Duration>,
}

impl SendEffects {
    pub fn fault_count(&self) -> u64 {
        self.drop as u64 + self.duplicate as u64 + self.corrupt as u64 + self.delay.is_some() as u64
    }
}

/// One node's view of the plan: a private RNG stream plus the current
/// pass number. All methods take `&self` (interior mutability) because
/// [`crate::NodeCtx`] hands out shared references; a `FaultState` is
/// only ever used from its own node's thread.
pub(crate) struct FaultState {
    plan: FaultPlan,
    node: usize,
    rng: std::cell::Cell<u64>,
    pass: std::cell::Cell<usize>,
}

impl FaultState {
    /// SplitMix64 step.
    fn next_u64(&self) -> u64 {
        let mut s = self.rng.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.rng.set(s);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^ (s >> 31)
    }

    /// Uniform draw in `[0, 1)`. Always advances the stream so fault
    /// positions stay aligned across runs regardless of which earlier
    /// faults fired.
    fn roll(&self, p: f64) -> bool {
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        p > 0.0 && draw < p
    }

    pub fn set_pass(&self, k: usize) {
        self.pass.set(k);
    }

    /// Consumes the first unfired scheduled fault matching `(this node,
    /// current pass, op)`.
    fn take_scheduled(&self, op: FaultOp) -> bool {
        self.plan
            .scheduled
            .iter()
            .filter(|s| s.node == self.node && s.pass == self.pass.get() && s.op == op)
            .any(|s| s.take())
    }

    /// Faults to apply to the next outgoing message.
    pub fn on_send(&self) -> SendEffects {
        // Fixed draw order keeps the stream aligned no matter what fires.
        let drop = self.roll(self.plan.p_drop) || self.take_scheduled(FaultOp::Drop);
        let duplicate = self.roll(self.plan.p_dup);
        let corrupt = self.roll(self.plan.p_corrupt) || self.take_scheduled(FaultOp::Corrupt);
        let delay = self.roll(self.plan.p_delay).then_some(self.plan.delay);
        SendEffects {
            drop,
            duplicate,
            corrupt,
            delay,
        }
    }

    /// Whether to fail the next partition-scan open.
    pub fn on_scan(&self) -> bool {
        let rolled = self.roll(self.plan.p_scan_error);
        rolled || self.take_scheduled(FaultOp::ScanError)
    }

    /// Pass-start fault, if one is scheduled here: `Panic` or `Hang`.
    pub fn on_pass_start(&self) -> Option<FaultOp> {
        if self.take_scheduled(FaultOp::Panic) {
            Some(FaultOp::Panic)
        } else if self.take_scheduled(FaultOp::Hang) {
            Some(FaultOp::Hang)
        } else {
            None
        }
    }

    pub fn hang_duration(&self) -> Duration {
        self.plan.hang
    }
}

/// Bounded retry with linear backoff for *retryable* errors
/// ([`Error::is_retryable`]): transient I/O (including injected scan
/// faults) and timeouts. Fatal errors (corruption, protocol violations,
/// node failures) pass through on the first occurrence.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: usize,
    /// Sleep before attempt `k` is `backoff * k`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Runs `f`, retrying retryable failures up to the attempt budget.
    pub fn run<T>(&self, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < attempts => {
                    std::thread::sleep(self.backoff * attempt as u32);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_roundtrips() {
        let plan =
            FaultPlan::parse("seed=42, p-drop=0.25, delay-ms=3, panic@n1p2, scan@n0p1").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.p_drop, 0.25);
        assert_eq!(plan.delay, Duration::from_millis(3));
        assert_eq!(plan.scheduled.len(), 2);
        assert_eq!(plan.scheduled[0].op, FaultOp::Panic);
        assert_eq!((plan.scheduled[0].node, plan.scheduled[0].pass), (1, 2));
        let rendered = plan.render();
        let reparsed = FaultPlan::parse(&rendered).unwrap();
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "p-drop=2.0",
            "p-drop=x",
            "seed=-1",
            "explode@n1p2",
            "panic@1p2",
            "panic@n1",
            "frobnicate",
            "p-frob=0.1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, Error::InvalidConfig(_)),
                "`{bad}` should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn parse_serve_tokens_roundtrip() {
        let spec =
            "seed=7,conn-reset@c0,slow-frame@c3,shard-panic@s1q4,shard-stall@s0q2,stale-swap@r1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.serve.len(), 5);
        assert_eq!(plan.serve[0].op, ServeFaultOp::ConnReset);
        assert_eq!(plan.serve[0].at, 0);
        assert_eq!(
            (plan.serve[2].op, plan.serve[2].at, plan.serve[2].job),
            (ServeFaultOp::ShardPanic, 1, 4)
        );
        assert_eq!(
            (plan.serve[4].op, plan.serve[4].at),
            (ServeFaultOp::StaleSwap, 1)
        );
        assert!(!plan.is_empty());
        let rendered = plan.render();
        let reparsed = FaultPlan::parse(&rendered).unwrap();
        assert_eq!(reparsed.render(), rendered);
        assert_eq!(rendered, spec);
    }

    #[test]
    fn parse_rejects_malformed_serve_tokens() {
        for bad in [
            "conn-reset@n1p2",
            "conn-reset@c",
            "shard-panic@s1",
            "shard-panic@s1q0",
            "shard-stall@q1s2",
            "stale-swap@r0",
            "stale-swap@c1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, Error::InvalidConfig(_)),
                "`{bad}` should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn serve_faults_fire_once_at_their_point() {
        let plan = FaultPlan::with_seed(0)
            .schedule_serve(ServeFaultOp::ConnReset, 1, 0)
            .schedule_serve(ServeFaultOp::ShardPanic, 0, 3)
            .schedule_serve(ServeFaultOp::StaleSwap, 2, 0);
        // Wrong addresses never fire.
        assert!(!plan.take_serve_conn(ServeFaultOp::ConnReset, 0));
        assert!(!plan.take_serve_shard(ServeFaultOp::ShardPanic, 0, 2));
        assert!(!plan.take_serve_shard(ServeFaultOp::ShardStall, 0, 3));
        assert!(!plan.take_serve_reload(1));
        // Right addresses fire exactly once, even through a clone.
        let clone = plan.clone();
        assert!(clone.take_serve_conn(ServeFaultOp::ConnReset, 1));
        assert!(!plan.take_serve_conn(ServeFaultOp::ConnReset, 1));
        assert!(plan.take_serve_shard(ServeFaultOp::ShardPanic, 0, 3));
        assert!(!clone.take_serve_shard(ServeFaultOp::ShardPanic, 0, 3));
        assert!(plan.take_serve_reload(2));
        assert!(!plan.take_serve_reload(2));
        assert!(plan.serve.iter().all(|f| f.fired()));
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("seed=7").unwrap();
        assert!(plan.is_empty());
        assert!(!plan.clone().schedule(0, 1, FaultOp::Panic).is_empty());
    }

    #[test]
    fn per_node_streams_are_deterministic_and_distinct() {
        let plan = FaultPlan {
            p_drop: 0.5,
            ..FaultPlan::with_seed(99)
        };
        let a1: Vec<bool> = {
            let s = plan.node_state(0);
            (0..64).map(|_| s.on_send().drop).collect()
        };
        let a2: Vec<bool> = {
            let s = plan.node_state(0);
            (0..64).map(|_| s.on_send().drop).collect()
        };
        let b: Vec<bool> = {
            let s = plan.node_state(1);
            (0..64).map(|_| s.on_send().drop).collect()
        };
        assert_eq!(a1, a2, "same (seed, node) must replay identically");
        assert_ne!(a1, b, "different nodes must draw different streams");
    }

    #[test]
    fn scheduled_fault_fires_once_across_clones() {
        let plan = FaultPlan::with_seed(0).schedule(1, 2, FaultOp::Panic);
        let attempt1 = plan.clone().node_state(1);
        attempt1.set_pass(2);
        assert_eq!(attempt1.on_pass_start(), Some(FaultOp::Panic));
        // A recovery attempt clones the plan again: the fault stays consumed.
        let attempt2 = plan.clone().node_state(1);
        attempt2.set_pass(2);
        assert_eq!(attempt2.on_pass_start(), None);
        assert!(plan.scheduled[0].fired());
    }

    #[test]
    fn scheduled_fault_only_fires_at_its_point() {
        let plan = FaultPlan::with_seed(0).schedule(1, 2, FaultOp::ScanError);
        let wrong_node = plan.node_state(0);
        wrong_node.set_pass(2);
        assert!(!wrong_node.on_scan());
        let wrong_pass = plan.node_state(1);
        wrong_pass.set_pass(1);
        assert!(!wrong_pass.on_scan());
        let right = plan.node_state(1);
        right.set_pass(2);
        assert!(right.on_scan());
        assert!(!right.on_scan(), "fires once");
    }

    #[test]
    fn retry_policy_retries_retryable_and_gives_up() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        };
        // Succeeds on the final attempt.
        let mut calls = 0;
        let out: Result<u32> = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(Error::io("transient", std::io::Error::other("x")))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3);
        // Exhausts the budget.
        let mut calls = 0;
        let out: Result<u32> = policy.run(|| {
            calls += 1;
            Err(Error::io("always", std::io::Error::other("x")))
        });
        assert!(matches!(out, Err(Error::Io { .. })));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_passes_fatal_errors_through() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<()> = policy.run(|| {
            calls += 1;
            Err(Error::Corrupt("bad bytes".into()))
        });
        assert!(matches!(out, Err(Error::Corrupt(_))));
        assert_eq!(calls, 1, "fatal errors are not retried");
    }
}
