//! The SP-2-shaped analytic cost model.
//!
//! Real wall-clock of the threaded simulation measures *this machine*
//! (shared caches, one memory bus), not a 1998 shared-nothing cluster. To
//! report execution times with the paper's shape, node counters are priced
//! with constants resembling the SP-2 testbed: a slow scalar CPU, a
//! high-latency/moderate-bandwidth switch (HPS), and a slow local SCSI
//! disk. Only *ratios* between the constants matter for the curves; the
//! absolute values put the output in recognizable seconds.

use crate::stats::NodeStatsSnapshot;

/// Prices for one node's counted activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per abstract CPU work unit (subset enumeration step, tree
    /// walk step, ancestor push). POWER2-era: tens of nanoseconds of
    /// useful work per op.
    pub seconds_per_cpu_tick: f64,
    /// Seconds per successful candidate probe (a sup_cou increment): a
    /// random-access read-modify-write in a table far larger than cache —
    /// hundreds of nanoseconds on 1998 DRAM. Priced separately because
    /// the paper's own workload metric (Figure 15) is exactly this count,
    /// and its per-node concentration is what the skew-handling
    /// algorithms exist to flatten.
    pub seconds_per_probe: f64,
    /// Fixed per-message overhead in seconds (MPL software latency on the
    /// HPS was ~40 µs).
    pub seconds_per_message: f64,
    /// Seconds per byte moved through a node's link (HPS sustained
    /// ~35 MB/s per node).
    pub seconds_per_net_byte: f64,
    /// Seconds per byte read from local disk (~8 MB/s sequential in 1998).
    pub seconds_per_io_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seconds_per_cpu_tick: 60e-9,
            seconds_per_probe: 300e-9,
            seconds_per_message: 40e-6,
            seconds_per_net_byte: 1.0 / (35.0 * 1024.0 * 1024.0),
            seconds_per_io_byte: 1.0 / (8.0 * 1024.0 * 1024.0),
        }
    }
}

impl CostModel {
    /// A model that prices only communication — useful in tests isolating
    /// the messaging ledger.
    pub fn communication_only() -> CostModel {
        CostModel {
            seconds_per_cpu_tick: 0.0,
            seconds_per_probe: 0.0,
            seconds_per_io_byte: 0.0,
            ..CostModel::default()
        }
    }

    /// Modeled busy time of one node.
    ///
    /// CPU and disk overlap poorly on a single-threaded 1998 node, and a
    /// message is charged to both endpoints (send overhead + receive
    /// overhead), matching the MPL accounting the paper's numbers reflect.
    pub fn node_seconds(&self, s: &NodeStatsSnapshot) -> f64 {
        let cpu = s.cpu_ticks as f64 * self.seconds_per_cpu_tick
            + s.hash_probes as f64 * self.seconds_per_probe;
        let net = (s.messages_sent + s.messages_received) as f64 * self.seconds_per_message
            + (s.bytes_sent + s.bytes_received) as f64 * self.seconds_per_net_byte;
        let io = s.io_bytes as f64 * self.seconds_per_io_byte;
        cpu + net + io
    }

    /// Modeled execution time of a phase: the slowest node is the critical
    /// path (all algorithms in the paper end each pass with a barrier at
    /// the coordinator).
    pub fn execution_seconds(&self, nodes: &[NodeStatsSnapshot]) -> f64 {
        nodes
            .iter()
            .map(|s| self.node_seconds(s))
            .fold(0.0, f64::max)
    }

    /// Sum of all nodes' busy time (total work; used for efficiency
    /// metrics).
    pub fn total_work_seconds(&self, nodes: &[NodeStatsSnapshot]) -> f64 {
        nodes.iter().map(|s| self.node_seconds(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cpu: u64, msgs: u64, bytes: u64, io: u64) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            cpu_ticks: cpu,
            messages_sent: msgs,
            bytes_sent: bytes,
            io_bytes: io,
            ..Default::default()
        }
    }

    #[test]
    fn execution_time_is_max_over_nodes() {
        let m = CostModel::default();
        let a = snap(1_000_000, 0, 0, 0);
        let b = snap(4_000_000, 0, 0, 0);
        let exec = m.execution_seconds(&[a, b]);
        assert!((exec - m.node_seconds(&b)).abs() < 1e-12);
        assert!(exec > m.node_seconds(&a));
    }

    #[test]
    fn communication_dominates_when_bytes_are_huge() {
        let m = CostModel::default();
        let chatty = snap(0, 1_000, 100 * 1024 * 1024, 0);
        let quiet = snap(1_000_000, 0, 0, 0);
        assert!(m.node_seconds(&chatty) > m.node_seconds(&quiet));
    }

    #[test]
    fn io_priced_slower_than_net() {
        let m = CostModel::default();
        let io = snap(0, 0, 0, 1024 * 1024);
        let net = NodeStatsSnapshot {
            bytes_sent: 1024 * 1024,
            ..Default::default()
        };
        assert!(m.node_seconds(&io) > m.node_seconds(&net));
    }

    #[test]
    fn total_work_is_sum() {
        let m = CostModel::default();
        let a = snap(100, 0, 0, 0);
        let b = snap(200, 0, 0, 0);
        let total = m.total_work_seconds(&[a, b]);
        assert!((total - (m.node_seconds(&a) + m.node_seconds(&b))).abs() < 1e-15);
    }

    #[test]
    fn probes_priced_heavier_than_ticks() {
        let m = CostModel::default();
        let probing = NodeStatsSnapshot {
            hash_probes: 1_000,
            ..Default::default()
        };
        let ticking = snap(1_000, 0, 0, 0);
        assert!(m.node_seconds(&probing) > m.node_seconds(&ticking));
    }

    #[test]
    fn communication_only_ignores_cpu_and_io() {
        let m = CostModel::communication_only();
        assert_eq!(m.node_seconds(&snap(1_000_000, 0, 0, 1_000_000)), 0.0);
        assert!(m.node_seconds(&snap(0, 1, 100, 0)) > 0.0);
    }
}
