//! Collective operations: barrier, all-reduce, broadcast.
//!
//! Every algorithm in the paper ends a pass the same way: support counts
//! (or locally decided `L_k^n` fragments) flow to the coordinator, the
//! coordinator assembles `L_k` and broadcasts it. These primitives provide
//! the synchronization; the *communication charging* happens in
//! [`crate::NodeCtx`], which knows the per-node ledgers.
//!
//! All operations are generation-counted so they can be reused pass after
//! pass, and they are poisoned when any node fails so the surviving nodes
//! error out instead of deadlocking. Poisoning records the *first*
//! failing node's id, which every subsequent error carries
//! ([`gar_types::Error::Poisoned`]) so a cascade of secondary failures
//! still points at its root cause.
//!
//! Concurrency discipline (model-checked by `cargo xtask loom`, enforced
//! textually by `cargo xtask lint`):
//!
//! * every `Condvar` wait sits in a loop re-checking the generation
//!   counter, so spurious or stale wakeups (a notify from a *previous*
//!   generation's completion) re-park instead of returning early;
//! * a node leaves a collective only when the generation has advanced
//!   exactly once past the value it saw on entry, or the run is
//!   poisoned — asserted in debug builds.

use crate::sync::{Arc, AtomicUsize, Condvar, Instant, Mutex, MutexGuard, Ordering};
use bytes::Bytes;
use gar_types::{Error, Result};
use std::time::Duration;

/// Sentinel for "no node has poisoned the run".
const NOT_POISONED: usize = usize::MAX;

#[derive(Default)]
struct ReduceState {
    gen: u64,
    pending: usize,
    acc: Vec<u64>,
    result: Arc<Vec<u64>>,
}

#[derive(Default)]
struct BcastState {
    gen: u64,
    pending: usize,
    slot: Option<Bytes>,
    result: Bytes,
}

#[derive(Default)]
struct BarrierState {
    gen: u64,
    pending: usize,
}

/// Shared synchronization core for one cluster run.
pub struct Collectives {
    num_nodes: usize,
    /// Deadline for any single collective wait; `None` waits forever.
    deadline: Option<Duration>,
    /// Id of the first node that poisoned the run, or [`NOT_POISONED`].
    poisoned_by: AtomicUsize,
    reduce: Mutex<ReduceState>,
    reduce_cv: Condvar,
    bcast: Mutex<BcastState>,
    bcast_cv: Condvar,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
}

impl Collectives {
    /// Creates the collectives for `num_nodes` participants with no
    /// deadline (waits forever, like a real interconnect without a
    /// failure detector).
    pub fn new(num_nodes: usize) -> Collectives {
        Collectives::with_deadline(num_nodes, None)
    }

    /// Creates the collectives with a per-wait deadline. A node whose
    /// wait outlives the deadline poisons the run on its own behalf and
    /// returns [`Error::Timeout`], so a silently hung peer is detected
    /// instead of parking the cluster forever.
    pub fn with_deadline(num_nodes: usize, deadline: Option<Duration>) -> Collectives {
        assert!(num_nodes >= 1);
        Collectives {
            num_nodes,
            deadline,
            poisoned_by: AtomicUsize::new(NOT_POISONED),
            reduce: Mutex::new(ReduceState::default()),
            reduce_cv: Condvar::new(),
            bcast: Mutex::new(BcastState::default()),
            bcast_cv: Condvar::new(),
            barrier: Mutex::new(BarrierState::default()),
            barrier_cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The configured per-wait deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Deadline-aware wait shared by every collective: parks while
    /// `waiting` holds and nobody has poisoned the run. On deadline
    /// expiry the predicate and poison state are re-checked *under the
    /// lock* (a wakeup that raced the timer must win — never lost, never
    /// double-reported); only a still-stalled wait poisons the run and
    /// returns [`Error::Timeout`]. If the poison CAS loses to a
    /// concurrent poisoner, that node's [`Error::Poisoned`] is returned
    /// instead so a run always reports exactly one root cause.
    fn wait_collective<'a, T>(
        &self,
        node: usize,
        op: &'static str,
        cv: &Condvar,
        mut s: MutexGuard<'a, T>,
        mut waiting: impl FnMut(&T) -> bool,
    ) -> Result<MutexGuard<'a, T>> {
        let Some(limit) = self.deadline else {
            while waiting(&s) && !self.is_poisoned() {
                // lint:allow(no-deadline): the no-deadline configuration
                // of the deadline-aware wrapper itself.
                s = cv.wait(s);
            }
            return Ok(s);
        };
        // lint:allow(no-instant): this is `crate::sync::Instant`, which
        // `--cfg gar_loom` swaps for the model checker's virtual clock;
        // routing it through gar-obs would break schedule enumeration.
        let start = Instant::now();
        loop {
            if !waiting(&s) || self.is_poisoned() {
                return Ok(s);
            }
            let remaining = limit.saturating_sub(start.elapsed());
            let (guard, timed_out) = cv.wait_timeout(s, remaining);
            s = guard;
            if timed_out && waiting(&s) && !self.is_poisoned() {
                // Drop the state lock before poisoning: poison() takes
                // every collective's lock to close the lost-wakeup
                // window, so holding ours here would self-deadlock.
                drop(s);
                self.poison(node);
                return match self.poisoned_by.load(Ordering::SeqCst) {
                    n if n == node => Err(Error::Timeout {
                        node,
                        op: op.into(),
                    }),
                    n => Err(Error::Poisoned { node: n }),
                };
            }
        }
    }

    /// Marks the run failed on behalf of `node` and wakes every waiter.
    /// Called when a node panics or errors so its peers fail fast instead
    /// of deadlocking. The first caller wins: later poisons keep the
    /// original culprit.
    pub fn poison(&self, node: usize) {
        let _ = self.poisoned_by.compare_exchange(
            NOT_POISONED,
            node,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        // Take each state lock before notifying: a waiter that has
        // checked `is_poisoned` but not yet parked would otherwise miss
        // this wakeup forever (the classic lost-wakeup race; the loom
        // suite's poison_vs_wait scenarios check exactly this).
        drop(self.reduce.lock());
        self.reduce_cv.notify_all();
        drop(self.bcast.lock());
        self.bcast_cv.notify_all();
        drop(self.barrier.lock());
        self.barrier_cv.notify_all();
    }

    /// True once any participant has failed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned_by.load(Ordering::SeqCst) != NOT_POISONED
    }

    /// The node that poisoned the run first, if any did.
    pub fn poisoned_by(&self) -> Option<usize> {
        match self.poisoned_by.load(Ordering::SeqCst) {
            NOT_POISONED => None,
            node => Some(node),
        }
    }

    pub(crate) fn check_poison(&self) -> Result<()> {
        match self.poisoned_by.load(Ordering::SeqCst) {
            NOT_POISONED => Ok(()),
            node => Err(Error::Poisoned { node }),
        }
    }

    /// Element-wise sum of every node's `contribution`. All participants
    /// must pass slices of the same length; all receive the same result.
    /// `node` identifies the caller (for poison attribution).
    pub fn all_reduce_u64(&self, node: usize, contribution: &[u64]) -> Result<Arc<Vec<u64>>> {
        self.check_poison()?;
        let mut s = self.reduce.lock();
        let my_gen = s.gen;
        debug_assert!(
            s.pending < self.num_nodes,
            "all_reduce: {} arrivals before generation {} closed",
            s.pending + 1,
            my_gen
        );
        if s.pending == 0 {
            s.acc.clear();
            s.acc.resize(contribution.len(), 0);
        } else if s.acc.len() != contribution.len() {
            drop(s);
            self.poison(node);
            return Err(Error::Protocol(format!(
                "all_reduce length mismatch at node {node}: expected {} elements",
                contribution.len()
            )));
        }
        for (a, &c) in s.acc.iter_mut().zip(contribution) {
            *a += c;
        }
        s.pending += 1;
        if s.pending == self.num_nodes {
            s.result = Arc::new(std::mem::take(&mut s.acc));
            s.pending = 0;
            s.gen += 1;
            debug_assert_eq!(s.gen, my_gen + 1, "all_reduce generation must be monotonic");
            self.reduce_cv.notify_all();
            Ok(s.result.clone())
        } else {
            s =
                self.wait_collective(node, "all_reduce", &self.reduce_cv, s, |s| s.gen == my_gen)?;
            self.check_poison()?;
            debug_assert_eq!(
                s.gen,
                my_gen + 1,
                "all_reduce waiter woke {} generations late",
                s.gen.wrapping_sub(my_gen)
            );
            Ok(s.result.clone())
        }
    }

    /// One-to-all broadcast: exactly one participant passes `Some(data)`,
    /// all receive that data. `node` identifies the caller.
    pub fn broadcast(&self, node: usize, data: Option<Bytes>) -> Result<Bytes> {
        self.check_poison()?;
        let mut s = self.bcast.lock();
        let my_gen = s.gen;
        debug_assert!(
            s.pending < self.num_nodes,
            "broadcast: {} arrivals before generation {} closed",
            s.pending + 1,
            my_gen
        );
        if let Some(d) = data {
            if s.slot.is_some() {
                drop(s);
                self.poison(node);
                return Err(Error::Protocol(format!(
                    "node {node} tried to broadcast into an occupied round"
                )));
            }
            s.slot = Some(d);
        }
        s.pending += 1;
        if s.pending == self.num_nodes {
            let Some(d) = s.slot.take() else {
                drop(s);
                self.poison(node);
                return Err(Error::Protocol("broadcast round with no root".into()));
            };
            s.result = d;
            s.pending = 0;
            s.gen += 1;
            debug_assert_eq!(s.gen, my_gen + 1, "broadcast generation must be monotonic");
            self.bcast_cv.notify_all();
            Ok(s.result.clone())
        } else {
            s = self.wait_collective(node, "broadcast", &self.bcast_cv, s, |s| s.gen == my_gen)?;
            self.check_poison()?;
            debug_assert_eq!(
                s.gen,
                my_gen + 1,
                "broadcast waiter woke {} generations late",
                s.gen.wrapping_sub(my_gen)
            );
            Ok(s.result.clone())
        }
    }

    /// Rendezvous of all participants. `node` identifies the caller.
    pub fn barrier(&self, node: usize) -> Result<()> {
        self.check_poison()?;
        let mut s = self.barrier.lock();
        let my_gen = s.gen;
        debug_assert!(
            s.pending < self.num_nodes,
            "barrier: {} arrivals before generation {} closed",
            s.pending + 1,
            my_gen
        );
        s.pending += 1;
        if s.pending == self.num_nodes {
            s.pending = 0;
            s.gen += 1;
            debug_assert_eq!(s.gen, my_gen + 1, "barrier generation must be monotonic");
            self.barrier_cv.notify_all();
        } else {
            s = self.wait_collective(node, "barrier", &self.barrier_cv, s, |s| s.gen == my_gen)?;
            self.check_poison()?;
            debug_assert_eq!(
                s.gen,
                my_gen + 1,
                "barrier waiter woke {} generations late",
                s.gen.wrapping_sub(my_gen)
            );
        }
        Ok(())
    }
}

#[cfg(all(test, not(gar_loom)))]
mod tests {
    use super::*;

    fn run_nodes<T: Send>(n: usize, f: impl Fn(usize, &Collectives) -> T + Sync) -> Vec<T> {
        let c = Collectives::new(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let c = &c;
                    let f = &f;
                    s.spawn(move || f(id, c))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sums_elementwise() {
        let results = run_nodes(4, |id, c| {
            c.all_reduce_u64(id, &[id as u64, 1, 10 * id as u64])
                .unwrap()
        });
        for r in results {
            assert_eq!(&*r, &[6, 4, 60]);
        }
    }

    #[test]
    fn all_reduce_is_reusable_across_generations() {
        let results = run_nodes(3, |id, c| {
            let a = c.all_reduce_u64(id, &[1]).unwrap()[0];
            let b = c.all_reduce_u64(id, &[2]).unwrap()[0];
            (a, b)
        });
        for (a, b) in results {
            assert_eq!((a, b), (3, 6));
        }
    }

    #[test]
    fn all_reduce_length_mismatch_poisons() {
        let c = Collectives::new(2);
        let outcome = std::thread::scope(|s| {
            let h0 = s.spawn(|| c.all_reduce_u64(0, &[1, 2]));
            let h1 = s.spawn(|| c.all_reduce_u64(1, &[1]));
            (h0.join().unwrap(), h1.join().unwrap())
        });
        assert!(outcome.0.is_err() || outcome.1.is_err());
        assert!(c.is_poisoned());
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let results = run_nodes(4, |id, c| {
            let data = (id == 2).then(|| Bytes::from_static(b"Lk"));
            c.broadcast(id, data).unwrap()
        });
        for r in results {
            assert_eq!(&r[..], b"Lk");
        }
    }

    #[test]
    fn broadcast_with_two_roots_poisons() {
        let c = Collectives::new(2);
        let outcome = std::thread::scope(|s| {
            let h0 = s.spawn(|| c.broadcast(0, Some(Bytes::from_static(b"a"))));
            let h1 = s.spawn(|| c.broadcast(1, Some(Bytes::from_static(b"b"))));
            (h0.join().unwrap(), h1.join().unwrap())
        });
        assert!(outcome.0.is_err() || outcome.1.is_err());
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run_nodes(8, |id, c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier(id).unwrap();
            // After the barrier every node must observe all 8 arrivals.
            assert_eq!(before.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn poison_wakes_waiters_and_names_culprit() {
        let c = Collectives::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| c.barrier(0));
            std::thread::sleep(std::time::Duration::from_millis(20));
            c.poison(1);
            let err = waiter.join().unwrap().unwrap_err();
            assert!(
                matches!(err, Error::Poisoned { node: 1 }),
                "expected Poisoned{{node: 1}}, got {err}"
            );
        });
    }

    #[test]
    fn first_poisoner_wins() {
        let c = Collectives::new(3);
        c.poison(2);
        c.poison(0);
        let err = c.barrier(1).unwrap_err();
        assert!(matches!(err, Error::Poisoned { node: 2 }), "{err}");
    }

    #[test]
    fn deadline_expiry_reports_timeout_and_poisons() {
        let c = Collectives::with_deadline(2, Some(Duration::from_millis(30)));
        let start = std::time::Instant::now();
        // The peer never arrives: the wait must end with Timeout, not hang.
        let err = c.barrier(0).unwrap_err();
        assert!(
            matches!(err, Error::Timeout { node: 0, ref op } if op == "barrier"),
            "{err}"
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(c.is_poisoned());
        // A late peer sees the run poisoned by the timed-out node.
        let err = c.barrier(1).unwrap_err();
        assert!(matches!(err, Error::Poisoned { node: 0 }), "{err}");
    }

    #[test]
    fn deadline_does_not_fire_on_healthy_runs() {
        let c = Collectives::with_deadline(3, Some(Duration::from_secs(30)));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|id| {
                    let c = &c;
                    s.spawn(move || {
                        for round in 0..5u64 {
                            c.barrier(id)?;
                            let sum = c.all_reduce_u64(id, &[round])?[0];
                            assert_eq!(sum, 3 * round);
                        }
                        Ok::<(), Error>(())
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });
        assert!(!c.is_poisoned());
    }

    #[test]
    fn single_node_collectives_are_trivial() {
        let c = Collectives::new(1);
        assert_eq!(&*c.all_reduce_u64(0, &[5]).unwrap(), &[5]);
        assert_eq!(
            c.broadcast(0, Some(Bytes::from_static(b"x"))).unwrap(),
            Bytes::from_static(b"x")
        );
        c.barrier(0).unwrap();
    }
}
