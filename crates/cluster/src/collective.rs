//! Collective operations: barrier, all-reduce, broadcast.
//!
//! Every algorithm in the paper ends a pass the same way: support counts
//! (or locally decided `L_k^n` fragments) flow to the coordinator, the
//! coordinator assembles `L_k` and broadcasts it. These primitives provide
//! the synchronization; the *communication charging* happens in
//! [`crate::NodeCtx`], which knows the per-node ledgers.
//!
//! All operations are generation-counted so they can be reused pass after
//! pass, and they are poisoned when any node fails so the surviving nodes
//! error out instead of deadlocking.

use bytes::Bytes;
use gar_types::{Error, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct ReduceState {
    gen: u64,
    pending: usize,
    acc: Vec<u64>,
    result: Arc<Vec<u64>>,
}

#[derive(Default)]
struct BcastState {
    gen: u64,
    pending: usize,
    slot: Option<Bytes>,
    result: Bytes,
}

#[derive(Default)]
struct BarrierState {
    gen: u64,
    pending: usize,
}

/// Shared synchronization core for one cluster run.
pub struct Collectives {
    num_nodes: usize,
    poisoned: AtomicBool,
    reduce: Mutex<ReduceState>,
    reduce_cv: Condvar,
    bcast: Mutex<BcastState>,
    bcast_cv: Condvar,
    barrier: Mutex<BarrierState>,
    barrier_cv: Condvar,
}

impl Collectives {
    /// Creates the collectives for `num_nodes` participants.
    pub fn new(num_nodes: usize) -> Collectives {
        assert!(num_nodes >= 1);
        Collectives {
            num_nodes,
            poisoned: AtomicBool::new(false),
            reduce: Mutex::default(),
            reduce_cv: Condvar::new(),
            bcast: Mutex::default(),
            bcast_cv: Condvar::new(),
            barrier: Mutex::default(),
            barrier_cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Marks the run failed and wakes every waiter. Called when a node
    /// panics so its peers fail fast instead of deadlocking.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        self.reduce_cv.notify_all();
        self.bcast_cv.notify_all();
        self.barrier_cv.notify_all();
    }

    /// True once any participant has failed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn check_poison(&self) -> Result<()> {
        if self.is_poisoned() {
            Err(Error::Protocol(
                "collective aborted: a peer node failed".into(),
            ))
        } else {
            Ok(())
        }
    }

    /// Element-wise sum of every node's `contribution`. All participants
    /// must pass slices of the same length; all receive the same result.
    pub fn all_reduce_u64(&self, contribution: &[u64]) -> Result<Arc<Vec<u64>>> {
        self.check_poison()?;
        let mut s = self.reduce.lock();
        let my_gen = s.gen;
        if s.pending == 0 {
            s.acc.clear();
            s.acc.resize(contribution.len(), 0);
        } else if s.acc.len() != contribution.len() {
            self.poison();
            return Err(Error::Protocol(format!(
                "all_reduce length mismatch: {} vs {}",
                s.acc.len(),
                contribution.len()
            )));
        }
        for (a, &c) in s.acc.iter_mut().zip(contribution) {
            *a += c;
        }
        s.pending += 1;
        if s.pending == self.num_nodes {
            s.result = Arc::new(std::mem::take(&mut s.acc));
            s.pending = 0;
            s.gen += 1;
            self.reduce_cv.notify_all();
            Ok(s.result.clone())
        } else {
            while s.gen == my_gen && !self.is_poisoned() {
                self.reduce_cv.wait(&mut s);
            }
            self.check_poison()?;
            Ok(s.result.clone())
        }
    }

    /// One-to-all broadcast: exactly one participant passes `Some(data)`,
    /// all receive that data.
    pub fn broadcast(&self, data: Option<Bytes>) -> Result<Bytes> {
        self.check_poison()?;
        let mut s = self.bcast.lock();
        let my_gen = s.gen;
        if let Some(d) = data {
            if s.slot.is_some() {
                self.poison();
                return Err(Error::Protocol(
                    "two nodes tried to broadcast in one round".into(),
                ));
            }
            s.slot = Some(d);
        }
        s.pending += 1;
        if s.pending == self.num_nodes {
            let Some(d) = s.slot.take() else {
                self.poison();
                return Err(Error::Protocol("broadcast round with no root".into()));
            };
            s.result = d;
            s.pending = 0;
            s.gen += 1;
            self.bcast_cv.notify_all();
            Ok(s.result.clone())
        } else {
            while s.gen == my_gen && !self.is_poisoned() {
                self.bcast_cv.wait(&mut s);
            }
            self.check_poison()?;
            Ok(s.result.clone())
        }
    }

    /// Rendezvous of all participants.
    pub fn barrier(&self) -> Result<()> {
        self.check_poison()?;
        let mut s = self.barrier.lock();
        let my_gen = s.gen;
        s.pending += 1;
        if s.pending == self.num_nodes {
            s.pending = 0;
            s.gen += 1;
            self.barrier_cv.notify_all();
        } else {
            while s.gen == my_gen && !self.is_poisoned() {
                self.barrier_cv.wait(&mut s);
            }
            self.check_poison()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_nodes<T: Send>(n: usize, f: impl Fn(usize, &Collectives) -> T + Sync) -> Vec<T> {
        let c = Collectives::new(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let c = &c;
                    let f = &f;
                    s.spawn(move || f(id, c))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn all_reduce_sums_elementwise() {
        let results = run_nodes(4, |id, c| {
            c.all_reduce_u64(&[id as u64, 1, 10 * id as u64]).unwrap()
        });
        for r in results {
            assert_eq!(&*r, &[6, 4, 60]);
        }
    }

    #[test]
    fn all_reduce_is_reusable_across_generations() {
        let results = run_nodes(3, |_, c| {
            let a = c.all_reduce_u64(&[1]).unwrap()[0];
            let b = c.all_reduce_u64(&[2]).unwrap()[0];
            (a, b)
        });
        for (a, b) in results {
            assert_eq!((a, b), (3, 6));
        }
    }

    #[test]
    fn all_reduce_length_mismatch_poisons() {
        let c = Collectives::new(2);
        let outcome = std::thread::scope(|s| {
            let h0 = s.spawn(|| c.all_reduce_u64(&[1, 2]));
            let h1 = s.spawn(|| c.all_reduce_u64(&[1]));
            (h0.join().unwrap(), h1.join().unwrap())
        });
        assert!(outcome.0.is_err() || outcome.1.is_err());
        assert!(c.is_poisoned());
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let results = run_nodes(4, |id, c| {
            let data = (id == 2).then(|| Bytes::from_static(b"Lk"));
            c.broadcast(data).unwrap()
        });
        for r in results {
            assert_eq!(&r[..], b"Lk");
        }
    }

    #[test]
    fn broadcast_with_two_roots_poisons() {
        let c = Collectives::new(2);
        let outcome = std::thread::scope(|s| {
            let h0 = s.spawn(|| c.broadcast(Some(Bytes::from_static(b"a"))));
            let h1 = s.spawn(|| c.broadcast(Some(Bytes::from_static(b"b"))));
            (h0.join().unwrap(), h1.join().unwrap())
        });
        assert!(outcome.0.is_err() || outcome.1.is_err());
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run_nodes(8, |_, c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // After the barrier every node must observe all 8 arrivals.
            assert_eq!(before.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn poison_wakes_waiters() {
        let c = Collectives::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| c.barrier());
            std::thread::sleep(std::time::Duration::from_millis(20));
            c.poison();
            assert!(waiter.join().unwrap().is_err());
        });
    }

    #[test]
    fn single_node_collectives_are_trivial() {
        let c = Collectives::new(1);
        assert_eq!(&*c.all_reduce_u64(&[5]).unwrap(), &[5]);
        assert_eq!(
            c.broadcast(Some(Bytes::from_static(b"x"))).unwrap(),
            Bytes::from_static(b"x")
        );
        c.barrier().unwrap();
    }
}
