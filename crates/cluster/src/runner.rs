//! Spawning a cluster run.

use crate::collective::Collectives;
use crate::cost::CostModel;
use crate::node::{Envelope, NodeCtx};
use crate::stats::{NodeStats, NodeStatsSnapshot};
use crossbeam::channel::unbounded;
use gar_types::{Error, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of the simulated machine.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shared-nothing nodes (the paper uses 4-16).
    pub num_nodes: usize,
    /// Candidate-memory budget per node in bytes (the simulated 256 MB —
    /// scaled down alongside the datasets).
    pub memory_per_node: u64,
    /// Price list for the modeled execution time.
    pub cost: CostModel,
}

impl ClusterConfig {
    /// A cluster of `num_nodes` with a given per-node memory budget and
    /// the default SP-2 cost model.
    pub fn new(num_nodes: usize, memory_per_node: u64) -> ClusterConfig {
        ClusterConfig {
            num_nodes,
            memory_per_node,
            cost: CostModel::default(),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(Error::InvalidConfig("num_nodes must be >= 1".into()));
        }
        if self.memory_per_node == 0 {
            return Err(Error::InvalidConfig(
                "memory_per_node must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a cluster run: the per-node return values (index = node id),
/// the per-node counter snapshots, wall-clock, and the modeled time.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-node results, indexed by node id.
    pub results: Vec<T>,
    /// Per-node counters at the end of the run.
    pub stats: Vec<NodeStatsSnapshot>,
    /// Real elapsed time of the threaded simulation on this machine.
    pub wall: Duration,
    /// Cost-model execution time (critical path over nodes).
    pub modeled_seconds: f64,
}

impl<T> ClusterRun<T> {
    /// Average bytes received per node — Table 6's row metric.
    pub fn avg_bytes_received(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats
            .iter()
            .map(|s| s.bytes_received as f64)
            .sum::<f64>()
            / self.stats.len() as f64
    }

    /// Per-node hash-probe counts — Figure 15's series.
    pub fn probes_per_node(&self) -> Vec<u64> {
        self.stats.iter().map(|s| s.hash_probes).collect()
    }
}

/// The simulated shared-nothing machine.
pub struct Cluster;

impl Cluster {
    /// Runs `node_fn` once per node, each on its own OS thread, wired
    /// through counted channels and shared collectives. Returns when every
    /// node completes; a panicking or erroring node poisons the
    /// collectives so its peers fail fast rather than deadlock.
    pub fn run<T, F>(config: &ClusterConfig, node_fn: F) -> Result<ClusterRun<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Send + Sync,
    {
        config.validate()?;
        let n = config.num_nodes;
        let stats: Arc<Vec<NodeStats>> = Arc::new((0..n).map(|_| NodeStats::default()).collect());
        let collectives = Arc::new(Collectives::new(n));

        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }

        let started = Instant::now();
        let mut outcomes: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (node_id, inbox) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let stats = Arc::clone(&stats);
                let collectives = Arc::clone(&collectives);
                let node_fn = &node_fn;
                handles.push(scope.spawn(move || {
                    let mut ctx = NodeCtx::new(
                        node_id,
                        config.memory_per_node,
                        senders,
                        inbox,
                        stats,
                        Arc::clone(&collectives),
                    );
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        node_fn(&mut ctx)
                    }));
                    match out {
                        Ok(res) => {
                            if res.is_err() {
                                collectives.poison(node_id);
                            }
                            res
                        }
                        Err(panic) => {
                            collectives.poison(node_id);
                            let reason = panic
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "panic".into());
                            Err(Error::NodeFailure {
                                node: node_id,
                                reason,
                            })
                        }
                    }
                }));
            }
            for (node_id, h) in handles.into_iter().enumerate() {
                outcomes[node_id] = Some(h.join().unwrap_or_else(|_| {
                    Err(Error::NodeFailure {
                        node: node_id,
                        reason: "worker thread died".into(),
                    })
                }));
            }
        });
        // The original senders must drop so pending inboxes disconnect.
        drop(senders);
        let wall = started.elapsed();

        let mut results = Vec::with_capacity(n);
        for (node_id, out) in outcomes.into_iter().enumerate() {
            // Filled by the scope join loop above for every node; a hole
            // would mean the join loop itself was skipped, which the
            // error path reports rather than crashing the caller.
            let Some(outcome) = out else {
                return Err(Error::NodeFailure {
                    node: node_id,
                    reason: "node produced no outcome".into(),
                });
            };
            results.push(outcome?);
        }
        let snapshots: Vec<NodeStatsSnapshot> = stats.iter().map(NodeStats::snapshot).collect();
        let modeled_seconds = config.cost.execution_seconds(&snapshots);
        Ok(ClusterRun {
            results,
            stats: snapshots,
            wall,
            modeled_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn cfg(n: usize) -> ClusterConfig {
        ClusterConfig::new(n, 1 << 20)
    }

    #[test]
    fn nodes_get_distinct_ids_and_results_are_ordered() {
        let run = Cluster::run(&cfg(4), |ctx| Ok(ctx.node_id() * 10)).unwrap();
        assert_eq!(run.results, vec![0, 10, 20, 30]);
        assert_eq!(run.stats.len(), 4);
    }

    #[test]
    fn point_to_point_messaging_is_counted() {
        // Ring: node i sends 100 bytes to node (i+1) % n.
        let run = Cluster::run(&cfg(3), |ctx| {
            let to = (ctx.node_id() + 1) % ctx.num_nodes();
            ctx.send(to, 7, Bytes::from(vec![0u8; 100]))?;
            let env = ctx.recv()?;
            assert_eq!(env.tag, 7);
            assert_eq!(env.payload.len(), 100);
            Ok(())
        })
        .unwrap();
        for s in &run.stats {
            assert_eq!(s.messages_sent, 1);
            assert_eq!(s.bytes_sent, 100);
            assert_eq!(s.messages_received, 1);
            assert_eq!(s.bytes_received, 100);
        }
        assert!(run.avg_bytes_received() == 100.0);
    }

    #[test]
    fn self_sends_are_delivered_but_uncharged() {
        let run = Cluster::run(&cfg(2), |ctx| {
            ctx.send(ctx.node_id(), 1, Bytes::from_static(b"local"))?;
            let env = ctx.recv()?;
            assert_eq!(env.from, ctx.node_id());
            Ok(())
        })
        .unwrap();
        for s in &run.stats {
            assert_eq!(s.messages_sent, 0);
            assert_eq!(s.bytes_received, 0);
        }
    }

    #[test]
    fn all_reduce_matches_and_charges_both_directions() {
        let run = Cluster::run(&cfg(4), |ctx| {
            let v = ctx.all_reduce_u64(&[ctx.node_id() as u64 + 1])?;
            Ok(v[0])
        })
        .unwrap();
        assert_eq!(run.results, vec![10, 10, 10, 10]);
        // Binomial tree over 4 nodes rooted at 0:
        //   node 0 has children {1, 2}: 2 sends + 2 receives each way;
        //   node 2 has child {3} plus its parent: 2 and 2;
        //   leaves 1 and 3: 1 send up + 1 receive down.
        assert_eq!(run.stats[0].bytes_sent, 16);
        assert_eq!(run.stats[0].bytes_received, 16);
        assert_eq!(run.stats[1].bytes_sent, 8);
        assert_eq!(run.stats[1].bytes_received, 8);
        assert_eq!(run.stats[2].bytes_sent, 16);
        assert_eq!(run.stats[2].bytes_received, 16);
        assert_eq!(run.stats[3].bytes_sent, 8);
        assert_eq!(run.stats[3].bytes_received, 8);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let run = Cluster::run(&cfg(3), |ctx| {
            let data = ctx
                .is_coordinator()
                .then(|| Bytes::from_static(b"large-itemsets"));
            let got = ctx.broadcast(data)?;
            Ok(got.len())
        })
        .unwrap();
        assert_eq!(run.results, vec![14, 14, 14]);
        assert_eq!(run.stats[0].messages_sent, 2);
        assert_eq!(run.stats[1].bytes_received, 14);
    }

    #[test]
    fn exchange_phase_terminates_and_delivers() {
        // Every node sends one message to every other node.
        let run = Cluster::run(&cfg(4), |ctx| {
            let mut got = 0usize;
            let mut ex = ctx.exchange();
            for peer in 0..ctx.num_nodes() {
                if peer != ctx.node_id() {
                    ex.send(peer, 1, Bytes::from_static(b"data"))?;
                }
            }
            ex.poll(|_| {
                got += 1;
                Ok(())
            })?;
            ex.finish(|_| {
                got += 1;
                Ok(())
            })?;
            Ok(got)
        })
        .unwrap();
        assert_eq!(run.results, vec![3, 3, 3, 3]);
    }

    #[test]
    fn node_error_fails_the_run_without_deadlock() {
        let err = Cluster::run(&cfg(3), |ctx| {
            if ctx.node_id() == 1 {
                return Err(Error::Protocol("injected failure".into()));
            }
            // Peers head into a collective that node 1 will never join.
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        // Node 0's outcome is reported first: it was poisoned by node 1,
        // and the error names the culprit.
        assert!(
            err.to_string().contains("injected") || err.to_string().contains("poisoned by node 1"),
            "{err}"
        );
    }

    #[test]
    fn node_panic_is_contained() {
        let err = Cluster::run::<(), _>(&cfg(2), |ctx| {
            if ctx.node_id() == 0 {
                panic!("boom");
            }
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("boom") || err.to_string().contains("poisoned"),
            "{err}"
        );
    }

    #[test]
    fn modeled_time_reflects_counters() {
        let run = Cluster::run(&cfg(2), |ctx| {
            ctx.stats().add_cpu(1_000_000);
            Ok(())
        })
        .unwrap();
        assert!(run.modeled_seconds > 0.0);
        assert!(run.wall > Duration::ZERO);
    }

    #[test]
    fn config_validation() {
        assert!(ClusterConfig::new(0, 1).validate().is_err());
        assert!(ClusterConfig::new(1, 0).validate().is_err());
        assert!(ClusterConfig::new(4, 1 << 20).validate().is_ok());
    }
}
