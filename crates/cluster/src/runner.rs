//! Spawning a cluster run.

use crate::collective::Collectives;
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::node::{Envelope, NodeCtx};
use crate::stats::{NodeStats, NodeStatsSnapshot};
use crossbeam::channel::unbounded;
use gar_obs::{Obs, Stopwatch};
use gar_types::{Error, Result};
use std::sync::Arc;
use std::time::Duration;

/// Shape of the simulated machine.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shared-nothing nodes (the paper uses 4-16).
    pub num_nodes: usize,
    /// Candidate-memory budget per node in bytes (the simulated 256 MB —
    /// scaled down alongside the datasets).
    pub memory_per_node: u64,
    /// Price list for the modeled execution time.
    pub cost: CostModel,
    /// Deterministic fault injection for this run, if any.
    pub faults: Option<FaultPlan>,
    /// Deadline on every blocking collective wait and `recv`: a node
    /// stuck longer than this poisons the run with [`Error::Timeout`]
    /// instead of deadlocking on a hung peer. `None` waits forever.
    pub deadline: Option<Duration>,
    /// Observability sink for the run. Disabled by default; when enabled
    /// every node records per-link traffic, collective ops, fault
    /// injections, and phase spans into it.
    pub obs: Obs,
}

impl ClusterConfig {
    /// A cluster of `num_nodes` with a given per-node memory budget and
    /// the default SP-2 cost model (no faults, no deadline).
    pub fn new(num_nodes: usize, memory_per_node: u64) -> ClusterConfig {
        ClusterConfig {
            num_nodes,
            memory_per_node,
            cost: CostModel::default(),
            faults: None,
            deadline: None,
            obs: Obs::disabled(),
        }
    }

    /// Attaches a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> ClusterConfig {
        self.faults = Some(plan);
        self
    }

    /// Attaches an observability sink.
    pub fn with_obs(mut self, obs: Obs) -> ClusterConfig {
        self.obs = obs;
        self
    }

    /// Attaches a deadline for blocking waits.
    pub fn with_deadline(mut self, deadline: Duration) -> ClusterConfig {
        self.deadline = Some(deadline);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(Error::InvalidConfig("num_nodes must be >= 1".into()));
        }
        if self.memory_per_node == 0 {
            return Err(Error::InvalidConfig(
                "memory_per_node must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a cluster run: the per-node return values (index = node id),
/// the per-node counter snapshots, wall-clock, and the modeled time.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-node results, indexed by node id.
    pub results: Vec<T>,
    /// Per-node counters at the end of the run.
    pub stats: Vec<NodeStatsSnapshot>,
    /// Real elapsed time of the threaded simulation on this machine.
    pub wall: Duration,
    /// Cost-model execution time (critical path over nodes).
    pub modeled_seconds: f64,
}

impl<T> ClusterRun<T> {
    /// Average bytes received per node — Table 6's row metric.
    pub fn avg_bytes_received(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats
            .iter()
            .map(|s| s.bytes_received as f64)
            .sum::<f64>()
            / self.stats.len() as f64
    }

    /// Per-node hash-probe counts — Figure 15's series.
    pub fn probes_per_node(&self) -> Vec<u64> {
        self.stats.iter().map(|s| s.hash_probes).collect()
    }
}

/// Postmortem of a failed cluster run: **every** node's outcome (not
/// just the first error), the per-node counter snapshots at the moment
/// of death, and the poison attribution — the raw material for degraded
/// -mode recovery and for the runner's root-cause error.
#[derive(Debug)]
pub struct ClusterFailure<T> {
    /// Per-node outcomes, indexed by node id. Nodes that completed
    /// before the failure carry `Ok`; nodes killed by a peer's failure
    /// carry [`Error::Poisoned`]; the culprit carries its own error.
    pub outcomes: Vec<Result<T>>,
    /// Per-node counters at the end of the run (including
    /// `faults_injected`).
    pub stats: Vec<NodeStatsSnapshot>,
    /// The node that poisoned the collectives first, if any did.
    pub poisoned_by: Option<usize>,
    /// Real elapsed time until the run unwound.
    pub wall: Duration,
}

impl<T> ClusterFailure<T> {
    /// The node whose *own* failure started the cascade: the first
    /// poisoner if its outcome is a non-propagated error, else the
    /// first node reporting a non-[`Error::Poisoned`] error.
    pub fn root_cause_node(&self) -> Option<usize> {
        let own_error = |node: usize| {
            matches!(
                self.outcomes.get(node),
                Some(Err(e)) if !matches!(e, Error::Poisoned { .. })
            )
        };
        self.poisoned_by
            .filter(|&p| own_error(p))
            .or_else(|| (0..self.outcomes.len()).find(|&node| own_error(node)))
    }

    /// Consumes the report, returning the root-cause error (falling back
    /// to the first error of any kind).
    pub fn into_root_cause(mut self) -> Error {
        let node = self
            .root_cause_node()
            .or_else(|| self.outcomes.iter().position(|o| o.is_err()));
        let slot = node.and_then(|i| self.outcomes.get_mut(i));
        match slot.map(|s| std::mem::replace(s, Err(Error::Protocol("outcome taken".into())))) {
            Some(Err(e)) => e,
            // root_cause_node only returns error slots, so this arm is
            // an internal inconsistency — surfaced as an error, not a
            // panic, since this runs on the postmortem path.
            Some(Ok(_)) => Error::Protocol("root cause node had an ok outcome".into()),
            None => Error::Protocol("cluster run failed with no error outcome".into()),
        }
    }
}

/// Outcome of [`Cluster::run_report`]: success with results, or a full
/// postmortem.
#[derive(Debug)]
pub enum RunOutcome<T> {
    /// Every node returned `Ok`.
    Completed(ClusterRun<T>),
    /// At least one node failed; here is everything we know.
    Failed(ClusterFailure<T>),
}

/// The simulated shared-nothing machine.
pub struct Cluster;

impl Cluster {
    /// Runs `node_fn` once per node, each on its own OS thread, wired
    /// through counted channels and shared collectives. Returns when every
    /// node completes; a panicking or erroring node poisons the
    /// collectives so its peers fail fast rather than deadlock.
    ///
    /// On failure the error is the **root cause**: the failing node's own
    /// error, not the [`Error::Poisoned`] its peers observed. Callers that
    /// need the full postmortem use [`Cluster::run_report`].
    pub fn run<T, F>(config: &ClusterConfig, node_fn: F) -> Result<ClusterRun<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Send + Sync,
    {
        match Cluster::run_report(config, node_fn)? {
            RunOutcome::Completed(run) => Ok(run),
            RunOutcome::Failed(failure) => Err(failure.into_root_cause()),
        }
    }

    /// Like [`Cluster::run`], but a failed run returns the structured
    /// [`ClusterFailure`] (every node's outcome and stats) instead of
    /// collapsing to a single error. The outer `Result` only reports
    /// configuration errors.
    pub fn run_report<T, F>(config: &ClusterConfig, node_fn: F) -> Result<RunOutcome<T>>
    where
        T: Send,
        F: Fn(&mut NodeCtx) -> Result<T> + Send + Sync,
    {
        config.validate()?;
        let n = config.num_nodes;
        let stats: Arc<Vec<NodeStats>> = Arc::new((0..n).map(|_| NodeStats::default()).collect());
        let collectives = Arc::new(Collectives::with_deadline(n, config.deadline));

        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }

        let started = Stopwatch::start();
        let mut outcomes: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (node_id, inbox) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let stats = Arc::clone(&stats);
                let collectives = Arc::clone(&collectives);
                let node_fn = &node_fn;
                handles.push(scope.spawn(move || {
                    let mut ctx = NodeCtx::new(
                        node_id,
                        config.memory_per_node,
                        senders,
                        inbox,
                        stats,
                        Arc::clone(&collectives),
                        config.faults.as_ref().map(|p| p.node_state(node_id)),
                        config.obs.clone(),
                    );
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        node_fn(&mut ctx)
                    }));
                    match out {
                        Ok(res) => {
                            if res.is_err() {
                                collectives.poison(node_id);
                            }
                            res
                        }
                        Err(panic) => {
                            collectives.poison(node_id);
                            let reason = panic
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "panic".into());
                            Err(Error::NodeFailure {
                                node: node_id,
                                reason,
                            })
                        }
                    }
                }));
            }
            for (node_id, (slot, h)) in outcomes.iter_mut().zip(handles).enumerate() {
                *slot = Some(h.join().unwrap_or_else(|_| {
                    Err(Error::NodeFailure {
                        node: node_id,
                        reason: "worker thread died".into(),
                    })
                }));
            }
        });
        // The original senders must drop so pending inboxes disconnect.
        drop(senders);
        let wall = started.elapsed();

        let outcomes: Vec<Result<T>> = outcomes
            .into_iter()
            .enumerate()
            .map(|(node_id, out)| {
                // Filled by the scope join loop above for every node; a
                // hole would mean the join loop itself was skipped, which
                // the postmortem reports rather than crashing the caller.
                out.unwrap_or_else(|| {
                    Err(Error::NodeFailure {
                        node: node_id,
                        reason: "node produced no outcome".into(),
                    })
                })
            })
            .collect();
        let snapshots: Vec<NodeStatsSnapshot> = stats.iter().map(NodeStats::snapshot).collect();

        if outcomes.iter().any(Result::is_err) {
            return Ok(RunOutcome::Failed(ClusterFailure {
                outcomes,
                stats: snapshots,
                poisoned_by: collectives.poisoned_by(),
                wall,
            }));
        }
        let results = outcomes.into_iter().map(Result::unwrap).collect();
        let modeled_seconds = config.cost.execution_seconds(&snapshots);
        Ok(RunOutcome::Completed(ClusterRun {
            results,
            stats: snapshots,
            wall,
            modeled_seconds,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultOp;
    use bytes::Bytes;
    use std::time::Instant;

    fn cfg(n: usize) -> ClusterConfig {
        ClusterConfig::new(n, 1 << 20)
    }

    #[test]
    fn nodes_get_distinct_ids_and_results_are_ordered() {
        let run = Cluster::run(&cfg(4), |ctx| Ok(ctx.node_id() * 10)).unwrap();
        assert_eq!(run.results, vec![0, 10, 20, 30]);
        assert_eq!(run.stats.len(), 4);
    }

    #[test]
    fn point_to_point_messaging_is_counted() {
        // Ring: node i sends 100 bytes to node (i+1) % n.
        let run = Cluster::run(&cfg(3), |ctx| {
            let to = (ctx.node_id() + 1) % ctx.num_nodes();
            ctx.send(to, 7, Bytes::from(vec![0u8; 100]))?;
            let env = ctx.recv()?;
            assert_eq!(env.tag, 7);
            assert_eq!(env.payload.len(), 100);
            Ok(())
        })
        .unwrap();
        for s in &run.stats {
            assert_eq!(s.messages_sent, 1);
            assert_eq!(s.bytes_sent, 100);
            assert_eq!(s.messages_received, 1);
            assert_eq!(s.bytes_received, 100);
        }
        assert!(run.avg_bytes_received() == 100.0);
    }

    #[test]
    fn self_sends_are_delivered_but_uncharged() {
        let run = Cluster::run(&cfg(2), |ctx| {
            ctx.send(ctx.node_id(), 1, Bytes::from_static(b"local"))?;
            let env = ctx.recv()?;
            assert_eq!(env.from, ctx.node_id());
            Ok(())
        })
        .unwrap();
        for s in &run.stats {
            assert_eq!(s.messages_sent, 0);
            assert_eq!(s.bytes_received, 0);
        }
    }

    #[test]
    fn all_reduce_matches_and_charges_both_directions() {
        let run = Cluster::run(&cfg(4), |ctx| {
            let v = ctx.all_reduce_u64(&[ctx.node_id() as u64 + 1])?;
            Ok(v[0])
        })
        .unwrap();
        assert_eq!(run.results, vec![10, 10, 10, 10]);
        // Binomial tree over 4 nodes rooted at 0:
        //   node 0 has children {1, 2}: 2 sends + 2 receives each way;
        //   node 2 has child {3} plus its parent: 2 and 2;
        //   leaves 1 and 3: 1 send up + 1 receive down.
        assert_eq!(run.stats[0].bytes_sent, 16);
        assert_eq!(run.stats[0].bytes_received, 16);
        assert_eq!(run.stats[1].bytes_sent, 8);
        assert_eq!(run.stats[1].bytes_received, 8);
        assert_eq!(run.stats[2].bytes_sent, 16);
        assert_eq!(run.stats[2].bytes_received, 16);
        assert_eq!(run.stats[3].bytes_sent, 8);
        assert_eq!(run.stats[3].bytes_received, 8);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let run = Cluster::run(&cfg(3), |ctx| {
            let data = ctx
                .is_coordinator()
                .then(|| Bytes::from_static(b"large-itemsets"));
            let got = ctx.broadcast(data)?;
            Ok(got.len())
        })
        .unwrap();
        assert_eq!(run.results, vec![14, 14, 14]);
        assert_eq!(run.stats[0].messages_sent, 2);
        assert_eq!(run.stats[1].bytes_received, 14);
    }

    #[test]
    fn exchange_phase_terminates_and_delivers() {
        // Every node sends one message to every other node.
        let run = Cluster::run(&cfg(4), |ctx| {
            let mut got = 0usize;
            let mut ex = ctx.exchange();
            for peer in 0..ctx.num_nodes() {
                if peer != ctx.node_id() {
                    ex.send(peer, 1, Bytes::from_static(b"data"))?;
                }
            }
            ex.poll(|_| {
                got += 1;
                Ok(())
            })?;
            ex.finish(|_| {
                got += 1;
                Ok(())
            })?;
            Ok(got)
        })
        .unwrap();
        assert_eq!(run.results, vec![3, 3, 3, 3]);
    }

    #[test]
    fn node_error_fails_the_run_without_deadlock() {
        let err = Cluster::run(&cfg(3), |ctx| {
            if ctx.node_id() == 1 {
                return Err(Error::Protocol("injected failure".into()));
            }
            // Peers head into a collective that node 1 will never join.
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        // The run reports the *root cause* — node 1's own error — not the
        // Error::Poisoned its peers observed.
        assert!(
            matches!(err, Error::Protocol(ref m) if m == "injected failure"),
            "expected node 1's own error, got: {err}"
        );
    }

    #[test]
    fn failure_postmortem_reports_every_node() {
        let outcome = Cluster::run_report(&cfg(3), |ctx| {
            if ctx.node_id() == 1 {
                return Err(Error::Protocol("injected failure".into()));
            }
            ctx.barrier()?;
            Ok(ctx.node_id())
        })
        .unwrap();
        let RunOutcome::Failed(failure) = outcome else {
            panic!("expected a failed run");
        };
        assert_eq!(failure.outcomes.len(), 3);
        assert_eq!(failure.stats.len(), 3);
        assert_eq!(failure.poisoned_by, Some(1));
        assert_eq!(failure.root_cause_node(), Some(1));
        assert!(matches!(failure.outcomes[1], Err(Error::Protocol(_))));
        for peer in [0, 2] {
            assert!(
                matches!(failure.outcomes[peer], Err(Error::Poisoned { node: 1 })),
                "peer {peer}: {:?}",
                failure.outcomes[peer]
            );
        }
        assert!(matches!(failure.into_root_cause(), Error::Protocol(_)));
    }

    #[test]
    fn duplicated_and_delayed_messages_are_tolerated() {
        let plan = FaultPlan {
            p_dup: 1.0,
            p_delay: 1.0,
            delay: Duration::from_millis(1),
            ..FaultPlan::with_seed(3)
        };
        let run = Cluster::run(&cfg(2).with_faults(plan), |ctx| {
            let to = (ctx.node_id() + 1) % 2;
            ctx.send(to, 7, Bytes::from_static(b"hello"))?;
            let env = ctx.recv()?;
            assert_eq!(env.payload.as_ref(), b"hello");
            // The duplicate copy is absorbed, not delivered twice.
            assert!(ctx.try_recv()?.is_none());
            Ok(())
        })
        .unwrap();
        for s in &run.stats {
            assert!(s.faults_injected >= 2, "dup + delay should be counted");
            assert_eq!(s.messages_received, 1, "ledger charges one delivery");
        }
    }

    #[test]
    fn dropped_message_is_detected_as_loss() {
        // Node 0's first send is dropped; its second arrives with a
        // sequence gap, which the receiver reports against the sender.
        let plan = FaultPlan::with_seed(0).schedule(0, 0, FaultOp::Drop);
        let err = Cluster::run(&cfg(2).with_faults(plan), |ctx| {
            if ctx.node_id() == 0 {
                ctx.send(1, 1, Bytes::from_static(b"first"))?;
                ctx.send(1, 1, Bytes::from_static(b"second"))?;
                Ok(())
            } else {
                ctx.recv()?;
                Ok(())
            }
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::NodeFailure { node: 0, ref reason } if reason.contains("loss")),
            "{err}"
        );
    }

    #[test]
    fn corrupted_message_is_detected_by_checksum() {
        let plan = FaultPlan::with_seed(0).schedule(0, 0, FaultOp::Corrupt);
        let err = Cluster::run(&cfg(2).with_faults(plan), |ctx| {
            if ctx.node_id() == 0 {
                ctx.send(1, 1, Bytes::from_static(b"payload"))?;
            } else {
                ctx.recv()?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn recv_deadline_detects_a_silent_peer() {
        let started = Instant::now();
        let err = Cluster::run(&cfg(2).with_deadline(Duration::from_millis(100)), |ctx| {
            if ctx.node_id() == 1 {
                // Node 0 never sends: without a deadline this would hang.
                ctx.recv()?;
            }
            Ok(())
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::Timeout { node: 1, ref op } if op == "recv"),
            "{err}"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn hung_node_is_detected_by_peer_deadline() {
        let plan = FaultPlan {
            hang: Duration::from_millis(400),
            ..FaultPlan::with_seed(0)
        }
        .schedule(0, 2, FaultOp::Hang);
        let config = cfg(2)
            .with_faults(plan)
            .with_deadline(Duration::from_millis(80));
        let started = Instant::now();
        let err = Cluster::run(&config, |ctx| {
            ctx.set_pass(2); // node 0 hangs here
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::Timeout { node: 1, ref op } if op == "barrier"),
            "{err}"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn scheduled_panic_yields_node_failure_root_cause() {
        let plan = FaultPlan::with_seed(0).schedule(1, 1, FaultOp::Panic);
        let err = Cluster::run(&cfg(3).with_faults(plan), |ctx| {
            ctx.set_pass(1);
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert!(
            matches!(err, Error::NodeFailure { node: 1, ref reason } if reason.contains("injected panic")),
            "{err}"
        );
    }

    #[test]
    fn node_panic_is_contained() {
        let err = Cluster::run::<(), _>(&cfg(2), |ctx| {
            if ctx.node_id() == 0 {
                panic!("boom");
            }
            ctx.barrier()?;
            Ok(())
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("boom") || err.to_string().contains("poisoned"),
            "{err}"
        );
    }

    #[test]
    fn modeled_time_reflects_counters() {
        let run = Cluster::run(&cfg(2), |ctx| {
            ctx.stats().add_cpu(1_000_000);
            Ok(())
        })
        .unwrap();
        assert!(run.modeled_seconds > 0.0);
        assert!(run.wall > Duration::ZERO);
    }

    #[test]
    fn config_validation() {
        assert!(ClusterConfig::new(0, 1).validate().is_err());
        assert!(ClusterConfig::new(1, 0).validate().is_err());
        assert!(ClusterConfig::new(4, 1 << 20).validate().is_ok());
    }
}
