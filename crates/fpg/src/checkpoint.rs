//! Projection-granularity checkpointing of a parallel FP-Growth run.
//!
//! The Apriori family checkpoints after each *pass*; FP-Growth has only
//! two passes but many independent projections, so its recovery unit is
//! the projection: after every finished projection reaches the
//! coordinator, the checkpoint records its itemsets, and a degraded-mode
//! rerun (or `mine --resume`) replays only the unfinished ones.
//!
//! Format (little-endian, style of `gar_mining::checkpoint`): magic
//! `GFPC`, `u32` version, `u64` transaction count, `u64` minimum-support
//! count, the global item counts (`u32` length + `u64`s), then the
//! finished projections (`u32` count, each a `u32` item id, `u32` record
//! count, and per record a `u32` length, the item ids, and a `u64`
//! support). Projections are sorted by item id so the encoding is
//! canonical. A trailing FxHash checksum seals the payload; writes go
//! through a temp file + rename with `.prev` rotation, so a torn write is
//! detected and never mis-resumed. The file name (`fpg.ckpt`) is distinct
//! from the Apriori family's `mining.ckpt`, so the two miners can share a
//! checkpoint directory without clobbering each other.

use gar_types::{Error, ItemId, Itemset, Result};
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"GFPC";
const VERSION: u32 = 1;

/// Everything needed to resume an FP-Growth run: pass 1's global state
/// plus every projection whose result already reached the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgCheckpoint {
    /// Global transaction count (pass 1's all-reduce).
    pub num_transactions: u64,
    /// Absolute minimum support count.
    pub min_support_count: u64,
    /// Global per-item support counts — the frequency order (and with it
    /// every rank on the wire) is a pure function of these.
    pub item_counts: Vec<u64>,
    /// Finished projections: `(projection item, its size-≥2 itemsets)`,
    /// sorted by item.
    pub completed: Vec<(ItemId, Vec<(Itemset, u64)>)>,
}

impl FpgCheckpoint {
    /// Whether `item`'s projection is already finished.
    pub fn has(&self, item: ItemId) -> bool {
        self.completed
            .binary_search_by_key(&item, |(it, _)| *it)
            .is_ok()
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = gar_types::FxHasher::default();
    h.write(bytes);
    h.finish()
}

fn encode(cp: &FpgCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&cp.num_transactions.to_le_bytes());
    out.extend_from_slice(&cp.min_support_count.to_le_bytes());
    out.extend_from_slice(&(cp.item_counts.len() as u32).to_le_bytes());
    for &c in &cp.item_counts {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&(cp.completed.len() as u32).to_le_bytes());
    for (item, records) in &cp.completed {
        out.extend_from_slice(&item.raw().to_le_bytes());
        out.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for (set, count) in records {
            out.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for &it in set.items() {
                out.extend_from_slice(&it.raw().to_le_bytes());
            }
            out.extend_from_slice(&count.to_le_bytes());
        }
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Bounded cursor; every short read is a clean [`Error::Corrupt`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::Corrupt("FP-Growth checkpoint truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| Error::Corrupt("checkpoint u32 field malformed".into()))?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| Error::Corrupt("checkpoint u64 field malformed".into()))?;
        Ok(u64::from_le_bytes(b))
    }
}

fn decode(bytes: &[u8]) -> Result<FpgCheckpoint> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(Error::Corrupt("FP-Growth checkpoint too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let tail: [u8; 8] = tail
        .try_into()
        .map_err(|_| Error::Corrupt("checkpoint checksum tail malformed".into()))?;
    if checksum(body) != u64::from_le_bytes(tail) {
        return Err(Error::Corrupt("checkpoint checksum mismatch".into()));
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    if c.take(4)? != MAGIC {
        return Err(Error::Corrupt(
            "not an FP-Growth checkpoint file (bad magic)".into(),
        ));
    }
    if c.u32()? != VERSION {
        return Err(Error::Corrupt("unsupported checkpoint version".into()));
    }
    let num_transactions = c.u64()?;
    let min_support_count = c.u64()?;
    let num_items = c.u32()? as usize;
    if num_items > 1 << 26 {
        return Err(Error::Corrupt("implausible item-count length".into()));
    }
    let mut item_counts = Vec::with_capacity(num_items);
    for _ in 0..num_items {
        item_counts.push(c.u64()?);
    }
    let num_completed = c.u32()? as usize;
    if num_completed > num_items {
        return Err(Error::Corrupt("implausible projection count".into()));
    }
    let mut completed = Vec::with_capacity(num_completed);
    for _ in 0..num_completed {
        let item = ItemId(c.u32()?);
        if item.index() >= num_items {
            return Err(Error::Corrupt("projection item out of range".into()));
        }
        if let Some((prev, _)) = completed.last() {
            if *prev >= item {
                return Err(Error::Corrupt("projections are not sorted by item".into()));
            }
        }
        let num_records = c.u32()? as usize;
        if num_records > body.len() {
            return Err(Error::Corrupt("implausible record count".into()));
        }
        let mut records = Vec::with_capacity(num_records);
        for _ in 0..num_records {
            let len = c.u32()? as usize;
            if len > body.len() / 4 {
                return Err(Error::Corrupt("implausible itemset length".into()));
            }
            let mut set = Vec::with_capacity(len);
            for _ in 0..len {
                set.push(ItemId(c.u32()?));
            }
            let count = c.u64()?;
            records.push((Itemset::from_unsorted(set), count));
        }
        completed.push((item, records));
    }
    if c.pos != body.len() {
        return Err(Error::Corrupt("checkpoint has trailing garbage".into()));
    }
    Ok(FpgCheckpoint {
        num_transactions,
        min_support_count,
        item_counts,
        completed,
    })
}

/// The FP-Growth checkpoint file inside `dir`.
pub fn checkpoint_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join("fpg.ckpt")
}

fn prev_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".prev");
    PathBuf::from(s)
}

/// Writes `cp` to `path` atomically: temp file, rotate the old file to
/// `.prev`, rename into place.
pub fn save_checkpoint(cp: &FpgCheckpoint, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, encode(cp))
        .map_err(|e| Error::io(format!("writing checkpoint {}", tmp.display()), e))?;
    if path.exists() {
        std::fs::rename(path, prev_path(path))
            .map_err(|e| Error::io(format!("rotating checkpoint {}", path.display()), e))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| Error::io(format!("publishing checkpoint {}", path.display()), e))
}

/// Reads and validates the checkpoint at `path`.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<FpgCheckpoint> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| Error::io(format!("reading checkpoint {}", path.display()), e))?;
    decode(&bytes)
}

/// Loads the newest intact checkpoint in `dir`: the current file if it
/// verifies, else the rotated `.prev`, else `None` (cold start).
pub fn load_latest(dir: impl AsRef<Path>) -> Option<FpgCheckpoint> {
    let main = checkpoint_path(dir);
    load_checkpoint(&main)
        .ok()
        .or_else(|| load_checkpoint(prev_path(&main)).ok())
}

/// Where finished projections are recorded during a run: always in
/// memory (for in-process degraded recovery), on disk when a directory
/// is configured. Shared by reference with every node thread; only the
/// coordinator writes.
pub struct FpgCheckpointSink {
    mem: Mutex<Option<FpgCheckpoint>>,
    dir: Option<PathBuf>,
}

impl FpgCheckpointSink {
    /// A sink writing to `dir` (created if missing), or memory-only.
    pub fn new(dir: Option<PathBuf>) -> Result<FpgCheckpointSink> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)
                .map_err(|e| Error::io(format!("creating checkpoint dir {}", d.display()), e))?;
        }
        Ok(FpgCheckpointSink {
            mem: Mutex::new(None),
            dir,
        })
    }

    /// Seeds the in-memory copy (used when resuming from disk).
    pub fn seed(&self, cp: FpgCheckpoint) {
        *self
            .mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cp);
    }

    /// Records a checkpoint (memory always, disk if configured).
    pub fn store(&self, cp: FpgCheckpoint) -> Result<()> {
        if let Some(dir) = &self.dir {
            save_checkpoint(&cp, checkpoint_path(dir))?;
        }
        *self
            .mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cp);
        Ok(())
    }

    /// The most recent checkpoint recorded in this process.
    pub fn latest(&self) -> Option<FpgCheckpoint> {
        self.mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn sample() -> FpgCheckpoint {
        FpgCheckpoint {
            num_transactions: 400,
            min_support_count: 8,
            item_counts: vec![100, 80, 60, 40],
            completed: vec![
                (ItemId(1), vec![(iset![0, 1], 30)]),
                (ItemId(3), vec![(iset![0, 3], 12), (iset![0, 1, 3], 9)]),
            ],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gar-fpgckpt-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let cp = sample();
        assert_eq!(decode(&encode(&cp)).unwrap(), cp);
        assert!(cp.has(ItemId(1)));
        assert!(cp.has(ItemId(3)));
        assert!(!cp.has(ItemId(0)));
    }

    #[test]
    fn every_truncation_is_a_clean_corrupt_error() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, Error::Corrupt(_)),
                "truncation at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let err = decode(&bad).unwrap_err();
            assert!(matches!(err, Error::Corrupt(_)), "flip at {i}: {err:?}");
        }
    }

    #[test]
    fn unsorted_projections_rejected() {
        let mut cp = sample();
        cp.completed.swap(0, 1);
        let err = decode(&encode(&cp)).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn save_load_rotation_and_fallback() {
        let dir = tmpdir("rotate");
        let path = checkpoint_path(&dir);
        let mut first = sample();
        first.completed.truncate(1);
        save_checkpoint(&first, &path).unwrap();
        let full = sample();
        save_checkpoint(&full, &path).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), full);
        assert_eq!(load_checkpoint(prev_path(&path)).unwrap(), first);

        // Corrupt the current file: load_latest falls back to .prev.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), first);

        // Corrupt .prev too: cold start.
        std::fs::write(prev_path(&path), b"GFPCgarbage").unwrap();
        assert!(load_latest(&dir).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_records_in_memory_and_on_disk() {
        let dir = tmpdir("sink");
        let sink = FpgCheckpointSink::new(Some(dir.clone())).unwrap();
        assert!(sink.latest().is_none());
        let cp = sample();
        sink.store(cp.clone()).unwrap();
        assert_eq!(sink.latest().unwrap(), cp);
        assert_eq!(load_latest(&dir).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }
}
