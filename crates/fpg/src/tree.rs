//! The FP-tree: a prefix tree over rank-ordered transactions.
//!
//! Nodes store frequency *ranks* (see [`crate::order::ItemOrder`]), not
//! item ids — ranks are dense, globally agreed, and double as the wire
//! representation. The per-rank header lists make conditional-pattern-base
//! extraction a parent walk per tree node instead of a database rescan.

/// An FP-tree. Index 0 is the root sentinel.
#[derive(Debug)]
pub struct FpTree {
    nodes: Vec<Node>,
    /// `headers[rank]` — every tree node holding that rank.
    headers: Vec<Vec<u32>>,
    inserts: u64,
}

#[derive(Debug)]
struct Node {
    rank: u32,
    count: u64,
    parent: u32,
    /// Children sorted by rank; binary-searched on insert.
    children: Vec<(u32, u32)>,
}

impl FpTree {
    /// An empty tree over `num_ranks` large items.
    pub fn new(num_ranks: usize) -> FpTree {
        FpTree {
            nodes: vec![Node {
                rank: u32::MAX,
                count: 0,
                parent: u32::MAX,
                children: Vec::new(),
            }],
            headers: vec![Vec::new(); num_ranks],
            inserts: 0,
        }
    }

    /// Inserts one transaction, given as its ascending rank path, with
    /// unit count. Shared prefixes merge; each new suffix node is linked
    /// into its rank's header list.
    pub fn insert(&mut self, path: &[u32]) {
        self.inserts += path.len() as u64;
        let mut cur = 0u32;
        for &r in path {
            let search = self.nodes[cur as usize]
                .children
                .binary_search_by_key(&r, |&(cr, _)| cr);
            cur = match search {
                Ok(i) => {
                    let (_, idx) = self.nodes[cur as usize].children[i];
                    self.nodes[idx as usize].count += 1;
                    idx
                }
                Err(i) => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        rank: r,
                        count: 1,
                        parent: cur,
                        children: Vec::new(),
                    });
                    self.nodes[cur as usize].children.insert(i, (r, idx));
                    self.headers[r as usize].push(idx);
                    idx
                }
            };
        }
    }

    /// Number of tree nodes, excluding the root sentinel.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Total path elements inserted (the tree-build work measure).
    pub fn num_inserts(&self) -> u64 {
        self.inserts
    }

    /// Invokes `f` on the prefix path (ascending ranks, *excluding*
    /// `rank` itself) and count of every tree node holding `rank` — the
    /// raw conditional pattern base of that rank's item.
    pub fn for_each_base_path<E>(
        &self,
        rank: u32,
        f: &mut impl FnMut(&[u32], u64) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut path = Vec::new();
        for &idx in &self.headers[rank as usize] {
            let count = self.nodes[idx as usize].count;
            path.clear();
            let mut cur = self.nodes[idx as usize].parent;
            while cur != 0 && cur != u32::MAX {
                path.push(self.nodes[cur as usize].rank);
                cur = self.nodes[cur as usize].parent;
            }
            path.reverse();
            f(&path, count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_base(tree: &FpTree, rank: u32) -> Vec<(Vec<u32>, u64)> {
        let mut out = Vec::new();
        tree.for_each_base_path::<()>(rank, &mut |p, c| {
            out.push((p.to_vec(), c));
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn shared_prefixes_merge() {
        let mut tree = FpTree::new(4);
        tree.insert(&[0, 1, 2]);
        tree.insert(&[0, 1, 3]);
        tree.insert(&[0, 2]);
        // root -> 0 (3) -> 1 (2) -> {2, 3}; 0 -> 2 (1)
        assert_eq!(tree.num_nodes(), 5);
        assert_eq!(tree.num_inserts(), 8);

        assert_eq!(collect_base(&tree, 0), vec![(vec![], 3)]);
        assert_eq!(collect_base(&tree, 1), vec![(vec![0], 2)]);
        // Rank 2 appears twice: under 0-1 and directly under 0.
        let mut base2 = collect_base(&tree, 2);
        base2.sort();
        assert_eq!(base2, vec![(vec![0], 1), (vec![0, 1], 1)]);
    }

    #[test]
    fn empty_paths_are_noops() {
        let mut tree = FpTree::new(2);
        tree.insert(&[]);
        assert_eq!(tree.num_nodes(), 0);
        assert_eq!(tree.num_inserts(), 0);
    }
}
