//! Hierarchy-aware parallel FP-Growth — the repository's second miner
//! family, next to the Apriori-style candidate-generation algorithms of
//! `gar-mining`.
//!
//! # Algorithm
//!
//! Pattern growth replaces the generate-count-prune pass loop with two
//! database scans and a tree walk:
//!
//! 1. **Count** (identical to the Apriori family's pass 1): every item of
//!    every taxonomy level is counted over ancestor-extended transactions
//!    (`t' = t ∪ ancestors(t)`), yielding `L_1` and the global frequency
//!    order.
//! 2. **Build**: a second scan inserts each extended transaction — filtered
//!    to large items and sorted by the global order — into an FP-tree.
//! 3. **Grow**: for every large item, the tree's conditional pattern base
//!    (the prefix paths above that item's nodes) is mined recursively.
//!    Items hierarchy-related to the projection item are dropped from its
//!    base, which is where Cumulate's "no itemset contains both an item
//!    and its ancestor" rule lives in a pattern-growth world: an ancestor
//!    appears in its descendant's base with the descendant's full count
//!    (every extended transaction holding the child holds the parent), and
//!    filtering it there removes exactly the redundant combinations.
//!
//! The output is **byte-identical** to the sequential Cumulate oracle: the
//! same itemsets, the same support counts, the same canonical order. See
//! [`sequential::mine_sequential`] for the single-threaded miner and
//! [`parallel::mine_parallel`] for the cluster driver.
//!
//! # Parallelization
//!
//! The cluster version carries the H-HPGM placement idea (partition by the
//! *root* of the classification hierarchy, so generalization chains stay
//! node-local) to projections: each large item's conditional base is owned
//! by `hash(root_of(item)) % N`. Every node builds an FP-tree over its own
//! partition, ships each projection's paths to the owner through one
//! non-barrier exchange, and then mines its owned projections as
//! independent tasks — there is no per-pass synchronization after the
//! exchange. Finished projections stream to the coordinator, which
//! checkpoints at projection granularity and broadcasts the assembled
//! output, so degraded-mode recovery after a node failure replays only the
//! unfinished projections.

pub mod checkpoint;
pub mod grow;
pub mod order;
#[cfg(not(gar_loom))]
pub mod parallel;
pub mod sequential;
pub mod tree;
mod wire;

pub use checkpoint::{FpgCheckpoint, FpgCheckpointSink};
pub use order::ItemOrder;
#[cfg(not(gar_loom))]
pub use parallel::{mine_parallel, mine_parallel_with, owner_of, MineOptions};
pub use sequential::mine_sequential;
pub use tree::FpTree;
