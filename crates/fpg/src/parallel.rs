//! Parallel FP-Growth on the shared-nothing cluster simulator.
//!
//! The run has two logical passes:
//!
//! 1. **Count** — identical to the Apriori family's pass 1: all-reduce the
//!    transaction count, scan + count ancestor-extended items, all-reduce
//!    the counts. Every node now holds the global frequency order.
//! 2. **Build + grow** — each node builds an FP-tree over its own
//!    partition, then ships every projection's conditional-base paths to
//!    the projection's *owner* through one non-barrier exchange. Ownership
//!    hashes the projection item's classification-hierarchy **root**
//!    (H-HPGM's placement carried to pattern growth), so an item and all
//!    its ancestors — the generalization chain the related-item filter
//!    inspects — land on one node. After the exchange quiesces, owners
//!    mine their projections as independent tasks, streaming each finished
//!    projection to the coordinator, which checkpoints at projection
//!    granularity and finally broadcasts the assembled output.
//!
//! Every projection task announces itself via `set_pass(3 + t)`, so
//! `FaultPlan` coordinates address "node n, projection t": `panic@n1p4`
//! kills node 1 in its second projection, and [`mine_parallel_with`]
//! recovers by redistributing the dead node's partitions and replaying
//! only the projections missing from the checkpoint. Support counts are
//! partition-independent, so the recovered output — and the rule store
//! derived from it — is byte-identical to the fault-free run.

use crate::checkpoint::{self, FpgCheckpoint, FpgCheckpointSink};
use crate::grow::{mine_projection, CondBase, GrowCtx};
use crate::order::ItemOrder;
use crate::sequential::{group_passes, large_singletons};
use crate::tree::FpTree;
use crate::wire::{self, tags, PathBatch};
use gar_cluster::{
    Cluster, ClusterConfig, ClusterRun, Envelope, NodeCtx, NodeStatsSnapshot, RetryPolicy,
};
use gar_mining::params::{Algorithm, MiningParams};
use gar_mining::report::{LargePass, MiningOutput, ParallelReport, PassReport};
use gar_storage::{MultiSource, PartitionedDatabase, TransactionSource};
use gar_taxonomy::Taxonomy;
use gar_types::{Error, ItemId, Itemset, Result};
use std::collections::BTreeMap;
use std::hash::Hasher;

pub use gar_mining::parallel::MineOptions;

/// Flush threshold for outgoing path batches (same rationale as the
/// Apriori family's batching).
const BATCH_FLUSH_BYTES: usize = 16 * 1024;

/// How many projections to extract between opportunistic inbox drains
/// during the base exchange.
const POLL_EVERY_PROJECTIONS: u32 = 8;

/// The node owning `item`'s projection: hash of the item's *root*, so a
/// whole generalization chain is mined on one node.
pub fn owner_of(item: ItemId, tax: &Taxonomy, num_nodes: usize) -> usize {
    let mut h = gar_types::FxHasher::default();
    h.write_u32(tax.root_of(item).raw());
    (h.finish() % num_nodes as u64) as usize
}

/// Checkpoint plumbing handed to every node thread.
struct Persist<'a> {
    resume_from: Option<&'a FpgCheckpoint>,
    sink: Option<&'a FpgCheckpointSink>,
}

const NO_PERSIST: Persist<'static> = Persist {
    resume_from: None,
    sink: None,
};

/// Per-pass bookkeeping one node accumulates (the FP-Growth analogue of
/// the Apriori family's `NodePassInfo`; no duplication or fragments here).
struct PassInfo {
    k: usize,
    /// Pass 1: items counted. Pass 2: projections this node mined.
    num_candidates: usize,
    num_large: usize,
    restored: bool,
    delta: NodeStatsSnapshot,
}

struct NodeOutcome {
    pass_infos: Vec<PassInfo>,
    /// Identical on every node (the coordinator broadcasts it).
    output: MiningOutput,
}

/// Runs parallel FP-Growth over `db` (one partition per node) on a
/// simulated cluster of `cluster.num_nodes` nodes.
///
/// # Errors
/// Rejects a node/partition mismatch and invalid parameters; propagates
/// node failures.
pub fn mine_parallel(
    db: &PartitionedDatabase,
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
) -> Result<ParallelReport> {
    params.validate()?;
    cluster.validate()?;
    check_partitions(db, cluster)?;
    let sources: Vec<&dyn TransactionSource> =
        (0..db.num_partitions()).map(|i| db.partition(i)).collect();
    run(&sources, tax, params, cluster, &NO_PERSIST)
}

/// [`mine_parallel`] with the fault-tolerant runtime: projection-level
/// checkpointing, `--resume`, and degraded-mode recovery. Mirrors
/// `gar_mining::parallel::mine_parallel_with`, with the projection (not
/// the pass) as the recovery unit.
pub fn mine_parallel_with(
    db: &PartitionedDatabase,
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    opts: &MineOptions,
) -> Result<ParallelReport> {
    params.validate()?;
    cluster.validate()?;
    check_partitions(db, cluster)?;

    let want_sink = opts.checkpoint_dir.is_some() || opts.max_node_failures > 0;
    let sink = if want_sink {
        Some(FpgCheckpointSink::new(opts.checkpoint_dir.clone())?)
    } else {
        None
    };

    let mut restore: Option<FpgCheckpoint> = None;
    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            if let Some(cp) = checkpoint::load_latest(dir) {
                if let Some(s) = &sink {
                    s.seed(cp.clone());
                }
                restore = Some(cp);
            }
        }
    }

    // `slots[s]` holds the original partition indices node `s` scans in
    // the current attempt; a failed node's slot is dissolved into the
    // survivors' slots.
    let mut slots: Vec<Vec<usize>> = (0..cluster.num_nodes).map(|i| vec![i]).collect();
    let mut degraded: Vec<String> = Vec::new();
    let mut failures = 0usize;
    loop {
        let mut attempt = cluster.clone();
        attempt.num_nodes = slots.len();
        let multis: Vec<MultiSource<'_>> = slots
            .iter()
            .map(|parts| MultiSource::new(parts.iter().map(|&i| db.partition(i)).collect()))
            .collect();
        let sources: Vec<&dyn TransactionSource> =
            multis.iter().map(|m| m as &dyn TransactionSource).collect();
        let persist = Persist {
            resume_from: restore.as_ref(),
            sink: sink.as_ref(),
        };
        match run(&sources, tax, params, &attempt, &persist) {
            Ok(mut report) => {
                report.degraded = degraded;
                return Ok(report);
            }
            Err(Error::NodeFailure { node, reason })
                if failures < opts.max_node_failures && slots.len() > 1 && node < slots.len() =>
            {
                failures += 1;
                let orphaned = slots.remove(node);
                let survivors = slots.len();
                for (j, part) in orphaned.iter().enumerate() {
                    slots[j % survivors].push(*part);
                }
                restore = sink.as_ref().and_then(|s| s.latest());
                let finished = restore.as_ref().map_or(0, |cp| cp.completed.len());
                degraded.push(format!(
                    "node {node} failed ({reason}); redistributed partitions {orphaned:?} \
                     across {survivors} survivors and resumed with {finished} finished \
                     projections restored"
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

fn check_partitions(db: &PartitionedDatabase, cluster: &ClusterConfig) -> Result<()> {
    if db.num_partitions() != cluster.num_nodes {
        return Err(Error::InvalidConfig(format!(
            "database has {} partitions but the cluster has {} nodes",
            db.num_partitions(),
            cluster.num_nodes
        )));
    }
    Ok(())
}

fn run(
    sources: &[&dyn TransactionSource],
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    persist: &Persist<'_>,
) -> Result<ParallelReport> {
    let run = Cluster::run(cluster, |ctx| {
        let part = sources[ctx.node_id()];
        node_mine(ctx, part, tax, params, persist)
    })?;
    Ok(assemble(cluster, run))
}

/// One full pass over the node's local partition, with the same I/O and
/// observability accounting as the Apriori family's scans.
fn scan_partition(
    ctx: &NodeCtx,
    part: &dyn TransactionSource,
    mut f: impl FnMut(&[ItemId]) -> Result<()>,
) -> Result<()> {
    let _scan = ctx.span("scan");
    let before = part.bytes_read();
    // Opening the scan is where injected (and real) storage errors
    // surface; retrying the *open* can never double-count transactions.
    let mut scan = RetryPolicy::default().run(|| {
        ctx.inject_scan_fault()?;
        part.scan()
    })?;
    let mut buf = Vec::new();
    let mut transactions = 0u64;
    while scan.next_into(&mut buf)? {
        transactions += 1;
        f(&buf)?;
    }
    drop(scan);
    ctx.stats().record_io(part.bytes_read() - before);
    ctx.stats().record_scan_pass();
    let obs = ctx.obs();
    if obs.is_enabled() {
        let labels = [("node", ctx.node_id() as u64), ("pass", ctx.current_pass())];
        obs.add("scan.passes", &labels, 1);
        obs.add("scan.transactions", &labels, transactions);
        obs.add("scan.bytes", &labels, part.bytes_read() - before);
    }
    Ok(())
}

/// Records a finished logical pass in the run's observability sink, with
/// the exact metric names of the Apriori family so `metrics.json` keeps
/// one schema across miner families.
fn record_pass_obs(ctx: &NodeCtx, info: &PassInfo) {
    let obs = ctx.obs();
    if !obs.is_enabled() {
        return;
    }
    let labels = [("node", ctx.node_id() as u64), ("pass", info.k as u64)];
    obs.add("pass.candidates", &labels, info.num_candidates as u64);
    obs.add("pass.duplicated", &labels, 0);
    obs.add("pass.fragments", &labels, 1);
    obs.add("pass.large", &labels, info.num_large as u64);
    if info.restored {
        obs.add("pass.restored", &labels, 1);
    }
    let d = &info.delta;
    obs.add("pass.messages_sent", &labels, d.messages_sent);
    obs.add("pass.bytes_sent", &labels, d.bytes_sent);
    obs.add("pass.messages_received", &labels, d.messages_received);
    obs.add("pass.bytes_received", &labels, d.bytes_received);
    obs.add("pass.hash_probes", &labels, d.hash_probes);
    obs.add("pass.cpu_ticks", &labels, d.cpu_ticks);
    obs.add("pass.io_bytes", &labels, d.io_bytes);
    obs.observe(
        "pass.node_bytes_received",
        &[("pass", info.k as u64)],
        d.bytes_received,
    );
    obs.observe(
        "pass.node_cpu_ticks",
        &[("pass", info.k as u64)],
        d.cpu_ticks,
    );
}

/// Coordinator-side checkpoint write; non-coordinators and runs without
/// a sink are no-ops.
fn store_checkpoint(
    ctx: &NodeCtx,
    persist: &Persist<'_>,
    num_transactions: u64,
    min_support_count: u64,
    item_counts: &[u64],
    deep: &BTreeMap<ItemId, Vec<(Itemset, u64)>>,
) -> Result<()> {
    let Some(sink) = persist.sink else {
        return Ok(());
    };
    if !ctx.is_coordinator() {
        return Ok(());
    }
    let _checkpoint = ctx.span("checkpoint");
    ctx.obs().add(
        "checkpoint.stored",
        &[("node", ctx.node_id() as u64), ("pass", ctx.current_pass())],
        1,
    );
    sink.store(FpgCheckpoint {
        num_transactions,
        min_support_count,
        item_counts: item_counts.to_vec(),
        // BTreeMap iteration is already the canonical item order.
        completed: deep.iter().map(|(it, v)| (*it, v.clone())).collect(),
    })
}

/// Receives one PATHS envelope into the local conditional bases.
fn receive_paths(env: &Envelope, scratch: &mut Vec<u32>, bases: &mut [CondBase]) -> Result<()> {
    if env.tag != tags::PATHS {
        return Err(Error::Protocol(format!(
            "expected PATHS during base exchange, got tag {}",
            env.tag
        )));
    }
    wire::for_each_path(&env.payload, scratch, |target, count, path| {
        let base = bases
            .get_mut(target as usize)
            .ok_or_else(|| Error::Protocol(format!("path for unknown projection rank {target}")))?;
        base.push((path.to_vec(), count));
        Ok(())
    })
}

/// Coordinator-side intake of one finished projection from a peer.
fn receive_result(
    env: &Envelope,
    order: &ItemOrder,
    deep: &mut BTreeMap<ItemId, Vec<(Itemset, u64)>>,
) -> Result<()> {
    if env.tag != tags::RESULT {
        return Err(Error::Protocol(format!(
            "coordinator expected RESULT, got tag {}",
            env.tag
        )));
    }
    let (rank, items) = wire::decode_result(&env.payload)?;
    if rank as usize >= order.num_large() {
        return Err(Error::Protocol(format!(
            "result for unknown projection rank {rank}"
        )));
    }
    let item = order.item_at(rank);
    if deep.insert(item, items).is_some() {
        return Err(Error::Protocol(format!(
            "duplicate projection result for item {}",
            item.raw()
        )));
    }
    Ok(())
}

fn node_mine(
    ctx: &NodeCtx,
    part: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
    persist: &Persist<'_>,
) -> Result<NodeOutcome> {
    let me = ctx.node_id();
    let n = ctx.num_nodes();
    let mut pass_infos = Vec::new();

    // ---- Pass 1: global item counts (or their checkpointed replay). ----
    let (num_transactions, min_support_count, item_counts, p1_restored, p1_delta) =
        if let Some(cp) = persist.resume_from {
            (
                cp.num_transactions,
                cp.min_support_count,
                cp.item_counts.clone(),
                true,
                NodeStatsSnapshot::default(),
            )
        } else {
            let last_snap = ctx.stats().snapshot();
            ctx.set_pass(1);
            let _pass = ctx.span("pass");
            let num_transactions = ctx.all_reduce_u64(&[part.num_transactions() as u64])?[0];
            let min_support_count = params.min_support_count(num_transactions);
            let mut counts = vec![0u64; tax.num_items() as usize];
            let mut extended = Vec::new();
            scan_partition(ctx, part, |t| {
                tax.extend_transaction_into(t, &mut extended);
                ctx.stats().add_cpu(extended.len() as u64);
                for &it in &extended {
                    counts[it.index()] += 1;
                }
                Ok(())
            })?;
            let global = {
                let _count = ctx.span("count");
                ctx.all_reduce_u64(&counts)?
            };
            let delta = ctx.stats().snapshot().delta_since(&last_snap);
            (
                num_transactions,
                min_support_count,
                global.as_ref().clone(),
                false,
                delta,
            )
        };

    let large1 = large_singletons(&item_counts, min_support_count);
    let order = ItemOrder::new(&item_counts, min_support_count);
    pass_infos.push(PassInfo {
        k: 1,
        num_candidates: tax.num_items() as usize,
        num_large: large1.itemsets.len(),
        restored: p1_restored,
        delta: p1_delta,
    });
    record_pass_obs(ctx, &pass_infos[0]);

    // The finished projections every node skips on a resumed attempt.
    let completed: &[(ItemId, Vec<(Itemset, u64)>)] =
        persist.resume_from.map_or(&[], |cp| &cp.completed);
    let has_completed = |item: ItemId| completed.binary_search_by_key(&item, |(it, _)| *it).is_ok();

    // Coordinator-side accumulator of finished projections, seeded from
    // the checkpoint. BTreeMap keys give the canonical assembly order
    // regardless of result arrival order.
    let mut deep: BTreeMap<ItemId, Vec<(Itemset, u64)>> = BTreeMap::new();
    if ctx.is_coordinator() {
        for (it, v) in completed {
            deep.insert(*it, v.clone());
        }
        if !p1_restored {
            store_checkpoint(
                ctx,
                persist,
                num_transactions,
                min_support_count,
                &item_counts,
                &deep,
            )?;
        }
    }

    // All nodes derive this from the same global data, so pass_infos
    // stays equal-length across the cluster either way.
    let run_projections = params.max_pass != Some(1) && order.num_large() > 0;

    let passes: Vec<LargePass> = if run_projections {
        ctx.set_pass(2);
        let pass2_snap = ctx.stats().snapshot();
        let _pass = ctx.span("pass");

        // Every node derives the same global projection count (the
        // pass-2 "candidates"), its own task list, and — on the
        // coordinator — the exact number of peer results to expect.
        // On a resume this is the *remaining* work; a fully-checkpointed
        // run rebuilds nothing and rescans nothing.
        let mut total_projections = 0usize;
        let mut owned: Vec<u32> = Vec::new();
        for r in 0..order.num_large() as u32 {
            let item = order.item_at(r);
            if has_completed(item) {
                continue;
            }
            total_projections += 1;
            if owner_of(item, tax, n) == me {
                owned.push(r);
            }
        }
        let mut expected = if ctx.is_coordinator() {
            total_projections - owned.len()
        } else {
            0
        };

        let mut bases: Vec<CondBase> = vec![CondBase::new(); order.num_large()];
        if total_projections > 0 {
            // ---- Build the local FP-tree over rank-projected transactions. ----
            let mut tree = FpTree::new(order.num_large());
            {
                let mut ranks = Vec::new();
                let mut extended = Vec::new();
                scan_partition(ctx, part, |t| {
                    tax.extend_transaction_into(t, &mut extended);
                    ctx.stats().add_cpu(extended.len() as u64);
                    order.project(&extended, &mut ranks);
                    tree.insert(&ranks);
                    Ok(())
                })?;
            }
            {
                let obs = ctx.obs();
                if obs.is_enabled() {
                    let labels = [("node", me as u64), ("pass", 2u64)];
                    obs.add("counter.fptree.nodes", &labels, tree.num_nodes() as u64);
                    obs.add("counter.fptree.inserts", &labels, tree.num_inserts());
                }
            }

            // ---- Exchange: ship each projection's base paths to its owner. ----
            let mut recv_scratch: Vec<u32> = Vec::new();
            let mut ex = ctx.exchange();
            let mut outgoing: Vec<PathBatch> = (0..n).map(|_| PathBatch::new()).collect();
            for r in 0..order.num_large() as u32 {
                let item = order.item_at(r);
                if has_completed(item) {
                    continue; // already mined in a previous attempt
                }
                let owner = owner_of(item, tax, n);
                tree.for_each_base_path(r, &mut |path, count| {
                    ctx.stats().add_cpu(path.len() as u64 + 1);
                    let filtered: Vec<u32> = path
                        .iter()
                        .copied()
                        .filter(|&q| !tax.related(order.item_at(q), item))
                        .collect();
                    if filtered.is_empty() {
                        return Ok(());
                    }
                    if owner == me {
                        bases[r as usize].push((filtered, count));
                    } else {
                        outgoing[owner].push(r, count, &filtered);
                        if outgoing[owner].byte_len() >= BATCH_FLUSH_BYTES {
                            ex.send(owner, tags::PATHS, outgoing[owner].take())?;
                        }
                    }
                    Ok(())
                })?;
                if (r + 1) % POLL_EVERY_PROJECTIONS == 0 {
                    ex.poll(|env| receive_paths(env, &mut recv_scratch, &mut bases))?;
                }
            }
            let _exchange = ctx.span("exchange");
            for (owner, batch) in outgoing.iter_mut().enumerate() {
                if !batch.is_empty() {
                    ex.send(owner, tags::PATHS, batch.take())?;
                }
            }
            ex.finish(|env| receive_paths(env, &mut recv_scratch, &mut bases))?;
            // Quiesce the exchange so no RESULT message can race into a
            // peer's exchange drain.
            ctx.barrier()?;
        }

        let mut grow = GrowCtx {
            order: &order,
            tax,
            min_support_count,
            max_len: params.max_pass,
            work: 0,
        };
        for (t, &r) in owned.iter().enumerate() {
            // The per-projection fault coordinate: `panic@nXpY` with
            // Y >= 3 kills node X in its (Y-3)rd projection task.
            ctx.set_pass(3 + t);
            let item = order.item_at(r);
            let mut found = Vec::new();
            {
                let _projection = ctx.span("projection");
                mine_projection(&mut grow, item, &bases[r as usize], &mut found);
            }
            ctx.obs().add(
                "counter.fptree.projections",
                &[("node", me as u64), ("pass", ctx.current_pass())],
                1,
            );
            if ctx.is_coordinator() {
                if deep.insert(item, found).is_some() {
                    return Err(Error::Protocol(format!(
                        "projection {} mined twice",
                        item.raw()
                    )));
                }
                store_checkpoint(
                    ctx,
                    persist,
                    num_transactions,
                    min_support_count,
                    &item_counts,
                    &deep,
                )?;
                // Opportunistically absorb peers' finished projections so
                // the checkpoint advances while we still mine our own.
                while let Some(env) = ctx.try_recv()? {
                    receive_result(&env, &order, &mut deep)?;
                    expected = expected.checked_sub(1).ok_or_else(|| {
                        Error::Protocol("unexpected extra projection result".into())
                    })?;
                    store_checkpoint(
                        ctx,
                        persist,
                        num_transactions,
                        min_support_count,
                        &item_counts,
                        &deep,
                    )?;
                }
            } else {
                ctx.send(0, tags::RESULT, wire::encode_result(r, &found))?;
            }
        }
        ctx.stats().add_cpu(grow.work);

        // ---- Gather the stragglers, assemble, broadcast. ----
        let passes = {
            let _gather = ctx.span("gather");
            if ctx.is_coordinator() {
                while expected > 0 {
                    let env = ctx.recv()?;
                    receive_result(&env, &order, &mut deep)?;
                    expected -= 1;
                    store_checkpoint(
                        ctx,
                        persist,
                        num_transactions,
                        min_support_count,
                        &item_counts,
                        &deep,
                    )?;
                }
                let found: Vec<(Itemset, u64)> =
                    deep.values().flat_map(|v| v.iter().cloned()).collect();
                let mut passes = Vec::new();
                if !large1.itemsets.is_empty() {
                    passes.push(large1.clone());
                }
                passes.extend(group_passes(found));
                ctx.broadcast(Some(wire::encode_passes(&passes)))?;
                passes
            } else {
                wire::decode_passes(&ctx.broadcast(None)?)?
            }
        };

        let deep_large: usize = passes
            .iter()
            .filter(|p| p.k >= 2)
            .map(|p| p.itemsets.len())
            .sum();
        pass_infos.push(PassInfo {
            k: 2,
            num_candidates: total_projections,
            num_large: deep_large,
            restored: false,
            delta: ctx.stats().snapshot().delta_since(&pass2_snap),
        });
        record_pass_obs(ctx, &pass_infos[1]);
        passes
    } else if large1.itemsets.is_empty() {
        Vec::new()
    } else {
        vec![large1.clone()]
    };

    Ok(NodeOutcome {
        pass_infos,
        output: MiningOutput {
            algorithm: Algorithm::FpGrowth,
            num_transactions,
            min_support_count,
            passes,
        },
    })
}

fn assemble(cluster: &ClusterConfig, run: ClusterRun<NodeOutcome>) -> ParallelReport {
    let num_nodes = cluster.num_nodes;
    let num_passes = run.results[0].pass_infos.len();
    debug_assert!(run.results.iter().all(|r| r.pass_infos.len() == num_passes));

    let mut pass_reports = Vec::with_capacity(num_passes);
    let mut total_modeled = 0.0;
    for p in 0..num_passes {
        let info = &run.results[0].pass_infos[p];
        let node_deltas: Vec<NodeStatsSnapshot> =
            run.results.iter().map(|r| r.pass_infos[p].delta).collect();
        let modeled_seconds = cluster.cost.execution_seconds(&node_deltas);
        total_modeled += modeled_seconds;
        pass_reports.push(PassReport {
            k: info.k,
            num_candidates: info.num_candidates,
            num_duplicated: 0,
            num_fragments: 1,
            num_large: info.num_large,
            restored: info.restored,
            node_deltas,
            modeled_seconds,
        });
    }

    let output = run.results.into_iter().next().expect("node 0").output;
    ParallelReport {
        output,
        num_nodes,
        pass_reports,
        wall: run.wall,
        modeled_seconds: total_modeled,
        node_totals: run.stats,
        degraded: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::TaxonomyBuilder;

    #[test]
    fn owner_is_stable_within_a_generalization_chain() {
        // 0 -> 1 -> 2 (one chain), 3 alone.
        let mut b = TaxonomyBuilder::new(4);
        b.edge(1, 0).unwrap();
        b.edge(2, 1).unwrap();
        let tax = b.build().unwrap();
        for nodes in [1usize, 2, 4, 8] {
            let owner_root = owner_of(ItemId(0), &tax, nodes);
            assert_eq!(owner_of(ItemId(1), &tax, nodes), owner_root);
            assert_eq!(owner_of(ItemId(2), &tax, nodes), owner_root);
            assert!(owner_of(ItemId(3), &tax, nodes) < nodes);
        }
    }

    #[test]
    fn partition_mismatch_rejected() {
        let tax = TaxonomyBuilder::new(2).build().unwrap();
        let db = PartitionedDatabase::build_in_memory(
            2,
            vec![vec![ItemId(0)], vec![ItemId(1)]].into_iter(),
        )
        .unwrap();
        let cluster = ClusterConfig::new(3, 64 * 1024 * 1024);
        let err =
            mine_parallel(&db, &tax, &MiningParams::with_min_support(0.1), &cluster).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err:?}");
    }
}
