//! Recursive pattern growth over conditional pattern bases.
//!
//! A projection mines every large itemset whose *least frequent* member
//! is the projection item: each itemset therefore belongs to exactly one
//! projection (the one of its maximum-rank element), which is what makes
//! projections independently schedulable across cluster nodes.
//!
//! The recursion works on path lists, not rebuilt sub-trees: a conditional
//! base is a list of `(ascending rank path, count)` pairs, support of the
//! pattern extended by rank `j` is the count sum over paths containing
//! `j`, and `j`'s own sub-base is the strict prefixes before `j` with
//! items hierarchy-related to `j` dropped. That filter maintains the
//! invariant that a base never contains an item related to any pattern
//! element — Cumulate's ancestor rule, enforced at growth time.

use crate::order::ItemOrder;
use gar_taxonomy::Taxonomy;
use gar_types::{ItemId, Itemset};

/// One conditional pattern base: ascending rank paths with multiplicities.
pub type CondBase = Vec<(Vec<u32>, u64)>;

/// Shared context of one projection's growth.
pub struct GrowCtx<'a> {
    pub order: &'a ItemOrder,
    pub tax: &'a Taxonomy,
    pub min_support_count: u64,
    /// Largest itemset to emit (`MiningParams::max_pass`); `None` grows
    /// to fixpoint.
    pub max_len: Option<usize>,
    /// Path elements visited — the projection's CPU-work measure.
    pub work: u64,
}

/// Mines every large itemset (size ≥ 2) whose maximum-rank element is
/// `item`, given `item`'s conditional base with hierarchy-related items
/// already dropped. Singletons are pass 1's business. Emission order is
/// depth-first; the caller canonicalizes.
pub fn mine_projection(
    ctx: &mut GrowCtx<'_>,
    item: ItemId,
    base: &CondBase,
    out: &mut Vec<(Itemset, u64)>,
) {
    let mut pattern = vec![item];
    grow(ctx, &mut pattern, base, out);
}

fn grow(
    ctx: &mut GrowCtx<'_>,
    pattern: &mut Vec<ItemId>,
    base: &CondBase,
    out: &mut Vec<(Itemset, u64)>,
) {
    if ctx.max_len.is_some_and(|m| pattern.len() >= m) {
        return;
    }
    // Support of pattern ∪ {j} for every rank j present in the base.
    // Paths are ascending, so the largest rank in play is each path's
    // last element — a dense count array over that prefix is cheaper and
    // deterministically iterable, unlike a hash map.
    let mut max_rank = 0u32;
    for (path, _) in base {
        if let Some(&last) = path.last() {
            max_rank = max_rank.max(last + 1);
        }
    }
    let mut counts = vec![0u64; max_rank as usize];
    for (path, count) in base {
        ctx.work += path.len() as u64;
        for &r in path {
            counts[r as usize] += count;
        }
    }
    for j in 0..max_rank {
        let support = counts[j as usize];
        if support < ctx.min_support_count {
            continue;
        }
        let grown = ctx.order.item_at(j);
        pattern.push(grown);
        out.push((Itemset::from_unsorted(pattern.clone()), support));
        if ctx.max_len.is_none_or(|m| pattern.len() < m) {
            // j's conditional base: the strict prefixes before j of every
            // path containing j, minus items related to the grown item.
            let mut sub = CondBase::new();
            for (path, count) in base {
                let Ok(pos) = path.binary_search(&j) else {
                    continue;
                };
                ctx.work += pos as u64;
                let prefix: Vec<u32> = path[..pos]
                    .iter()
                    .copied()
                    .filter(|&q| !ctx.tax.related(ctx.order.item_at(q), grown))
                    .collect();
                if !prefix.is_empty() {
                    sub.push((prefix, *count));
                }
            }
            if !sub.is_empty() {
                grow(ctx, pattern, &sub, out);
            }
        }
        pattern.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn flat_tax(n: u32) -> Taxonomy {
        TaxonomyBuilder::new(n).build().unwrap()
    }

    #[test]
    fn grows_pairs_and_triples() {
        let tax = flat_tax(3);
        // counts: 0 -> 10, 1 -> 8, 2 -> 5 (ranks = ids here)
        let order = ItemOrder::new(&[10, 8, 5], 2);
        // Projection of item 2 (rank 2): base paths over ranks {0, 1}.
        let base: CondBase = vec![(vec![0, 1], 3), (vec![0], 2)];
        let mut ctx = GrowCtx {
            order: &order,
            tax: &tax,
            min_support_count: 2,
            max_len: None,
            work: 0,
        };
        let mut out = Vec::new();
        mine_projection(&mut ctx, ItemId(2), &base, &mut out);
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        assert_eq!(
            out,
            vec![(iset![0, 1, 2], 3), (iset![0, 2], 5), (iset![1, 2], 3),]
        );
        assert!(ctx.work > 0);
    }

    #[test]
    fn max_len_caps_growth() {
        let tax = flat_tax(3);
        let order = ItemOrder::new(&[10, 8, 5], 2);
        let base: CondBase = vec![(vec![0, 1], 3)];
        let mut ctx = GrowCtx {
            order: &order,
            tax: &tax,
            min_support_count: 2,
            max_len: Some(2),
            work: 0,
        };
        let mut out = Vec::new();
        mine_projection(&mut ctx, ItemId(2), &base, &mut out);
        assert!(out.iter().all(|(s, _)| s.len() == 2));
        assert_eq!(out.len(), 2); // {0,2}, {1,2} — no triple
    }

    #[test]
    fn related_items_filtered_from_sub_bases() {
        // 0 is the parent of 1; both large. Projection of item 2 whose
        // base holds both: {0,2} and {1,2} are fine, but growing {1,2}
        // must not add 0 (ancestor of 1).
        let mut b = TaxonomyBuilder::new(3);
        b.edge(1, 0).unwrap();
        let tax = b.build().unwrap();
        let order = ItemOrder::new(&[10, 8, 5], 2);
        let base: CondBase = vec![(vec![0, 1], 4)];
        let mut ctx = GrowCtx {
            order: &order,
            tax: &tax,
            min_support_count: 2,
            max_len: None,
            work: 0,
        };
        let mut out = Vec::new();
        mine_projection(&mut ctx, ItemId(2), &base, &mut out);
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        assert_eq!(out, vec![(iset![0, 2], 4), (iset![1, 2], 4)]);
    }
}
