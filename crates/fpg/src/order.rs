//! The global frequency order over large items.
//!
//! FP-Growth's determinism hangs on one total order shared by every tree
//! and every shipped path: items sorted by descending global support,
//! ties broken by ascending id. Both keys come out of pass 1's all-reduce,
//! so every node — at any cluster size — derives the identical order.

use gar_types::ItemId;

/// A dense bidirectional map between large items and their frequency
/// ranks. Rank 0 is the most frequent item; ranks are `u32` because they
/// double as the on-wire representation of path elements.
#[derive(Debug, Clone)]
pub struct ItemOrder {
    /// `rank_of[item.index()]`, or `u32::MAX` for items below minimum
    /// support.
    rank_of: Vec<u32>,
    /// `items[rank]` — the inverse map.
    items: Vec<ItemId>,
}

impl ItemOrder {
    /// Builds the order from the global per-item counts of pass 1.
    pub fn new(item_counts: &[u64], min_support_count: u64) -> ItemOrder {
        let mut items: Vec<ItemId> = (0..item_counts.len() as u32)
            .map(ItemId)
            .filter(|i| item_counts[i.index()] >= min_support_count)
            .collect();
        items.sort_unstable_by(|a, b| {
            item_counts[b.index()]
                .cmp(&item_counts[a.index()])
                .then(a.cmp(b))
        });
        let mut rank_of = vec![u32::MAX; item_counts.len()];
        for (r, &it) in items.iter().enumerate() {
            rank_of[it.index()] = r as u32;
        }
        ItemOrder { rank_of, items }
    }

    /// Number of large items (= number of ranks = number of projections).
    pub fn num_large(&self) -> usize {
        self.items.len()
    }

    /// The rank of `item`, or `None` if it is not large.
    pub fn rank(&self, item: ItemId) -> Option<u32> {
        let r = *self.rank_of.get(item.index())?;
        (r != u32::MAX).then_some(r)
    }

    /// The item holding `rank` (must be `< num_large()`).
    pub fn item_at(&self, rank: u32) -> ItemId {
        self.items[rank as usize]
    }

    /// Projects a transaction onto the order: keeps the large items and
    /// sorts their ranks ascending (most frequent first), which is the
    /// FP-tree insertion order. The input must be duplicate-free (which
    /// `Taxonomy::extend_transaction` guarantees).
    pub fn project(&self, t: &[ItemId], out: &mut Vec<u32>) {
        out.clear();
        for &it in t {
            if let Some(r) = self.rank(it) {
                out.push(r);
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_count_then_id() {
        // counts: item0=5, item1=9, item2=5, item3=1
        let order = ItemOrder::new(&[5, 9, 5, 1], 2);
        assert_eq!(order.num_large(), 3);
        assert_eq!(order.item_at(0), ItemId(1)); // highest count
        assert_eq!(order.item_at(1), ItemId(0)); // tie broken by id
        assert_eq!(order.item_at(2), ItemId(2));
        assert_eq!(order.rank(ItemId(3)), None); // below support
        assert_eq!(order.rank(ItemId(2)), Some(2));
    }

    #[test]
    fn project_filters_and_sorts() {
        let order = ItemOrder::new(&[5, 9, 5, 1], 2);
        let mut out = Vec::new();
        order.project(&[ItemId(3), ItemId(2), ItemId(1)], &mut out);
        assert_eq!(out, vec![0, 2]); // item1 (rank 0), item2 (rank 2)
    }
}
