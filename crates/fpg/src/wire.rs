//! Wire framing for the FP-Growth exchange phases.
//!
//! Everything travels as frequency *ranks* (`u32`), which both sides
//! derive identically from pass 1's all-reduced counts — no id remapping
//! on receive. Every decoder bounds-checks; malformed frames surface as
//! [`Error::Protocol`], never a panic.

use bytes::{BufMut, Bytes, BytesMut};
use gar_mining::report::LargePass;
use gar_mining::wire::{decode_counted, encode_counted};
use gar_types::{Error, Itemset, Result};

/// Message tags of the FP-Growth phases. Distinct from the Apriori
/// family's tags so a cross-wired message is a loud protocol error.
pub(crate) mod tags {
    /// A batch of conditional-base paths flowing to a projection's owner.
    pub const PATHS: u32 = 11;
    /// One finished projection's itemsets flowing to the coordinator.
    pub const RESULT: u32 = 12;
}

/// A batch of `(projection rank, count, path)` records. Same flush
/// discipline as the Apriori family's `ItemListBatch`.
pub(crate) struct PathBatch {
    buf: BytesMut,
    entries: usize,
}

impl PathBatch {
    /// An empty batch, pre-sized for the 16 KiB flush threshold so the
    /// first fill never regrows (and `take()` keeps the warm buffer).
    pub fn new() -> PathBatch {
        PathBatch {
            buf: BytesMut::with_capacity(17 * 1024),
            entries: 0,
        }
    }

    pub fn push(&mut self, target: u32, count: u64, path: &[u32]) {
        self.buf.put_u32_le(target);
        self.buf.put_u64_le(count);
        self.buf.put_u32_le(path.len() as u32);
        for &r in path {
            self.buf.put_u32_le(r);
        }
        self.entries += 1;
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Drains the batch into a sendable payload.
    pub fn take(&mut self) -> Bytes {
        self.entries = 0;
        self.buf.split().freeze()
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::Protocol("truncated FP-Growth frame".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| Error::Protocol("malformed u32 field".into()))?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| Error::Protocol("malformed u64 field".into()))?;
        Ok(u64::from_le_bytes(b))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Iterates the records of a [`PathBatch`] payload.
pub(crate) fn for_each_path(
    payload: &[u8],
    scratch: &mut Vec<u32>,
    mut f: impl FnMut(u32, u64, &[u32]) -> Result<()>,
) -> Result<()> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    while !c.done() {
        let target = c.u32()?;
        let count = c.u64()?;
        let len = c.u32()? as usize;
        if len > payload.len() / 4 {
            return Err(Error::Protocol("implausible path length".into()));
        }
        scratch.clear();
        for _ in 0..len {
            scratch.push(c.u32()?);
        }
        f(target, count, scratch)?;
    }
    Ok(())
}

/// Encodes one finished projection: its rank plus its itemsets (mixed
/// sizes, so records carry their own length).
pub(crate) fn encode_result(rank: u32, items: &[(Itemset, u64)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(rank);
    buf.put_u32_le(items.len() as u32);
    for (set, count) in items {
        buf.put_u32_le(set.len() as u32);
        for &it in set.items() {
            buf.put_u32_le(it.raw());
        }
        buf.put_u64_le(*count);
    }
    buf.freeze()
}

/// Decodes a [`encode_result`] payload.
pub(crate) fn decode_result(payload: &[u8]) -> Result<(u32, Vec<(Itemset, u64)>)> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let rank = c.u32()?;
    let n = c.u32()? as usize;
    if n > payload.len() {
        return Err(Error::Protocol("implausible result count".into()));
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32()? as usize;
        if len > payload.len() / 4 {
            return Err(Error::Protocol("implausible itemset length".into()));
        }
        let mut set = Vec::with_capacity(len);
        for _ in 0..len {
            set.push(gar_types::ItemId(c.u32()?));
        }
        let count = c.u64()?;
        items.push((Itemset::from_unsorted(set), count));
    }
    if !c.done() {
        return Err(Error::Protocol("result frame has trailing garbage".into()));
    }
    Ok((rank, items))
}

/// Encodes the final pass chain for the coordinator's output broadcast.
pub(crate) fn encode_passes(passes: &[LargePass]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(passes.len() as u32);
    for pass in passes {
        buf.put_u32_le(pass.k as u32);
        let block = encode_counted(pass.k, &pass.itemsets);
        buf.put_u32_le(block.len() as u32);
        buf.put_slice(&block);
    }
    buf.freeze()
}

/// Decodes an [`encode_passes`] payload.
pub(crate) fn decode_passes(payload: &[u8]) -> Result<Vec<LargePass>> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let n = c.u32()? as usize;
    if n > 64 {
        return Err(Error::Protocol("implausible pass count".into()));
    }
    let mut passes = Vec::with_capacity(n);
    for _ in 0..n {
        let k = c.u32()? as usize;
        let block_len = c.u32()? as usize;
        let itemsets = decode_counted(c.take(block_len)?)?;
        if itemsets.iter().any(|(s, _)| s.len() != k) {
            return Err(Error::Protocol(format!("pass {k} holds non-{k}-itemsets")));
        }
        passes.push(LargePass { k, itemsets });
    }
    if !c.done() {
        return Err(Error::Protocol("passes frame has trailing garbage".into()));
    }
    Ok(passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    #[test]
    fn path_batch_round_trips() {
        let mut b = PathBatch::new();
        b.push(7, 3, &[0, 2, 5]);
        b.push(9, 1, &[]);
        assert!(!b.is_empty());
        let payload = b.take();
        assert!(b.is_empty());
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        for_each_path(&payload, &mut scratch, |t, c, p| {
            got.push((t, c, p.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(got, vec![(7, 3, vec![0, 2, 5]), (9, 1, vec![])]);
    }

    #[test]
    fn result_round_trips() {
        let items = vec![(iset![3, 1], 10), (iset![4, 1, 2], 6)];
        let (rank, back) = decode_result(&encode_result(5, &items)).unwrap();
        assert_eq!(rank, 5);
        assert_eq!(back, items);
    }

    #[test]
    fn passes_round_trip() {
        let passes = vec![
            LargePass {
                k: 1,
                itemsets: vec![(iset![0], 4), (iset![2], 3)],
            },
            LargePass {
                k: 2,
                itemsets: vec![(iset![0, 2], 3)],
            },
        ];
        let back = decode_passes(&encode_passes(&passes)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].itemsets, passes[0].itemsets);
        assert_eq!(back[1].itemsets, passes[1].itemsets);
    }

    #[test]
    fn truncation_is_a_protocol_error() {
        let payload = encode_result(1, &[(iset![1, 2], 5)]);
        for cut in 0..payload.len() {
            assert!(decode_result(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }
}
