//! Single-threaded taxonomy-extended FP-Growth.
//!
//! Two scans (count, build) plus one projection sweep. The output matches
//! the sequential Cumulate oracle byte-for-byte: identical itemsets,
//! identical support counts, identical canonical order — that equality is
//! pinned by the `oracle` integration tests at several minimum supports
//! and pass caps.

use crate::grow::{mine_projection, CondBase, GrowCtx};
use crate::order::ItemOrder;
use crate::tree::FpTree;
use gar_mining::params::{Algorithm, MiningParams};
use gar_mining::report::{LargePass, MiningOutput};
use gar_storage::TransactionSource;
use gar_taxonomy::Taxonomy;
use gar_types::{ItemId, Itemset, Result};
use std::collections::BTreeMap;

/// Mines all generalized large itemsets of `source` by pattern growth.
///
/// # Errors
/// Propagates invalid parameters and storage failures.
pub fn mine_sequential(
    source: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
) -> Result<MiningOutput> {
    params.validate()?;
    let num_transactions = source.num_transactions() as u64;
    let min_support_count = params.min_support_count(num_transactions);

    // Scan 1: count every item of every level over extended transactions.
    let mut counts = vec![0u64; tax.num_items() as usize];
    let mut extended = Vec::new();
    scan(source, |t| {
        tax.extend_transaction_into(t, &mut extended);
        for &it in &extended {
            counts[it.index()] += 1;
        }
    })?;
    let large1 = large_singletons(&counts, min_support_count);
    let order = ItemOrder::new(&counts, min_support_count);

    let mut passes = Vec::new();
    if !large1.itemsets.is_empty() {
        passes.push(large1);
    }

    if params.max_pass != Some(1) && order.num_large() > 0 {
        // Scan 2: build the FP-tree over rank-projected transactions.
        let mut tree = FpTree::new(order.num_large());
        let mut ranks = Vec::new();
        scan(source, |t| {
            tax.extend_transaction_into(t, &mut extended);
            order.project(&extended, &mut ranks);
            tree.insert(&ranks);
        })?;

        // One projection per large item, most frequent first.
        let mut ctx = GrowCtx {
            order: &order,
            tax,
            min_support_count,
            max_len: params.max_pass,
            work: 0,
        };
        let mut found: Vec<(Itemset, u64)> = Vec::new();
        for r in 0..order.num_large() as u32 {
            let item = order.item_at(r);
            let base = extract_base(&tree, &order, tax, r);
            mine_projection(&mut ctx, item, &base, &mut found);
        }
        passes.extend(group_passes(found));
    }

    Ok(MiningOutput {
        algorithm: Algorithm::FpGrowth,
        num_transactions,
        min_support_count,
        passes,
    })
}

/// The conditional base of rank `r`'s item: its prefix paths with items
/// hierarchy-related to it dropped (the ancestor-redundancy filter) and
/// empty remainders skipped.
pub(crate) fn extract_base(tree: &FpTree, order: &ItemOrder, tax: &Taxonomy, r: u32) -> CondBase {
    let item = order.item_at(r);
    let mut base = CondBase::new();
    tree.for_each_base_path::<std::convert::Infallible>(r, &mut |path, count| {
        let filtered: Vec<u32> = path
            .iter()
            .copied()
            .filter(|&q| !tax.related(order.item_at(q), item))
            .collect();
        if !filtered.is_empty() {
            base.push((filtered, count));
        }
        Ok(())
    })
    .unwrap_or_else(|e| match e {});
    base
}

/// `L_1` from the global counts — must match the Apriori family's pass-1
/// singletons exactly (ascending item id).
pub(crate) fn large_singletons(counts: &[u64], min_support_count: u64) -> LargePass {
    let itemsets = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= min_support_count)
        .map(|(i, &c)| (Itemset::singleton(ItemId(i as u32)), c))
        .collect();
    LargePass { k: 1, itemsets }
}

/// Canonicalizes depth-first growth emissions into the Apriori pass
/// shape: grouped by size, each group sorted by itemset, sizes ascending.
pub(crate) fn group_passes(found: Vec<(Itemset, u64)>) -> Vec<LargePass> {
    let mut by_k: BTreeMap<usize, Vec<(Itemset, u64)>> = BTreeMap::new();
    for (set, count) in found {
        by_k.entry(set.len()).or_default().push((set, count));
    }
    by_k.into_iter()
        .map(|(k, mut itemsets)| {
            itemsets.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
            LargePass { k, itemsets }
        })
        .collect()
}

fn scan(source: &dyn TransactionSource, mut f: impl FnMut(&[ItemId])) -> Result<()> {
    let mut s = source.scan()?;
    while let Some(t) = s.next_slice()? {
        f(t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn db(txns: Vec<Vec<u32>>) -> PartitionedDatabase {
        PartitionedDatabase::build_in_memory(
            1,
            txns.into_iter()
                .map(|t| t.into_iter().map(ItemId).collect()),
        )
        .unwrap()
    }

    #[test]
    fn ancestors_count_without_appearing() {
        // 0 is the parent of 1 and 2.
        let mut b = TaxonomyBuilder::new(3);
        b.edge(1, 0).unwrap();
        b.edge(2, 0).unwrap();
        let tax = b.build().unwrap();
        let database = db(vec![vec![1], vec![2], vec![1, 2], vec![1]]);
        let out = mine_sequential(
            database.partition(0),
            &tax,
            &MiningParams::with_min_support(0.9),
        )
        .unwrap();
        // Every transaction holds a descendant of 0.
        assert_eq!(out.support_of(&[ItemId(0)]), Some(4));
        // {0, 1} would pair an item with its ancestor: never emitted.
        assert_eq!(out.support_of(&[ItemId(0), ItemId(1)]), None);
    }

    #[test]
    fn pairs_across_subtrees_are_found() {
        // Roots 0 and 3; 0 -> {1, 2}, 3 -> {4}.
        let mut b = TaxonomyBuilder::new(5);
        b.edge(1, 0).unwrap();
        b.edge(2, 0).unwrap();
        b.edge(4, 3).unwrap();
        let tax = b.build().unwrap();
        let database = db(vec![vec![1, 4], vec![2, 4], vec![1], vec![4]]);
        let out = mine_sequential(
            database.partition(0),
            &tax,
            &MiningParams::with_min_support(0.5),
        )
        .unwrap();
        // {0, 3} is supported by the two mixed transactions (via
        // ancestors), as is {0, 4}.
        assert_eq!(out.support_of(&[ItemId(0), ItemId(3)]), Some(2));
        assert_eq!(out.support_of(&[ItemId(0), ItemId(4)]), Some(2));
        assert_eq!(out.support_of(&[ItemId(1), ItemId(4)]), None); // count 1
    }

    #[test]
    fn group_passes_canonical_order() {
        let passes = group_passes(vec![
            (iset![2, 5], 4),
            (iset![1, 2, 3], 2),
            (iset![0, 1], 9),
        ]);
        assert_eq!(passes.len(), 2);
        assert_eq!(passes[0].k, 2);
        assert_eq!(passes[0].itemsets, vec![(iset![0, 1], 9), (iset![2, 5], 4)]);
        assert_eq!(passes[1].k, 3);
    }

    #[test]
    fn empty_database_yields_empty_output() {
        let tax = TaxonomyBuilder::new(2).build().unwrap();
        let database = db(vec![]);
        let out = mine_sequential(
            database.partition(0),
            &tax,
            &MiningParams::with_min_support(0.1),
        )
        .unwrap();
        assert_eq!(out.num_large(), 0);
        assert_eq!(out.num_transactions, 0);
    }
}
