//! Obs ↔ `NodeStats` reconciliation for the FP-Growth miner, mirroring
//! the Apriori family's test so both miner families honor one metrics
//! schema.
//!
//! For 1/4/8-node runs over the same generated workload:
//!
//! * **link conservation** — what node `a` records as sent to `b` is
//!   exactly what `b` records as received from `a`;
//! * **ledger agreement** — each node's ledger totals equal its per-link
//!   `cluster.*` counters plus its synthetic `collective.*` charges;
//! * **I/O agreement** — `scan.bytes` / `scan.passes` sum to the
//!   ledger's `io_bytes` / `scan_passes`;
//! * **pass agreement** — `pass.candidates` / `pass.large` match the
//!   assembled report on every node;
//! * **oracle agreement** — the mined rule set (itemsets and support
//!   counts) is exactly what the sequential Cumulate finds, and the
//!   persisted GRUL store is **byte-identical** to the one derived from
//!   the Cumulate oracle at every node count.

use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_fpg::mine_parallel;
use gar_mining::rules::derive_rules;
use gar_mining::sequential::cumulate;
use gar_mining::{MiningOutput, MiningParams, ParallelReport};
use gar_obs::{MetricsSnapshot, Obs};
use gar_serve::RuleStore;
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;

const BIG_MEMORY: u64 = 1 << 30;
const MINSUP: f64 = 0.05;
const SEED: u64 = 13;

fn dataset(seed: u64) -> (Taxonomy, Vec<Vec<ItemId>>) {
    let spec = DatasetSpec {
        name: "fpg-obs-reconcile".into(),
        num_transactions: 350,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 40,
        num_items: 200,
        num_roots: 6,
        fanout: 4.0,
        seed,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

fn run_observed(seed: u64, nodes: usize) -> (ParallelReport, MetricsSnapshot) {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(nodes, txns.into_iter()).unwrap();
    let obs = Obs::enabled();
    let cluster = ClusterConfig::new(nodes, BIG_MEMORY).with_obs(obs.clone());
    let params = MiningParams::with_min_support(MINSUP);
    let report = mine_parallel(&db, &tax, &params, &cluster)
        .unwrap_or_else(|e| panic!("fp-growth @ {nodes} nodes failed: {e}"));
    (report, obs.metrics())
}

fn cumulate_oracle(seed: u64) -> MiningOutput {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
    let params = MiningParams::with_min_support(MINSUP);
    cumulate(db.partition(0), &tax, &params).unwrap()
}

/// Derives rules and persists them as a GRUL store, returning the file
/// bytes — the serving-layer artifact the byte-identity contract is
/// about.
fn rule_store_bytes(output: &MiningOutput, tax: &Taxonomy, path: &std::path::Path) -> Vec<u8> {
    let rules = derive_rules(output, 0.5, Some(tax));
    assert!(!rules.is_empty(), "no rules derived — assertion is vacuous");
    RuleStore::new(rules, tax.clone(), output.num_transactions)
        .save(path)
        .unwrap();
    std::fs::read(path).unwrap()
}

#[test]
fn metrics_reconcile_with_node_stats_at_every_node_count() {
    let oracle = cumulate_oracle(SEED);
    assert!(
        oracle.passes.len() >= 2,
        "oracle mined too little: {} passes",
        oracle.passes.len()
    );
    let dir = std::env::temp_dir().join(format!("gar-fpg-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (tax, _) = dataset(SEED);
    let oracle_store = rule_store_bytes(&oracle, &tax, &dir.join("oracle.grul"));

    for nodes in [1usize, 4, 8] {
        let (report, m) = run_observed(SEED, nodes);
        let ctxt = format!("fp-growth @ {nodes} nodes");

        // Link conservation: sent(a -> b) == received(b <- a).
        for a in 0..nodes {
            for b in 0..nodes {
                for what in ["messages", "bytes"] {
                    let sent = m.counter(&format!("cluster.{what}_sent{{node={a},peer={b}}}"));
                    let recv = m.counter(&format!("cluster.{what}_received{{node={b},peer={a}}}"));
                    assert_eq!(sent, recv, "{ctxt}: {what} {a}->{b} not conserved");
                }
            }
        }

        // Ledger agreement: per-node totals = link sums + collective
        // charges, for all four directions/quantities.
        for n in 0..nodes {
            let ledger = &report.node_totals[n];
            for (what, total) in [
                ("messages_sent", ledger.messages_sent),
                ("bytes_sent", ledger.bytes_sent),
                ("messages_received", ledger.messages_received),
                ("bytes_received", ledger.bytes_received),
            ] {
                let links = m.sum_prefix(&format!("cluster.{what}{{node={n},peer="));
                let coll = m.counter(&format!("collective.{what}{{node={n}}}"));
                assert_eq!(
                    links + coll,
                    total,
                    "{ctxt}: node {n} {what}: links {links} + collective {coll} != ledger {total}"
                );
            }

            // I/O agreement (the key prefix stops at `pass=` so `node=1`
            // cannot match `node=10`).
            let scan_bytes = m.sum_prefix(&format!("scan.bytes{{node={n},pass="));
            assert_eq!(scan_bytes, ledger.io_bytes, "{ctxt}: node {n} io_bytes");
            let scan_passes = m.sum_prefix(&format!("scan.passes{{node={n},pass="));
            assert_eq!(
                scan_passes, ledger.scan_passes,
                "{ctxt}: node {n} scan_passes"
            );
        }

        // Pass agreement: the report's per-pass candidate and large
        // counts are what every node recorded.
        assert_eq!(report.pass_reports.len(), 2, "{ctxt}: logical pass count");
        for p in &report.pass_reports {
            for n in 0..nodes {
                let cands = m.counter(&format!("pass.candidates{{node={n},pass={}}}", p.k));
                assert_eq!(
                    cands, p.num_candidates as u64,
                    "{ctxt}: pass {} candidates on node {n}",
                    p.k
                );
                let large = m.counter(&format!("pass.large{{node={n},pass={}}}", p.k));
                assert_eq!(
                    large, p.num_large as u64,
                    "{ctxt}: pass {} large on node {n}",
                    p.k
                );
            }
        }

        // Pass 2's candidates are projections — one per large singleton —
        // and the per-task counter must account for every one of them,
        // spread across the owning nodes.
        let projections = report.pass_reports[1].num_candidates as u64;
        assert_eq!(
            projections, report.pass_reports[0].num_large as u64,
            "{ctxt}: projections != |L1|"
        );
        let mined: u64 = m.sum_prefix("counter.fptree.projections{");
        assert_eq!(mined, projections, "{ctxt}: projection tasks mined");

        // The FP-tree structure counters are live on every node.
        for n in 0..nodes {
            assert!(
                m.counter(&format!("counter.fptree.nodes{{node={n},pass=2}}")) > 0,
                "{ctxt}: node {n} recorded no fptree nodes"
            );
            assert!(
                m.counter(&format!("counter.fptree.inserts{{node={n},pass=2}}")) > 0,
                "{ctxt}: node {n} recorded no fptree inserts"
            );
        }

        // Oracle agreement: the full mined rule set — every itemset with
        // its support count, pass for pass — is the Cumulate oracle's.
        assert_eq!(
            report.output.passes.len(),
            oracle.passes.len(),
            "{ctxt}: pass structure diverged from Cumulate"
        );
        for (got, want) in report.output.passes.iter().zip(&oracle.passes) {
            assert_eq!(got.k, want.k, "{ctxt}: pass k");
            assert_eq!(
                got.itemsets, want.itemsets,
                "{ctxt}: pass {} rule set diverged from Cumulate",
                got.k
            );
        }

        // The serving artifact too: the GRUL store persisted from this
        // run is byte-for-byte the one the Cumulate oracle produces, so
        // gar-serve consumes FP-Growth output with zero changes.
        let store = rule_store_bytes(&report.output, &tax, &dir.join(format!("fpg-{nodes}.grul")));
        assert_eq!(
            store, oracle_store,
            "{ctxt}: GRUL store bytes diverged from the Cumulate oracle's"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A disabled handle must record nothing — the zero-overhead contract
/// holds for the FP-Growth driver too.
#[test]
fn disabled_obs_records_nothing() {
    let (tax, txns) = dataset(SEED);
    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    let obs = Obs::disabled();
    let cluster = ClusterConfig::new(4, BIG_MEMORY).with_obs(obs.clone());
    let params = MiningParams::with_min_support(MINSUP);
    mine_parallel(&db, &tax, &params, &cluster).unwrap();
    let m = obs.metrics();
    assert!(m.counters.is_empty());
    assert!(m.histograms.is_empty());
}
