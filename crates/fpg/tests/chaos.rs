//! Seeded chaos for the FP-Growth miner: the recovery unit is the
//! *projection*, and the headline claim is end-to-end — after a node
//! dies mid-projection and the survivors recover in degraded mode, the
//! **rule store file persisted from the recovered run is byte-identical**
//! to the fault-free one.
//!
//! Projection tasks announce themselves via `set_pass(3 + t)`, so a
//! `panic@nXpY` coordinate with `Y >= 3` kills node X inside its
//! `(Y-3)`rd projection — after the base exchange, while results are
//! streaming to the coordinator's checkpoint.

use gar_cluster::{ClusterConfig, FaultOp, FaultPlan};
use gar_fpg::{mine_parallel, mine_parallel_with, owner_of, MineOptions};
use gar_mining::rules::derive_rules;
use gar_mining::{MiningOutput, MiningParams};
use gar_serve::RuleStore;
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::{Error, ItemId};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

const BIG_MEMORY: u64 = 1 << 30;
const NODES: usize = 3;
const MIN_CONFIDENCE: f64 = 0.5;

fn dataset() -> (Taxonomy, Vec<Vec<ItemId>>) {
    let spec = gar_datagen::DatasetSpec {
        name: "fpg-chaos".into(),
        num_transactions: 300,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 30,
        num_items: 150,
        num_roots: 15,
        fanout: 4.0,
        seed: 1998,
    };
    let mut g = gar_datagen::TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

fn db(data: &(Taxonomy, Vec<Vec<ItemId>>)) -> PartitionedDatabase {
    PartitionedDatabase::build_in_memory(NODES, data.1.iter().cloned()).unwrap()
}

fn params() -> MiningParams {
    MiningParams::with_min_support(0.05)
}

/// Renders only the logical output — every large itemset with its
/// global support count.
fn rendered(output: &MiningOutput) -> String {
    let mut out = String::new();
    for pass in &output.passes {
        writeln!(out, "pass k={}", pass.k).unwrap();
        for (set, count) in &pass.itemsets {
            writeln!(out, "  {set} x{count}").unwrap();
        }
    }
    out
}

/// Derives rules from a mining output and persists them as a rule store
/// file — the serve layer's on-disk artifact — returning its bytes.
fn rule_store_bytes(output: &MiningOutput, tax: &Taxonomy, path: &Path) -> Vec<u8> {
    let rules = derive_rules(output, MIN_CONFIDENCE, Some(tax));
    assert!(!rules.is_empty(), "no rules derived — assertion is vacuous");
    let store = RuleStore::new(rules, tax.clone(), output.num_transactions);
    store.save(path).unwrap();
    std::fs::read(path).unwrap()
}

fn baseline(data: &(Taxonomy, Vec<Vec<ItemId>>)) -> MiningOutput {
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY);
    let report = mine_parallel(&db(data), &data.0, &params(), &cluster).unwrap();
    let s = rendered(&report.output);
    assert!(s.lines().count() > 5, "baseline suspiciously small:\n{s}");
    report.output
}

/// A non-coordinator node that owns at least two projection tasks —
/// ownership hashes the hierarchy root, so some nodes may own none and
/// the victim must be picked from the fault-free run's pass 1.
fn victim_node(clean: &MiningOutput, tax: &Taxonomy) -> usize {
    let mut owned = vec![0usize; NODES];
    for (set, _) in &clean.passes[0].itemsets {
        owned[owner_of(set.items()[0], tax, NODES)] += 1;
    }
    (1..NODES)
        .find(|&n| owned[n] >= 2)
        .unwrap_or_else(|| panic!("no non-coordinator owns 2+ projections: {owned:?}"))
}

/// A node death mid-projection is recovered in degraded mode and the
/// rule store persisted from the recovered output is byte-identical to
/// the fault-free store.
#[test]
fn mid_projection_panic_recovers_with_identical_rule_store() {
    let data = dataset();
    let clean = baseline(&data);
    let dir = std::env::temp_dir().join(format!("gar-fpg-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let clean_store = rule_store_bytes(&clean, &data.0, &dir.join("clean.grul"));

    // Pass 3 + t is a node's (t)th projection task; kill the victim in
    // its second one, after the exchange has scattered its base paths.
    let victim = victim_node(&clean, &data.0);
    let plan = FaultPlan::with_seed(5).schedule(victim, 4, FaultOp::Panic);
    let spec = plan.render();
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
    let opts = MineOptions {
        max_node_failures: 1,
        ..MineOptions::default()
    };
    let report = mine_parallel_with(&db(&data), &data.0, &params(), &cluster, &opts)
        .unwrap_or_else(|e| panic!("recovery under `{spec}` failed: {e}"));

    assert_eq!(
        rendered(&report.output),
        rendered(&clean),
        "degraded-mode output diverged under `{spec}`"
    );
    assert_eq!(report.degraded.len(), 1, "expected one degraded-mode note");
    assert!(
        report.degraded[0].contains(&format!("node {victim}")),
        "note should name node {victim}: {}",
        report.degraded[0]
    );
    // The completing attempt ran on the survivors, replaying pass 1 from
    // the in-memory checkpoint.
    assert_eq!(report.num_nodes, NODES - 1);
    assert!(
        report.pass_reports[0].restored,
        "pass 1 should have been restored from the checkpoint"
    );

    // The headline: the *persisted serving artifact* is byte-identical.
    let recovered_store = rule_store_bytes(&report.output, &data.0, &dir.join("recovered.grul"));
    assert_eq!(
        clean_store, recovered_store,
        "rule store bytes diverged after degraded recovery under `{spec}`"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Without a failure budget the same schedule is a hard error naming
/// the dead node — never a hang, never a wrong answer.
#[test]
fn mid_projection_panic_without_budget_is_a_node_failure() {
    let data = dataset();
    let victim = victim_node(&baseline(&data), &data.0);
    let plan = FaultPlan::with_seed(6).schedule(victim, 4, FaultOp::Panic);
    let spec = plan.render();
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
    let err = mine_parallel_with(
        &db(&data),
        &data.0,
        &params(),
        &cluster,
        &MineOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::NodeFailure { node, .. } if node == victim),
        "`{spec}` should fail naming node {victim}, got: {err}"
    );
}

/// Duplicated, delayed, and transiently-failing I/O are absorbed
/// invisibly: the output is byte-identical to the fault-free run.
#[test]
fn tolerated_fault_schedules_preserve_the_output() {
    let data = dataset();
    let clean = rendered(&baseline(&data));
    let mut injected_total = 0u64;
    for seed in 0..3u64 {
        let plan = FaultPlan {
            p_dup: 0.05,
            p_delay: 0.02,
            p_scan_error: 0.05,
            delay: Duration::from_millis(1),
            ..FaultPlan::with_seed(seed)
        };
        let spec = plan.render();
        let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
        let report = mine_parallel_with(
            &db(&data),
            &data.0,
            &params(),
            &cluster,
            &MineOptions::default(),
        )
        .unwrap_or_else(|e| panic!("fp-growth under `{spec}` failed: {e}"));
        assert_eq!(
            rendered(&report.output),
            clean,
            "output diverged under tolerated faults `{spec}`"
        );
        assert!(
            report.degraded.is_empty(),
            "`{spec}` should not need degraded mode"
        );
        injected_total += report
            .node_totals
            .iter()
            .map(|s| s.faults_injected)
            .sum::<u64>();
    }
    assert!(injected_total > 0, "no seed injected anything — vacuous");
}

/// Disk-checkpoint round trip at projection granularity: a completed
/// run resumes from `fpg.ckpt` without redoing the mining, and a
/// damaged checkpoint falls back to `.prev` — the answer never changes.
#[test]
fn resume_from_disk_checkpoint_is_byte_identical() {
    let data = dataset();
    let clean = rendered(&baseline(&data));
    let dir = std::env::temp_dir().join(format!("gar-fpg-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let opts = MineOptions {
        checkpoint_dir: Some(dir.clone()),
        ..MineOptions::default()
    };
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY);
    let first = mine_parallel_with(&db(&data), &data.0, &params(), &cluster, &opts).unwrap();
    assert_eq!(rendered(&first.output), clean);

    // Resuming the complete run replays pass 1 and every projection.
    let opts = MineOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        ..MineOptions::default()
    };
    let resumed = mine_parallel_with(&db(&data), &data.0, &params(), &cluster, &opts).unwrap();
    assert_eq!(
        rendered(&resumed.output),
        clean,
        "resumed output diverged from the fault-free run"
    );
    assert!(
        resumed.pass_reports[0].restored,
        "resume should restore pass 1 from disk"
    );
    assert!(
        resumed.pass_reports[0]
            .node_deltas
            .iter()
            .all(|d| d.scan_passes == 0),
        "restored pass 1 redid disk work"
    );

    // A truncated checkpoint falls back to `.prev` — still the right
    // answer.
    let ckpt = dir.join("fpg.ckpt");
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    let after_damage = mine_parallel_with(&db(&data), &data.0, &params(), &cluster, &opts).unwrap();
    assert_eq!(
        rendered(&after_damage.output),
        clean,
        "resume after checkpoint damage diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}
