//! Differential equivalence: FP-Growth (sequential and parallel, any
//! node count) against the Cumulate oracle and the brute-force oracle.
//!
//! FP-Growth counts support over ancestor-extended transactions and
//! drops hierarchy-related items at growth time, so its output must be
//! *identical* — itemsets and support counts, pass for pass — to what
//! the Apriori-family Cumulate mines from the same data.

use gar_cluster::ClusterConfig;
use gar_fpg::{mine_parallel, mine_sequential};
use gar_mining::oracle::mine_naive;
use gar_mining::sequential::cumulate;
use gar_mining::{MiningOutput, MiningParams};
use gar_storage::{FlatPartition, PartitionedDatabase};
use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BIG_MEMORY: u64 = 1 << 30;

struct Scenario {
    tax: Taxonomy,
    txns: Vec<Vec<ItemId>>,
    min_support: f64,
}

/// A randomized taxonomy plus transaction set, seeded so every failure
/// reproduces from its printed seed.
fn scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_roots = rng.gen_range(2u32..5);
    let num_items = rng.gen_range(12u32..40).max(num_roots + 1);
    let tax = synthesize(&SynthTaxonomyConfig {
        num_items,
        num_roots,
        fanout: rng.gen_range(1.5f64..5.0),
        seed: rng.gen_range(0u64..10_000),
    });
    let num_txns = rng.gen_range(4usize..40);
    let txns: Vec<Vec<ItemId>> = (0..num_txns)
        .map(|_| {
            let len = rng.gen_range(1usize..6);
            let mut t: Vec<ItemId> = (0..len)
                .map(|_| ItemId(rng.gen_range(0..tax.num_items())))
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();
    Scenario {
        tax,
        txns,
        min_support: 1.0 / f64::from(rng.gen_range(2u32..6)),
    }
}

/// Round-trips a transaction set through the `GFP1` on-disk flat
/// format: write, reopen, delete the file (`open` loads it fully).
fn persisted_partition(txns: &[Vec<ItemId>], tag: &str) -> FlatPartition {
    let path =
        std::env::temp_dir().join(format!("gar-fpg-oracle-{}-{tag}.gfp1", std::process::id()));
    FlatPartition::from_transactions(txns)
        .write_to(&path)
        .unwrap();
    let part = FlatPartition::open(&path).unwrap();
    std::fs::remove_file(&path).ok();
    part
}

fn assert_outputs_equal(a: &MiningOutput, b: &MiningOutput, ctxt: &str) {
    assert_eq!(
        a.passes.len(),
        b.passes.len(),
        "{ctxt}: pass counts differ ({} vs {})",
        a.passes.len(),
        b.passes.len()
    );
    for (pa, pb) in a.passes.iter().zip(&b.passes) {
        assert_eq!(pa.k, pb.k, "{ctxt}: pass k differs");
        assert_eq!(
            pa.itemsets, pb.itemsets,
            "{ctxt}: pass {} itemsets differ",
            pa.k
        );
    }
}

#[test]
fn sequential_fp_growth_matches_both_oracles() {
    for seed in 0..40u64 {
        let s = scenario(seed);
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let cum = cumulate(db.partition(0), &s.tax, &params).unwrap();
        let fpg = mine_sequential(db.partition(0), &s.tax, &params).unwrap();
        assert_outputs_equal(&naive, &fpg, &format!("seed {seed} vs naive"));
        assert_outputs_equal(&cum, &fpg, &format!("seed {seed} vs cumulate"));

        // The on-disk GFP1 flat format must be invisible to the miners:
        // both families agree with the oracle on the reopened partition.
        let part = persisted_partition(&s.txns, &format!("seq-{seed}"));
        let fpg_disk = mine_sequential(&part, &s.tax, &params).unwrap();
        let cum_disk = cumulate(&part, &s.tax, &params).unwrap();
        assert_outputs_equal(
            &naive,
            &fpg_disk,
            &format!("seed {seed} persisted fpg vs naive"),
        );
        assert_outputs_equal(
            &naive,
            &cum_disk,
            &format!("seed {seed} persisted cumulate vs naive"),
        );
    }
}

#[test]
fn sequential_fp_growth_honors_max_pass() {
    for seed in 0..20u64 {
        let s = scenario(seed);
        for max_pass in [1usize, 2, 3] {
            let params = MiningParams::with_min_support(s.min_support).max_pass(max_pass);
            let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
            let cum = cumulate(db.partition(0), &s.tax, &params).unwrap();
            let fpg = mine_sequential(db.partition(0), &s.tax, &params).unwrap();
            assert_outputs_equal(&cum, &fpg, &format!("seed {seed} max_pass {max_pass}"));
        }
    }
}

#[test]
fn parallel_fp_growth_matches_cumulate_at_any_node_count() {
    for seed in 0..15u64 {
        let s = scenario(seed);
        let params = MiningParams::with_min_support(s.min_support);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let cum = cumulate(db.partition(0), &s.tax, &params).unwrap();
        for nodes in [1usize, 2, 4] {
            let db =
                PartitionedDatabase::build_in_memory(nodes, s.txns.clone().into_iter()).unwrap();
            let cluster = ClusterConfig::new(nodes, BIG_MEMORY);
            let rep = mine_parallel(&db, &s.tax, &params, &cluster)
                .unwrap_or_else(|e| panic!("seed {seed} @ {nodes} nodes failed: {e}"));
            assert_outputs_equal(&cum, &rep.output, &format!("seed {seed} @ {nodes} nodes"));
            assert_eq!(rep.output.num_transactions, cum.num_transactions);
            assert_eq!(rep.output.min_support_count, cum.min_support_count);
        }
    }
}

#[test]
fn parallel_fp_growth_honors_max_pass() {
    for seed in 0..10u64 {
        let s = scenario(seed);
        let params = MiningParams::with_min_support(s.min_support).max_pass(2);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let cum = cumulate(db.partition(0), &s.tax, &params).unwrap();
        let db = PartitionedDatabase::build_in_memory(3, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(3, BIG_MEMORY);
        let rep = mine_parallel(&db, &s.tax, &params, &cluster).unwrap();
        assert_outputs_equal(&cum, &rep.output, &format!("seed {seed} max_pass 2"));
    }
}

#[test]
fn empty_and_degenerate_inputs() {
    let tax = synthesize(&SynthTaxonomyConfig {
        num_items: 10,
        num_roots: 2,
        fanout: 3.0,
        seed: 7,
    });
    let params = MiningParams::with_min_support(0.5);

    // No transactions at all.
    let db = PartitionedDatabase::build_in_memory(1, std::iter::empty::<Vec<ItemId>>()).unwrap();
    let out = mine_sequential(db.partition(0), &tax, &params).unwrap();
    assert!(out.passes.is_empty());

    // Transactions but nothing large.
    let txns: Vec<Vec<ItemId>> = vec![vec![ItemId(3)], vec![ItemId(4)], vec![ItemId(5)]];
    let db = PartitionedDatabase::build_in_memory(2, txns.into_iter()).unwrap();
    let params = MiningParams::with_min_support(0.99);
    let rep = mine_parallel(&db, &tax, &params, &ClusterConfig::new(2, BIG_MEMORY)).unwrap();
    let db1 = PartitionedDatabase::build_in_memory(
        1,
        vec![vec![ItemId(3)], vec![ItemId(4)], vec![ItemId(5)]].into_iter(),
    )
    .unwrap();
    let cum = cumulate(db1.partition(0), &tax, &params).unwrap();
    assert_outputs_equal(&cum, &rep.output, "nothing-large");
}
