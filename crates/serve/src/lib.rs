//! `gar-serve` — the serving layer: everything between a mined rule set
//! and a production query answer.
//!
//! * [`store`] — the persisted `GRUL` rule store (canonical order,
//!   embedded taxonomy, trailing checksum, atomic writes).
//! * [`index`] — a taxonomy-aware inverted index: item → rules whose
//!   antecedent/consequent contain the item *or any ancestor*.
//! * [`engine`] — basket scoring: top-k consequents by
//!   confidence×support with serve-time ancestor-redundancy
//!   suppression, sharded by the same root-item hash as H-HPGM.
//! * [`protocol`] — the length-prefixed, checksummed wire protocol
//!   (every frame read goes through [`protocol::MAX_FRAME_BYTES`]).
//! * [`server`] — the sharded concurrent TCP server: a single
//!   non-blocking readiness event loop (see [`netpoll`]) multiplexing
//!   every connection, pipelined + batched query frames, shard-affinity
//!   routing with an optional epoch-keyed hot-answer cache, supervised
//!   shard workers (panic isolation + bounded restarts), epoch hot-swap
//!   of the rule store ([`epoch::EpochCell`]), bounded queues with
//!   overload shedding, per-shard observability, deadline-bounded
//!   shard collection, and deterministic serve-side fault injection.
//! * [`netpoll`] — the hand-rolled `poll(2)` readiness shim the event
//!   loop blocks in (offline-deps: no `libc`/`mio`).
//! * [`epoch`] — the epoch-versioned hot-swap cell (model-checked
//!   under `--cfg gar_loom` via [`sync`]).
//! * [`client`] — the blocking client (connect retries via
//!   `gar-cluster`'s `RetryPolicy`, optional read deadline,
//!   transparent reconnect-and-retry-once for idempotent queries),
//!   plus the in-process path [`engine::Catalog::query`] for
//!   embedders.

// Under `--cfg gar_loom` (see `cargo xtask loom`) the cluster fault /
// retry machinery is stripped, so the TCP client and server are
// stripped with it; the epoch cell (the part worth model checking)
// and the pure store/index/engine stack stay available.
#[cfg(not(gar_loom))]
pub mod client;
pub mod engine;
pub mod epoch;
pub mod index;
#[cfg(not(gar_loom))]
pub mod netpoll;
pub mod protocol;
#[cfg(not(gar_loom))]
pub mod server;
pub mod store;
pub(crate) mod sync;

#[cfg(not(gar_loom))]
pub use client::{BatchReply, Client, QueryReply};
pub use engine::{Catalog, Recommendation, Route};
pub use epoch::{Epoch, EpochCell};
#[cfg(not(gar_loom))]
pub use server::{serve, ReloadHandle, Server, ServerConfig};
pub use store::RuleStore;

/// Shared fixtures for the unit tests of this crate.
#[cfg(test)]
pub(crate) mod testutil {
    use gar_mining::rules::Rule;
    use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
    use gar_types::Itemset;

    /// The [SA95] example hierarchy:
    /// clothes(0) -> outerwear(1) -> {jackets(3), ski pants(4)};
    /// clothes(0) -> shirts(2); footwear(5) -> {shoes(6), boots(7)}.
    pub fn sa95_taxonomy() -> Taxonomy {
        let mut b = TaxonomyBuilder::new(8);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
            b.edge(c, p).unwrap();
        }
        b.build().unwrap()
    }

    /// A rule over a 6-transaction database.
    pub fn rule(a: Itemset, c: Itemset, sup: u64, conf: f64) -> Rule {
        Rule {
            antecedent: a,
            consequent: c,
            support_count: sup,
            support: sup as f64 / 6.0,
            confidence: conf,
        }
    }
}
