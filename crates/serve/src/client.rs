//! The blocking query client.
//!
//! Connects with `gar-cluster`'s [`RetryPolicy`] (the server may still
//! be binding when a fresh pipeline reaches the query step), speaks the
//! framed protocol, and optionally bounds every read/write with a
//! socket deadline that surfaces as the workspace's retryable
//! [`Error::Timeout`]. For embedders that hold the rule store in
//! process, `Catalog::query` answers without a socket — this client is
//! the remote twin of that call.

use crate::engine::Recommendation;
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use gar_cluster::RetryPolicy;
use gar_types::{Error, ItemId, Result};
use std::net::TcpStream;
use std::time::Duration;

/// A connected client; one request in flight at a time.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`, retrying transient failures per `retry`.
    /// `deadline`, when set, bounds every subsequent read and write.
    pub fn connect(addr: &str, deadline: Option<Duration>, retry: &RetryPolicy) -> Result<Client> {
        let stream = retry.run(|| {
            TcpStream::connect(addr).map_err(|e| Error::io(format!("connecting to {addr}"), e))
        })?;
        stream
            .set_read_timeout(deadline)
            .and_then(|()| stream.set_write_timeout(deadline))
            .map_err(|e| Error::io("setting socket deadline", e))?;
        // Requests are a few small writes; Nagle + delayed ACK would
        // add ~40 ms to every round trip.
        drop(stream.set_nodelay(true));
        Ok(Client { stream })
    }

    /// Sends one query and decodes the recommendations.
    pub fn query(&mut self, basket: &[ItemId], top_k: u32) -> Result<Vec<Recommendation>> {
        let payload = self.query_raw(basket, top_k)?;
        match decode_response(&payload)? {
            Response::Results(recs) => Ok(recs),
            Response::Error(msg) => Err(Error::Protocol(format!("server error: {msg}"))),
            Response::ShutdownAck => {
                Err(Error::Protocol("unexpected shutdown-ack to a query".into()))
            }
        }
    }

    /// Sends one query and returns the raw response payload bytes.
    /// Deterministic server answers make these byte-comparable across
    /// runs — the load generator's transcript is built from them.
    pub fn query_raw(&mut self, basket: &[ItemId], top_k: u32) -> Result<Vec<u8>> {
        let req = Request::Query {
            basket: basket.to_vec(),
            top_k,
        };
        write_frame(&mut self.stream, &encode_request(&req))?;
        self.read_response_payload()
    }

    /// Asks the server to stop; returns once the ack arrives.
    pub fn shutdown(mut self) -> Result<()> {
        write_frame(&mut self.stream, &encode_request(&Request::Shutdown))?;
        let payload = self.read_response_payload()?;
        match decode_response(&payload)? {
            Response::ShutdownAck => Ok(()),
            other => Err(Error::Protocol(format!(
                "expected shutdown-ack, got {other:?}"
            ))),
        }
    }

    fn read_response_payload(&mut self) -> Result<Vec<u8>> {
        match read_frame(&mut self.stream)? {
            Some(p) => Ok(p),
            None => Err(Error::Protocol(
                "server closed the connection mid-request".into(),
            )),
        }
    }
}
