//! The blocking query client.
//!
//! Connects with `gar-cluster`'s [`RetryPolicy`] (the server may still
//! be binding when a fresh pipeline reaches the query step), speaks the
//! framed protocol, and optionally bounds every read/write with a
//! socket deadline that surfaces as the workspace's retryable
//! [`Error::Timeout`]. For embedders that hold the rule store in
//! process, `Catalog::query` answers without a socket — this client is
//! the remote twin of that call.
//!
//! Mid-query resilience: queries are idempotent, so on a *retryable*
//! failure ([`Error::is_retryable`]: transient I/O — including the
//! server resetting the connection — or a deadline expiry) the client
//! transparently reconnects under its [`RetryPolicy`] and retries the
//! query exactly once before surfacing the error. Non-idempotent admin
//! frames (`Reload`, `Shutdown`) are never retried: a reload that died
//! mid-flight may or may not have swapped, and the caller must decide.

use crate::engine::Recommendation;
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, BatchAnswer, Request, Response,
    PROTOCOL_VERSION,
};
use gar_cluster::RetryPolicy;
use gar_types::{Error, ItemId, Result};
use std::net::TcpStream;
use std::time::Duration;

/// A connected client; one request in flight at a time.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addr: String,
    deadline: Option<Duration>,
    retry: RetryPolicy,
}

/// A v2 query outcome: either an epoch-stamped (possibly degraded)
/// answer or a typed shed the caller should back off from.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The scored recommendations, best first, with provenance.
    Results {
        /// Epoch of the store snapshot that answered.
        epoch: u64,
        /// Shards that contributed nothing (0 = complete answer).
        shards_missing: u32,
        /// The recommendations.
        recs: Vec<Recommendation>,
    },
    /// Shed under overload; retry after the suggested backoff.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after_ms: u32,
    },
}

/// A batched query outcome: one answer per submitted basket, in
/// submission order, all scored against a single epoch — or one typed
/// shed covering the whole batch (admission is all-or-nothing).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchReply {
    /// Per-basket answers, index-aligned with the request's baskets.
    Results {
        /// Epoch of the store snapshot that answered every basket.
        epoch: u64,
        /// One answer per basket, in submission order.
        answers: Vec<BatchAnswer>,
    },
    /// The whole batch was shed; retry after the suggested backoff.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after_ms: u32,
    },
}

fn open(addr: &str, deadline: Option<Duration>, retry: &RetryPolicy) -> Result<TcpStream> {
    let stream = retry.run(|| {
        TcpStream::connect(addr).map_err(|e| Error::io(format!("connecting to {addr}"), e))
    })?;
    stream
        .set_read_timeout(deadline)
        .and_then(|()| stream.set_write_timeout(deadline))
        .map_err(|e| Error::io("setting socket deadline", e))?;
    // Requests are a few small writes; Nagle + delayed ACK would
    // add ~40 ms to every round trip.
    drop(stream.set_nodelay(true));
    Ok(stream)
}

impl Client {
    /// Connects to `addr`, retrying transient failures per `retry`.
    /// `deadline`, when set, bounds every subsequent read and write.
    pub fn connect(addr: &str, deadline: Option<Duration>, retry: &RetryPolicy) -> Result<Client> {
        let stream = open(addr, deadline, retry)?;
        Ok(Client {
            stream,
            addr: addr.to_string(),
            deadline,
            retry: *retry,
        })
    }

    /// Sends one query and decodes the recommendations.
    pub fn query(&mut self, basket: &[ItemId], top_k: u32) -> Result<Vec<Recommendation>> {
        let payload = self.query_raw(basket, top_k)?;
        match decode_response(&payload)? {
            Response::Results(recs) => Ok(recs),
            other => Err(unexpected("results", other)),
        }
    }

    /// Sends one query and returns the raw response payload bytes.
    /// Deterministic server answers make these byte-comparable across
    /// runs — the load generator's transcript is built from them.
    pub fn query_raw(&mut self, basket: &[ItemId], top_k: u32) -> Result<Vec<u8>> {
        let req = encode_request(&Request::Query {
            basket: basket.to_vec(),
            top_k,
        });
        self.round_trip(&req)
    }

    /// Sends one v2 query (epoch-stamped, budget-aware) and decodes
    /// the reply.
    pub fn query_v2(
        &mut self,
        basket: &[ItemId],
        top_k: u32,
        budget_ms: u32,
    ) -> Result<QueryReply> {
        let payload = self.query_v2_raw(basket, top_k, budget_ms)?;
        match decode_response(&payload)? {
            Response::ResultsV2 {
                epoch,
                shards_missing,
                recs,
            } => Ok(QueryReply::Results {
                epoch,
                shards_missing,
                recs,
            }),
            Response::Overloaded { retry_after_ms } => {
                Ok(QueryReply::Overloaded { retry_after_ms })
            }
            other => Err(unexpected("v2 results", other)),
        }
    }

    /// Raw-payload twin of [`Client::query_v2`] for transcripts.
    pub fn query_v2_raw(
        &mut self,
        basket: &[ItemId],
        top_k: u32,
        budget_ms: u32,
    ) -> Result<Vec<u8>> {
        let req = encode_request(&Request::QueryV2 {
            version: PROTOCOL_VERSION,
            basket: basket.to_vec(),
            top_k,
            budget_ms,
        });
        self.round_trip(&req)
    }

    /// Sends N baskets in one frame and decodes the per-basket
    /// answers. One round trip scores the whole batch, amortizing
    /// framing, syscalls, and shard-queue overhead across it.
    pub fn query_batch(
        &mut self,
        baskets: &[Vec<ItemId>],
        top_k: u32,
        budget_ms: u32,
    ) -> Result<BatchReply> {
        let payload = self.query_batch_raw(baskets, top_k, budget_ms)?;
        match decode_response(&payload)? {
            Response::ResultsBatch { epoch, answers } => Ok(BatchReply::Results { epoch, answers }),
            Response::Overloaded { retry_after_ms } => {
                Ok(BatchReply::Overloaded { retry_after_ms })
            }
            other => Err(unexpected("batch results", other)),
        }
    }

    /// Raw-payload twin of [`Client::query_batch`] for transcripts.
    pub fn query_batch_raw(
        &mut self,
        baskets: &[Vec<ItemId>],
        top_k: u32,
        budget_ms: u32,
    ) -> Result<Vec<u8>> {
        let req = encode_request(&Request::QueryBatch {
            version: PROTOCOL_VERSION,
            baskets: baskets.to_vec(),
            top_k,
            budget_ms,
        });
        self.round_trip(&req)
    }

    /// Asks the server to hot-swap in the store file at `path`
    /// (server-side path); returns the new epoch. Not retried: a
    /// connection lost mid-reload leaves the outcome unknown.
    pub fn reload(&mut self, path: &str) -> Result<u64> {
        let req = encode_request(&Request::Reload {
            version: PROTOCOL_VERSION,
            path: path.to_string(),
        });
        let payload = self.round_trip_once(&req)?;
        match decode_response(&payload)? {
            Response::ReloadAck { epoch } => Ok(epoch),
            other => Err(unexpected("reload-ack", other)),
        }
    }

    /// Asks the server to stop; returns once the ack arrives.
    pub fn shutdown(mut self) -> Result<()> {
        write_frame(&mut self.stream, &encode_request(&Request::Shutdown))?;
        let payload = self.read_response_payload()?;
        match decode_response(&payload)? {
            Response::ShutdownAck => Ok(()),
            other => Err(Error::Protocol(format!(
                "expected shutdown-ack, got {other:?}"
            ))),
        }
    }

    /// One idempotent request round trip with the transparent
    /// reconnect-and-retry-once policy for retryable failures.
    fn round_trip(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        match self.round_trip_once(request) {
            Err(e) if e.is_retryable() => {
                self.stream = open(&self.addr, self.deadline, &self.retry)?;
                self.round_trip_once(request)
            }
            other => other,
        }
    }

    fn round_trip_once(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        write_frame(&mut self.stream, request)?;
        self.read_response_payload()
    }

    fn read_response_payload(&mut self) -> Result<Vec<u8>> {
        match read_frame(&mut self.stream)? {
            // A clean close where a response was owed is a transient
            // server-side condition (reset, restart): retryable I/O,
            // not a protocol violation.
            Some(p) => Ok(p),
            None => Err(Error::io(
                "server closed the connection mid-request",
                std::io::Error::from(std::io::ErrorKind::UnexpectedEof),
            )),
        }
    }
}

fn unexpected(wanted: &str, got: Response) -> Error {
    match got {
        Response::Error(msg) => Error::Protocol(format!("server error: {msg}")),
        Response::VersionMismatch { server, client } => Error::Protocol(format!(
            "protocol version mismatch: server speaks v{server}, client sent v{client}"
        )),
        other => Error::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
