//! The serving wire protocol: tiny, length-prefixed, checksummed.
//!
//! A **frame** is `u32 payload-length | payload | u64 FxHash checksum`
//! (little-endian, checksum over the payload bytes). The length is
//! validated against [`MAX_FRAME_BYTES`] *before* any allocation, on
//! both the read and the write path — an adversarial or corrupt length
//! field can neither balloon memory nor panic. Every frame read in this
//! crate goes through [`read_frame`]; the `no-raw-net` lint enforces it.
//!
//! The **payload** is a tag byte plus a body:
//!
//! | tag  | message                                              |
//! |------|------------------------------------------------------|
//! | 0x01 | `Query` — `u32 top_k`, `u32 n`, `n × u32` item ids   |
//! | 0x02 | `Results` — `u32 n`, then per recommendation the     |
//! |      | consequent (`u32 m`, `m × u32`), `u64` support,      |
//! |      | `f64` confidence bits, `f64` score bits              |
//! | 0x03 | `Error` — `u32` length + UTF-8 message               |
//! | 0x04 | `Shutdown` (no body)                                 |
//! | 0x05 | `ShutdownAck` (no body)                              |
//! | 0x06 | `QueryV2` — `u16 version`, `u32 top_k`,              |
//! |      | `u32 budget_ms`, `u32 n`, `n × u32` item ids         |
//! | 0x07 | `ResultsV2` — `u64 epoch`, `u32 shards_missing`,     |
//! |      | then a `Results` body                                |
//! | 0x08 | `Reload` — `u16 version`, `u32` length + UTF-8 path  |
//! | 0x09 | `ReloadAck` — `u64 epoch`                            |
//! | 0x0A | `Overloaded` — `u32 retry_after_ms`                  |
//! | 0x0B | `VersionMismatch` — `u16 server`, `u16 client`       |
//!
//! | 0x0C | `QueryBatch` — `u16 version`, `u32 top_k`,           |
//! |      | `u32 budget_ms`, `u32 count`, then `count` baskets   |
//! |      | (`u32 n`, `n × u32` item ids each)                   |
//! | 0x0D | `ResultsBatch` — `u64 epoch`, `u32 count`, then per  |
//! |      | basket `u32 shards_missing` + a `Results` body       |
//!
//! Tags 0x01–0x05 are the frozen **v1** surface: their bytes are
//! identical to the pre-epoch protocol, so fault-free v1 transcripts
//! stay byte-comparable across this change; tags 0x06–0x0B are the
//! frozen first-generation v2 surface, pinned the same way.
//! `QueryBatch` scores up to [`MAX_BATCH`] baskets in one round trip
//! against **one** epoch snapshot; answer `i` of a `ResultsBatch` is
//! exactly what the same basket would get from its own `QueryV2`, so
//! batching changes throughput, never answers. The v2 tags carry an
//! explicit [`PROTOCOL_VERSION`]; a server that sees a v2 frame with a
//! version it does not speak answers a typed `VersionMismatch` frame
//! and keeps the connection open rather than hanging up on old (or too
//! new) clients.
//!
//! Malformed payloads are [`Error::Protocol`]; a failed frame checksum
//! or a mid-frame disconnect is [`Error::Corrupt`]; an expired socket
//! deadline is [`Error::Timeout`] (retryable, like every other deadline
//! in the workspace). Encoding is deterministic: the same message
//! always produces the same bytes, which is what makes load-generator
//! transcripts byte-comparable across runs.

use crate::engine::Recommendation;
use gar_types::{Error, ItemId, Itemset, Result};
use std::hash::Hasher;
use std::io::{Read, Write};

/// Hard upper bound on a frame payload. Reads reject bigger length
/// fields before allocating; writes refuse to emit them.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Version spoken by this build for the v2 frames. v1 frames carry no
/// version field and are accepted forever.
pub const PROTOCOL_VERSION: u16 = 2;

/// Upper bounds on list lengths inside payloads (stricter than what
/// would merely fit in a frame, so garbage fails early and clearly).
const MAX_BASKET_LEN: usize = 1 << 16;
const MAX_RESULTS: usize = 1 << 16;
const MAX_PATH_BYTES: usize = 1 << 12;

/// Most baskets one `QueryBatch` frame may carry.
pub const MAX_BATCH: usize = 1 << 10;

const TAG_QUERY: u8 = 0x01;
const TAG_RESULTS: u8 = 0x02;
const TAG_ERROR: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_SHUTDOWN_ACK: u8 = 0x05;
const TAG_QUERY_V2: u8 = 0x06;
const TAG_RESULTS_V2: u8 = 0x07;
const TAG_RELOAD: u8 = 0x08;
const TAG_RELOAD_ACK: u8 = 0x09;
const TAG_OVERLOADED: u8 = 0x0A;
const TAG_VERSION_MISMATCH: u8 = 0x0B;
const TAG_QUERY_BATCH: u8 = 0x0C;
const TAG_RESULTS_BATCH: u8 = 0x0D;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score a basket, return the best `top_k` consequents.
    Query {
        /// Raw (unextended) item ids; any order, duplicates allowed.
        basket: Vec<ItemId>,
        /// Maximum number of recommendations wanted.
        top_k: u32,
    },
    /// Ask the server to drain and exit (acknowledged, then honored).
    Shutdown,
    /// v2 query: like `Query`, plus the protocol version the client
    /// speaks and a latency budget the server may shed against
    /// (`budget_ms == 0` means "no budget, use the server deadline").
    QueryV2 {
        /// Version the client speaks; answered with `VersionMismatch`
        /// (not a closed connection) when the server cannot serve it.
        version: u16,
        /// Raw (unextended) item ids; any order, duplicates allowed.
        basket: Vec<ItemId>,
        /// Maximum number of recommendations wanted.
        top_k: u32,
        /// Remaining client deadline budget in milliseconds.
        budget_ms: u32,
    },
    /// Admin: load the store file at `path`, validate it, and hot-swap
    /// it in as the next epoch. Rejected loads leave the old epoch
    /// serving.
    Reload {
        /// Version the client speaks (see `QueryV2::version`).
        version: u16,
        /// Server-side path of the new GRUL store file.
        path: String,
    },
    /// Score up to [`MAX_BATCH`] baskets in one round trip, all
    /// against the same epoch snapshot. Answer `i` equals what basket
    /// `i` would get from its own `QueryV2` with the same `top_k`.
    QueryBatch {
        /// Version the client speaks (see `QueryV2::version`).
        version: u16,
        /// The baskets, answered in order.
        baskets: Vec<Vec<ItemId>>,
        /// Maximum number of recommendations wanted per basket.
        top_k: u32,
        /// Latency budget for the whole batch (0 = server deadline).
        budget_ms: u32,
    },
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The scored recommendations, best first.
    Results(Vec<Recommendation>),
    /// The query failed; the connection stays protocol-consistent.
    Error(String),
    /// Shutdown accepted; the server exits after this frame.
    ShutdownAck,
    /// v2 results: which epoch answered and how many shards were
    /// missing (crashed and not yet restarted) when it was computed.
    /// `shards_missing == 0` is a complete answer.
    ResultsV2 {
        /// Epoch of the catalog snapshot that produced `recs`.
        epoch: u64,
        /// Shards that contributed nothing (degraded answer when > 0).
        shards_missing: u32,
        /// The scored recommendations, best first.
        recs: Vec<Recommendation>,
    },
    /// The reload was validated and swapped in as `epoch`.
    ReloadAck {
        /// The new current epoch.
        epoch: u64,
    },
    /// The query was shed before any shard work: the server cannot meet
    /// the deadline budget. Typed and retryable — the client should
    /// back off `retry_after_ms` and try again.
    Overloaded {
        /// Suggested client backoff.
        retry_after_ms: u32,
    },
    /// The request's version field is one the server does not speak;
    /// the connection stays open and v1 frames still work.
    VersionMismatch {
        /// Version the server speaks.
        server: u16,
        /// Version the client sent.
        client: u16,
    },
    /// One answer per `QueryBatch` basket, in request order, all from
    /// the same epoch. A shed batch is answered `Overloaded` as a
    /// whole instead.
    ResultsBatch {
        /// Epoch of the catalog snapshot that produced every answer.
        epoch: u64,
        /// Per-basket answers, in request order.
        answers: Vec<BatchAnswer>,
    },
}

/// One basket's slice of a [`Response::ResultsBatch`]: the same
/// information a standalone `ResultsV2` would carry, minus the shared
/// epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAnswer {
    /// Shards that contributed nothing to this basket (0 = complete).
    pub shards_missing: u32,
    /// The scored recommendations, best first.
    pub recs: Vec<Recommendation>,
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = gar_types::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Writes one frame. Refuses payloads above [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(Error::Protocol(format!(
            "refusing to send a {}-byte frame (max {MAX_FRAME_BYTES})",
            payload.len()
        )));
    }
    let io = |e| Error::io("writing frame", e);
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.write_all(&checksum(payload).to_le_bytes()).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one frame; `Ok(None)` on clean end-of-stream at a frame
/// boundary. The sole frame reader of the crate: the length field is
/// checked against [`MAX_FRAME_BYTES`] before the payload buffer is
/// allocated, and the trailing checksum is verified before the payload
/// is returned.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        // lint:allow(panic-path): got < header.len() is the loop guard,
        // so the range slice cannot go out of bounds.
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(Error::Corrupt("frame truncated mid-header".into())),
            Ok(n) => got += n,
            Err(e) => return Err(map_read_err(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(Error::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte maximum"
        )));
    }
    let mut payload = vec![0u8; len];
    read_fully(r, &mut payload)?;
    let mut tail = [0u8; 8];
    read_fully(r, &mut tail)?;
    if checksum(&payload) != u64::from_le_bytes(tail) {
        return Err(Error::Corrupt("frame checksum mismatch".into()));
    }
    Ok(Some(payload))
}

fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> Result<()> {
    let mut got = 0;
    while got < buf.len() {
        // lint:allow(panic-path): got < buf.len() is the loop guard, so
        // the range slice cannot go out of bounds.
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(Error::Corrupt("frame truncated".into())),
            Ok(n) => got += n,
            Err(e) => return Err(map_read_err(e)),
        }
    }
    Ok(())
}

/// Outcome of one [`FrameBuffer::fill`] from a non-blocking stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStatus {
    /// The stream would block; whatever arrived is buffered.
    Open,
    /// The peer closed: drain [`FrameBuffer::next_frame`], then stop.
    Eof,
}

/// Incremental frame reassembly for the server's readiness loop: bytes
/// go in as the socket delivers them (any fragmentation), complete
/// verified frames come out. The blocking twin of [`read_frame`] with
/// the same guarantees — the length field is validated against
/// [`MAX_FRAME_BYTES`] before a frame is sliced out and the trailing
/// checksum is verified before the payload is surfaced. Lives here so
/// the `no-raw-net` lint keeps every stream read inside the codec.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Reads everything currently available from a **non-blocking**
    /// reader into the buffer. Returns [`FillStatus::Eof`] once the
    /// peer has closed; buffered complete frames are still extractable
    /// afterwards.
    pub fn fill(&mut self, r: &mut impl Read) -> Result<FillStatus> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match r.read(&mut scratch) {
                Ok(0) => return Ok(FillStatus::Eof),
                Ok(n) => {
                    // lint:allow(panic-path): read contracts n <= len.
                    self.buf.extend_from_slice(&scratch[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FillStatus::Open)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::io("reading frame", e)),
            }
        }
    }

    /// Extracts the next complete frame, if one is fully buffered.
    /// Oversize lengths and checksum mismatches are the same errors
    /// [`read_frame`] reports; after an error the stream is no longer
    /// frame-aligned and must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let mut header = [0u8; 4];
        match self.buf.get(..4) {
            Some(h) => header.copy_from_slice(h),
            None => return Ok(None),
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(Error::Protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte maximum"
            )));
        }
        let total = 4 + len + 8;
        let Some(body) = self.buf.get(4..total) else {
            return Ok(None); // frame not fully buffered yet
        };
        let (payload, tail_bytes) = body.split_at(len);
        let mut tail = [0u8; 8];
        tail.copy_from_slice(tail_bytes);
        if checksum(payload) != u64::from_le_bytes(tail) {
            return Err(Error::Corrupt("frame checksum mismatch".into()));
        }
        let payload = payload.to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Bytes currently buffered (partial-frame backlog).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Drains and discards whatever is currently readable on a
/// **non-blocking** reader. The server's waker pipe carries meaningless
/// nudge bytes whose only job is to make `poll` return; this empties it
/// without interpreting anything. Lives here so the `no-raw-net` lint
/// keeps every stream read inside the codec.
pub fn drain_ready(r: &mut impl Read) {
    let mut scratch = [0u8; 64];
    loop {
        match r.read(&mut scratch) {
            Ok(0) => return, // peer closed; nothing left to drain
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return, // WouldBlock (drained) or a real error
        }
    }
}

/// Socket-deadline expiries become the workspace's retryable
/// [`Error::Timeout`]; everything else stays an I/O error.
fn map_read_err(e: std::io::Error) -> Error {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Error::Timeout {
            node: 0,
            op: "read-frame".into(),
        },
        std::io::ErrorKind::Interrupted => Error::Timeout {
            node: 0,
            op: "read-frame".into(),
        },
        _ => Error::io("reading frame", e),
    }
}

fn push_items(out: &mut Vec<u8>, items: &[ItemId]) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for &it in items {
        out.extend_from_slice(&it.raw().to_le_bytes());
    }
}

/// Encodes a request payload (tag + body; framing is separate).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Query { basket, top_k } => {
            out.push(TAG_QUERY);
            out.extend_from_slice(&top_k.to_le_bytes());
            push_items(&mut out, basket);
        }
        Request::Shutdown => out.push(TAG_SHUTDOWN),
        Request::QueryV2 {
            version,
            basket,
            top_k,
            budget_ms,
        } => {
            out.push(TAG_QUERY_V2);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&top_k.to_le_bytes());
            out.extend_from_slice(&budget_ms.to_le_bytes());
            push_items(&mut out, basket);
        }
        Request::Reload { version, path } => {
            out.push(TAG_RELOAD);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
        }
        Request::QueryBatch {
            version,
            baskets,
            top_k,
            budget_ms,
        } => {
            out.push(TAG_QUERY_BATCH);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&top_k.to_le_bytes());
            out.extend_from_slice(&budget_ms.to_le_bytes());
            out.extend_from_slice(&(baskets.len() as u32).to_le_bytes());
            for basket in baskets {
                push_items(&mut out, basket);
            }
        }
    }
    out
}

fn push_recs(out: &mut Vec<u8>, recs: &[Recommendation]) {
    out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    for rec in recs {
        push_items(out, rec.consequent.items());
        out.extend_from_slice(&rec.support_count.to_le_bytes());
        out.extend_from_slice(&rec.confidence.to_bits().to_le_bytes());
        out.extend_from_slice(&rec.score.to_bits().to_le_bytes());
    }
}

/// Encodes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Results(recs) => {
            out.push(TAG_RESULTS);
            push_recs(&mut out, recs);
        }
        Response::Error(msg) => {
            out.push(TAG_ERROR);
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
        }
        Response::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
        Response::ResultsV2 {
            epoch,
            shards_missing,
            recs,
        } => {
            out.push(TAG_RESULTS_V2);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&shards_missing.to_le_bytes());
            push_recs(&mut out, recs);
        }
        Response::ReloadAck { epoch } => {
            out.push(TAG_RELOAD_ACK);
            out.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::Overloaded { retry_after_ms } => {
            out.push(TAG_OVERLOADED);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::VersionMismatch { server, client } => {
            out.push(TAG_VERSION_MISMATCH);
            out.extend_from_slice(&server.to_le_bytes());
            out.extend_from_slice(&client.to_le_bytes());
        }
        Response::ResultsBatch { epoch, answers } => {
            out.push(TAG_RESULTS_BATCH);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&(answers.len() as u32).to_le_bytes());
            for answer in answers {
                out.extend_from_slice(&answer.shards_missing.to_le_bytes());
                push_recs(&mut out, &answer.recs);
            }
        }
    }
    out
}

/// Bounded payload cursor; short reads are protocol errors (the frame
/// checksum already passed, so damage here means a malformed sender).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::Protocol("payload truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let bytes: [u8; 2] = self
            .take(2)?
            .try_into()
            .map_err(|_| Error::Protocol("u16 field malformed".into()))?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| Error::Protocol("u32 field malformed".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| Error::Protocol("u64 field malformed".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn items(&mut self, max: usize, what: &str) -> Result<Vec<ItemId>> {
        let len = self.u32()? as usize;
        if len > max {
            return Err(Error::Protocol(format!(
                "implausible {what} length {len} (max {max})"
            )));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(ItemId(self.u32()?));
        }
        Ok(items)
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(Error::Protocol("payload has trailing garbage".into()));
        }
        Ok(())
    }
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let req = match c.u8()? {
        TAG_QUERY => {
            let top_k = c.u32()?;
            if top_k as usize > MAX_RESULTS {
                return Err(Error::Protocol(format!(
                    "implausible top_k {top_k} (max {MAX_RESULTS})"
                )));
            }
            let basket = c.items(MAX_BASKET_LEN, "basket")?;
            Request::Query { basket, top_k }
        }
        TAG_SHUTDOWN => Request::Shutdown,
        TAG_QUERY_V2 => {
            // The version is carried through undecoded on purpose: the
            // server answers `VersionMismatch` for versions it does not
            // speak instead of failing the decode.
            let version = c.u16()?;
            let top_k = c.u32()?;
            if top_k as usize > MAX_RESULTS {
                return Err(Error::Protocol(format!(
                    "implausible top_k {top_k} (max {MAX_RESULTS})"
                )));
            }
            let budget_ms = c.u32()?;
            let basket = c.items(MAX_BASKET_LEN, "basket")?;
            Request::QueryV2 {
                version,
                basket,
                top_k,
                budget_ms,
            }
        }
        TAG_RELOAD => {
            let version = c.u16()?;
            let len = c.u32()? as usize;
            if len > MAX_PATH_BYTES {
                return Err(Error::Protocol(format!(
                    "implausible reload path length {len} (max {MAX_PATH_BYTES})"
                )));
            }
            let path = std::str::from_utf8(c.take(len)?)
                .map_err(|_| Error::Protocol("reload path is not UTF-8".into()))?;
            Request::Reload {
                version,
                path: path.to_string(),
            }
        }
        TAG_QUERY_BATCH => {
            let version = c.u16()?;
            let top_k = c.u32()?;
            if top_k as usize > MAX_RESULTS {
                return Err(Error::Protocol(format!(
                    "implausible top_k {top_k} (max {MAX_RESULTS})"
                )));
            }
            let budget_ms = c.u32()?;
            let count = c.u32()? as usize;
            if count > MAX_BATCH {
                return Err(Error::Protocol(format!(
                    "implausible batch size {count} (max {MAX_BATCH})"
                )));
            }
            let mut baskets = Vec::with_capacity(count);
            for _ in 0..count {
                baskets.push(c.items(MAX_BASKET_LEN, "basket")?);
            }
            Request::QueryBatch {
                version,
                baskets,
                top_k,
                budget_ms,
            }
        }
        tag => return Err(Error::Protocol(format!("unknown request tag {tag:#04x}"))),
    };
    c.done()?;
    Ok(req)
}

fn read_recs(c: &mut Cursor) -> Result<Vec<Recommendation>> {
    let n = c.u32()? as usize;
    if n > MAX_RESULTS {
        return Err(Error::Protocol(format!(
            "implausible result count {n} (max {MAX_RESULTS})"
        )));
    }
    let mut recs = Vec::with_capacity(n);
    for _ in 0..n {
        let items = c.items(MAX_BASKET_LEN, "consequent")?;
        if items.is_empty() || items.iter().zip(items.iter().skip(1)).any(|(a, b)| a >= b) {
            return Err(Error::Protocol("consequent items not ascending".into()));
        }
        let support_count = c.u64()?;
        let confidence = f64::from_bits(c.u64()?);
        let score = f64::from_bits(c.u64()?);
        if !confidence.is_finite() || !score.is_finite() {
            return Err(Error::Protocol("non-finite recommendation score".into()));
        }
        recs.push(Recommendation {
            consequent: Itemset::from_sorted(items),
            support_count,
            confidence,
            score,
        });
    }
    Ok(recs)
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let resp = match c.u8()? {
        TAG_RESULTS => Response::Results(read_recs(&mut c)?),
        TAG_ERROR => {
            let len = c.u32()? as usize;
            if len > MAX_FRAME_BYTES {
                return Err(Error::Protocol("implausible error length".into()));
            }
            let msg = std::str::from_utf8(c.take(len)?)
                .map_err(|_| Error::Protocol("error message is not UTF-8".into()))?;
            Response::Error(msg.to_string())
        }
        TAG_SHUTDOWN_ACK => Response::ShutdownAck,
        TAG_RESULTS_V2 => {
            let epoch = c.u64()?;
            if epoch == 0 {
                return Err(Error::Protocol("epoch 0 is never served".into()));
            }
            let shards_missing = c.u32()?;
            if shards_missing as usize > MAX_RESULTS {
                return Err(Error::Protocol(format!(
                    "implausible shards_missing {shards_missing}"
                )));
            }
            Response::ResultsV2 {
                epoch,
                shards_missing,
                recs: read_recs(&mut c)?,
            }
        }
        TAG_RELOAD_ACK => {
            let epoch = c.u64()?;
            if epoch == 0 {
                return Err(Error::Protocol("epoch 0 is never served".into()));
            }
            Response::ReloadAck { epoch }
        }
        TAG_OVERLOADED => Response::Overloaded {
            retry_after_ms: c.u32()?,
        },
        TAG_VERSION_MISMATCH => Response::VersionMismatch {
            server: c.u16()?,
            client: c.u16()?,
        },
        TAG_RESULTS_BATCH => {
            let epoch = c.u64()?;
            if epoch == 0 {
                return Err(Error::Protocol("epoch 0 is never served".into()));
            }
            let count = c.u32()? as usize;
            if count > MAX_BATCH {
                return Err(Error::Protocol(format!(
                    "implausible batch size {count} (max {MAX_BATCH})"
                )));
            }
            let mut answers = Vec::with_capacity(count);
            for _ in 0..count {
                let shards_missing = c.u32()?;
                if shards_missing as usize > MAX_RESULTS {
                    return Err(Error::Protocol(format!(
                        "implausible shards_missing {shards_missing}"
                    )));
                }
                answers.push(BatchAnswer {
                    shards_missing,
                    recs: read_recs(&mut c)?,
                });
            }
            Response::ResultsBatch { epoch, answers }
        }
        tag => return Err(Error::Protocol(format!("unknown response tag {tag:#04x}"))),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn sample_response() -> Response {
        Response::Results(vec![
            Recommendation {
                consequent: iset![7],
                support_count: 2,
                confidence: 2.0 / 3.0,
                score: 2.0 / 9.0,
            },
            Recommendation {
                consequent: iset![2, 5],
                support_count: 1,
                confidence: 0.5,
                score: 1.0 / 12.0,
            },
        ])
    }

    fn sample_recs() -> Vec<Recommendation> {
        match sample_response() {
            Response::Results(recs) => recs,
            _ => unreachable!(),
        }
    }

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Query {
                basket: vec![ItemId(3), ItemId(9), ItemId(3)],
                top_k: 5,
            },
            Request::Query {
                basket: vec![],
                top_k: 0,
            },
            Request::Shutdown,
            Request::QueryV2 {
                version: PROTOCOL_VERSION,
                basket: vec![ItemId(1), ItemId(4)],
                top_k: 3,
                budget_ms: 250,
            },
            Request::QueryV2 {
                version: 9,
                basket: vec![],
                top_k: 0,
                budget_ms: 0,
            },
            Request::Reload {
                version: PROTOCOL_VERSION,
                path: "/tmp/rules.grul".into(),
            },
            Request::QueryBatch {
                version: PROTOCOL_VERSION,
                baskets: vec![vec![ItemId(3), ItemId(9)], vec![], vec![ItemId(1)]],
                top_k: 5,
                budget_ms: 100,
            },
            Request::QueryBatch {
                version: 9,
                baskets: vec![],
                top_k: 0,
                budget_ms: 0,
            },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            sample_response(),
            Response::Results(vec![]),
            Response::Error("deadline exceeded".into()),
            Response::ShutdownAck,
            Response::ResultsV2 {
                epoch: 3,
                shards_missing: 1,
                recs: sample_recs(),
            },
            Response::ResultsV2 {
                epoch: 1,
                shards_missing: 0,
                recs: vec![],
            },
            Response::ReloadAck { epoch: 7 },
            Response::Overloaded { retry_after_ms: 25 },
            Response::VersionMismatch {
                server: PROTOCOL_VERSION,
                client: 1,
            },
            Response::ResultsBatch {
                epoch: 5,
                answers: vec![
                    BatchAnswer {
                        shards_missing: 0,
                        recs: sample_recs(),
                    },
                    BatchAnswer {
                        shards_missing: 2,
                        recs: vec![],
                    },
                ],
            },
            Response::ResultsBatch {
                epoch: 1,
                answers: vec![],
            },
        ] {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn v1_encodings_are_frozen() {
        // The v1 tags are a compatibility surface: serve-smoke compares
        // transcripts byte-for-byte across releases, so these bytes must
        // never change. (Adding v2 tags is fine; renumbering is not.)
        let query = encode_request(&Request::Query {
            basket: vec![ItemId(2), ItemId(7)],
            top_k: 4,
        });
        assert_eq!(
            query,
            [0x01, 4, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 7, 0, 0, 0]
        );
        let error = encode_response(&Response::Error("x".into()));
        assert_eq!(error, [0x03, 1, 0, 0, 0, b'x']);
        assert_eq!(encode_request(&Request::Shutdown), [0x04]);
        assert_eq!(encode_response(&Response::ShutdownAck), [0x05]);
    }

    #[test]
    fn batch_encodings_are_pinned() {
        // The batch tags join the frozen surface the moment they ship:
        // byte-exact, like v1_encodings_are_frozen.
        let query = encode_request(&Request::QueryBatch {
            version: 2,
            baskets: vec![vec![ItemId(3)], vec![ItemId(1), ItemId(2)]],
            top_k: 4,
            budget_ms: 7,
        });
        assert_eq!(
            query,
            [
                0x0C, 2, 0, 4, 0, 0, 0, 7, 0, 0, 0, 2, 0, 0, 0, // header
                1, 0, 0, 0, 3, 0, 0, 0, // basket [3]
                2, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, // basket [1, 2]
            ]
        );
        let results = encode_response(&Response::ResultsBatch {
            epoch: 3,
            answers: vec![BatchAnswer {
                shards_missing: 1,
                recs: vec![],
            }],
        });
        assert_eq!(
            results,
            [0x0D, 3, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    /// A reader that serves one byte per `fill` call, then signals
    /// `WouldBlock` — the worst-case fragmentation a non-blocking
    /// socket can produce.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        served: bool,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            if self.served {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.served = true;
            if let (Some(dst), Some(&src)) = (buf.first_mut(), self.data.get(self.pos)) {
                *dst = src;
                self.pos += 1;
                Ok(1)
            } else {
                Ok(0)
            }
        }
    }

    #[test]
    fn frame_buffer_reassembles_one_byte_dribbles() {
        let payloads = [
            encode_response(&sample_response()),
            encode_request(&Request::Shutdown),
            encode_request(&Request::QueryBatch {
                version: PROTOCOL_VERSION,
                baskets: vec![vec![ItemId(1)], vec![ItemId(2), ItemId(3)]],
                top_k: 3,
                budget_ms: 0,
            }),
        ];
        let mut framed = Vec::new();
        for p in &payloads {
            write_frame(&mut framed, p).unwrap();
        }
        let mut dribble = Dribble {
            data: &framed,
            pos: 0,
            served: false,
        };
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        loop {
            dribble.served = false;
            let status = fb.fill(&mut dribble).unwrap();
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame);
            }
            if status == FillStatus::Eof {
                break;
            }
        }
        assert_eq!(out, payloads.to_vec());
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_rejects_corruption_like_the_blocking_reader() {
        let payload = encode_response(&sample_response());
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        // Flip one payload byte: the checksum must catch it.
        let mut bad = framed.clone();
        if let Some(b) = bad.get_mut(6) {
            *b ^= 0xFF;
        }
        let mut fb = FrameBuffer::new();
        fb.fill(&mut std::io::Cursor::new(&bad)).unwrap();
        assert!(matches!(fb.next_frame(), Err(Error::Corrupt(_))));
        // An oversize length field fails before any allocation.
        let mut fb = FrameBuffer::new();
        fb.fill(&mut std::io::Cursor::new(&(1u32 << 30).to_le_bytes()))
            .unwrap();
        assert!(matches!(fb.next_frame(), Err(Error::Protocol(_))));
        // A partial frame is simply not ready yet.
        let cut = framed.len() - 1;
        let mut fb = FrameBuffer::new();
        fb.fill(&mut std::io::Cursor::new(&framed[..cut])).unwrap();
        assert_eq!(fb.next_frame().unwrap(), None);
        assert_eq!(fb.buffered(), cut);
        // The missing byte completes it.
        fb.fill(&mut std::io::Cursor::new(&framed[cut..])).unwrap();
        assert_eq!(fb.next_frame().unwrap(), Some(payload));
    }

    #[test]
    fn frame_round_trips_through_a_stream() {
        let payload = encode_request(&Request::Shutdown);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(payload));
        // Clean EOF at the frame boundary.
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversize_length_field_is_rejected_before_allocation() {
        // A header claiming a 1 GiB payload followed by nothing: the
        // reader must fail on the length check, not try to allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(&err, Error::Protocol(m) if m.contains("exceeds")),
            "{err:?}"
        );
    }

    #[test]
    fn oversize_payload_is_refused_on_write() {
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        let err = write_frame(&mut Vec::new(), &big).unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");
    }

    #[test]
    fn every_frame_truncation_is_a_clean_error() {
        let payload = encode_response(&sample_response());
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload).unwrap();
        // len 0 is a clean EOF (None); every other cut must error.
        for len in 1..frame.len() {
            let got = read_frame(&mut std::io::Cursor::new(&frame[..len]));
            let err = got.expect_err(&format!("truncation at {len} decoded"));
            assert!(
                matches!(err, Error::Corrupt(_) | Error::Protocol(_)),
                "truncation at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn every_frame_byte_flip_is_detected() {
        // One frame per protocol generation — the v2 tags run through
        // the same every-byte-flip harness as the originals.
        let payloads = [
            encode_request(&Request::Query {
                basket: vec![ItemId(1), ItemId(2), ItemId(3)],
                top_k: 4,
            }),
            encode_request(&Request::QueryV2 {
                version: PROTOCOL_VERSION,
                basket: vec![ItemId(1), ItemId(2), ItemId(3)],
                top_k: 4,
                budget_ms: 100,
            }),
            encode_request(&Request::Reload {
                version: PROTOCOL_VERSION,
                path: "/tmp/rules.grul".into(),
            }),
            encode_response(&Response::ResultsV2 {
                epoch: 2,
                shards_missing: 1,
                recs: sample_recs(),
            }),
            encode_response(&Response::ReloadAck { epoch: 2 }),
            encode_response(&Response::Overloaded { retry_after_ms: 25 }),
            encode_response(&Response::VersionMismatch {
                server: PROTOCOL_VERSION,
                client: 1,
            }),
            encode_request(&Request::QueryBatch {
                version: PROTOCOL_VERSION,
                baskets: vec![vec![ItemId(1), ItemId(2)], vec![ItemId(3)]],
                top_k: 4,
                budget_ms: 100,
            }),
            encode_response(&Response::ResultsBatch {
                epoch: 2,
                answers: vec![BatchAnswer {
                    shards_missing: 1,
                    recs: sample_recs(),
                }],
            }),
        ];
        for payload in payloads {
            let mut frame = Vec::new();
            write_frame(&mut frame, &payload).unwrap();
            for i in 0..frame.len() {
                let mut bad = frame.clone();
                bad[i] ^= 0xFF;
                match read_frame(&mut std::io::Cursor::new(&bad)) {
                    // A header flip may shrink the claimed length so a
                    // checksum-valid prefix cannot result; a payload or
                    // checksum flip must fail the checksum; a length flip
                    // upward must truncate or exceed the cap. Never Ok.
                    Err(Error::Corrupt(_)) | Err(Error::Protocol(_)) => {}
                    other => panic!("flip at {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_v2_payload_truncation_is_a_clean_error() {
        // Truncations *inside* a checksum-valid frame exercise the
        // cursor bounds of the new decoders.
        let payloads = [
            encode_request(&Request::QueryV2 {
                version: PROTOCOL_VERSION,
                basket: vec![ItemId(5)],
                top_k: 2,
                budget_ms: 9,
            }),
            encode_request(&Request::Reload {
                version: PROTOCOL_VERSION,
                path: "r.grul".into(),
            }),
            encode_response(&Response::ResultsV2 {
                epoch: 4,
                shards_missing: 0,
                recs: sample_recs(),
            }),
            encode_response(&Response::ReloadAck { epoch: 4 }),
            encode_response(&Response::Overloaded { retry_after_ms: 1 }),
            encode_response(&Response::VersionMismatch {
                server: PROTOCOL_VERSION,
                client: 3,
            }),
            encode_request(&Request::QueryBatch {
                version: PROTOCOL_VERSION,
                baskets: vec![vec![ItemId(5)], vec![ItemId(6), ItemId(7)]],
                top_k: 2,
                budget_ms: 9,
            }),
            encode_response(&Response::ResultsBatch {
                epoch: 4,
                answers: vec![
                    BatchAnswer {
                        shards_missing: 0,
                        recs: sample_recs(),
                    },
                    BatchAnswer {
                        shards_missing: 0,
                        recs: vec![],
                    },
                ],
            }),
        ];
        for payload in payloads {
            for len in 0..payload.len() {
                let req = decode_request(&payload[..len]);
                let resp = decode_response(&payload[..len]);
                assert!(req.is_err() && resp.is_err(), "truncation at {len} decoded");
            }
        }
    }

    #[test]
    fn garbage_payloads_are_protocol_errors_never_panics() {
        for payload in [
            &[][..],
            &[0xFF][..],
            &[TAG_QUERY][..],
            &[TAG_QUERY, 1, 0, 0, 0][..],
            &[TAG_RESULTS, 0xFF, 0xFF, 0xFF, 0xFF][..],
            &[TAG_ERROR, 10, 0, 0, 0, b'h', b'i'][..],
            &[TAG_SHUTDOWN, 0][..], // trailing garbage
            &[TAG_QUERY_V2, 2][..],
            &[TAG_QUERY_V2, 2, 0, 0xFF, 0xFF, 0xFF, 0xFF][..],
            &[TAG_RELOAD, 2, 0, 0xFF, 0xFF, 0xFF, 0xFF][..],
            &[TAG_RELOAD, 2, 0, 2, 0, 0, 0, 0xC3][..], // bad UTF-8
            &[TAG_RESULTS_V2, 1, 0, 0, 0, 0, 0, 0, 0][..],
            &[
                TAG_RESULTS_V2,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
            ][..], // epoch 0
            &[TAG_RELOAD_ACK, 9][..],
            &[TAG_OVERLOADED][..],
            &[TAG_VERSION_MISMATCH, 2, 0][..],
            &[TAG_VERSION_MISMATCH, 2, 0, 1, 0, 9][..], // trailing garbage
            &[TAG_QUERY_BATCH, 2][..],
            // Implausible batch count (0xFFFFFFFF baskets).
            &[
                TAG_QUERY_BATCH,
                2,
                0,
                5,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0xFF,
                0xFF,
                0xFF,
                0xFF,
            ][..],
            // Batch of one basket, then nothing: truncated mid-basket.
            &[TAG_QUERY_BATCH, 2, 0, 5, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0][..],
            &[TAG_RESULTS_BATCH, 1, 0, 0, 0][..],
            // Epoch 0 is never served, batch or not.
            &[TAG_RESULTS_BATCH, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0][..],
        ] {
            let req = decode_request(payload);
            let resp = decode_response(payload);
            assert!(req.is_err() || resp.is_err(), "{payload:?}");
            for e in [req.err(), resp.err()].into_iter().flatten() {
                assert!(matches!(e, Error::Protocol(_)), "{payload:?}: {e:?}");
            }
        }
    }

    #[test]
    fn implausible_basket_length_is_rejected() {
        let mut payload = vec![TAG_QUERY];
        payload.extend_from_slice(&5u32.to_le_bytes());
        payload.extend_from_slice(&(MAX_BASKET_LEN as u32 + 1).to_le_bytes());
        let err = decode_request(&payload).unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");
    }
}
