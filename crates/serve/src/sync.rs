//! Synchronization shim for the serving tier: `std::sync` in normal
//! builds, the `gar-modelcheck` virtual primitives under
//! `--cfg gar_loom` (same pattern as `gar-cluster`'s shim).
//!
//! The epoch hot-swap cell ([`crate::epoch::EpochCell`]) and the shard
//! supervisor's sender slot go through these names, so the exact code
//! that swaps stores in production is the code the model checker
//! explores (`cargo xtask loom` runs `tests/loom_epoch.rs`).
//!
//! `Mutex::lock` returns the guard directly. On the `std` backend a
//! poisoned lock is recovered with `into_inner`: the supervisor clears
//! and republishes a shard's sender slot only from its own (never
//! panicking mid-update) restart loop, and the epoch slot holds a
//! single `Arc` that is replaced atomically, so neither can be observed
//! half-updated.

#[cfg(not(gar_loom))]
mod backend {
    use std::sync::PoisonError;

    pub use std::sync::Arc;

    /// `std::sync::Mutex` with panic-poisoning flattened away.
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard type re-exported so signatures can name it under both
    /// backends.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

#[cfg(gar_loom)]
mod backend {
    pub use gar_modelcheck::sync::{Mutex, MutexGuard};
    pub use std::sync::Arc;
}

pub(crate) use backend::{Arc, Mutex};

#[allow(unused_imports)]
pub(crate) use backend::MutexGuard;
