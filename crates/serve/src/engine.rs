//! Basket scoring: from a transaction-shaped query to top-k consequents.
//!
//! A rule *matches* a basket when its antecedent is contained in the
//! basket's extended transaction (the basket plus all ancestors — the
//! paper's `t'`), and its consequent is **not** already contained there
//! (a recommendation for something the basket already implies is
//! useless). Matches are ranked by `confidence × support`.
//!
//! Two serve-time redundancy filters follow, both at the merge step so
//! the answer is identical for every shard count:
//!
//! * **Consequent dedup** — of several matched rules with the same
//!   consequent, only the best-scoring survives (the query asks for
//!   top-k *consequents*, not top-k rules).
//! * **Ancestor suppression** — the paper's interest measure, applied
//!   to answers: a match whose consequent merely *generalizes* another
//!   match's consequent (same size, item-wise ancestor-or-equal) is
//!   dropped when the specialization scores at least as high, because
//!   "⇒ outerwear" adds nothing over "⇒ hiking boots".
//!
//! Rules are sharded by the FxHash of their **antecedent's** sorted
//! distinct root-id key — the placement of the H-HPGM family applied
//! to the part of the rule a query has to satisfy. The root key is
//! invariant under item generalization, so a rule and all its ancestor
//! rules land on the same shard: the hierarchy locality the miner
//! exploits transfers to the serving tier unchanged. Placement by
//! antecedent roots is what makes **affinity routing** sound: a rule
//! matches a basket only when its antecedent is contained in the
//! basket's extended transaction, extension never adds a new root, so
//! every rule that can match a single-root basket has antecedent root
//! key `{root}` and lives on [`Catalog::route`]'s one shard. Fan-out
//! is needed only for multi-root baskets.

use crate::index::RuleIndex;
use crate::store::RuleStore;
use gar_mining::rules::Rule;
use gar_taxonomy::Taxonomy;
use gar_types::{fx_hash_u32_slice, ItemId, Itemset};

/// One answer entry: a consequent worth recommending.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended itemset.
    pub consequent: Itemset,
    /// Absolute support of the winning rule.
    pub support_count: u64,
    /// Confidence of the winning rule.
    pub confidence: f64,
    /// Ranking score: `confidence × support-fraction`.
    pub score: f64,
}

/// A matched rule with its precomputed score (shard-local result).
#[derive(Debug, Clone)]
pub struct Match {
    /// The matching rule.
    pub rule: Rule,
    /// `confidence × support-fraction`.
    pub score: f64,
}

/// The shard of an itemset: FxHash of its sorted **distinct** root-id
/// key, modulo the shard count — H-HPGM's `owner_of_key` transplanted
/// to serving. Deduplication makes the key a set, so the single-root
/// key `{r}` of a basket hashes identically to the antecedent key of
/// every rule that basket can trigger.
pub fn shard_of(items: &[ItemId], tax: &Taxonomy, num_shards: usize) -> usize {
    let mut roots: Vec<u32> = items.iter().map(|&i| tax.root_of(i).raw()).collect();
    roots.sort_unstable();
    roots.dedup();
    (fx_hash_u32_slice(&roots) % num_shards.max(1) as u64) as usize
}

/// Where a basket's shard work has to go, decided by
/// [`Catalog::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// No known item: nothing can match, no shard needs to run.
    Empty,
    /// Every known item shares one root: only this shard can hold a
    /// matching rule (antecedent-root placement), so the query touches
    /// exactly one shard.
    Single(usize),
    /// The basket spans several roots: any shard may contribute.
    Broadcast,
}

/// One shard: a slice of the rule set plus its inverted index.
#[derive(Debug)]
struct Shard {
    rules: Vec<Rule>,
    index: RuleIndex,
}

/// A loaded, sharded, indexed rule set — the in-process query engine
/// the TCP server (and embedders) answer from.
#[derive(Debug)]
pub struct Catalog {
    taxonomy: Taxonomy,
    num_transactions: u64,
    shards: Vec<Shard>,
}

impl Catalog {
    /// Shards and indexes `store` for serving. `num_shards` is clamped
    /// to at least 1.
    pub fn new(store: RuleStore, num_shards: usize) -> Catalog {
        let num_shards = num_shards.max(1);
        let tax = store.taxonomy;
        let mut buckets: Vec<Vec<Rule>> = (0..num_shards).map(|_| Vec::new()).collect();
        for rule in store.rules {
            // Placement by the *antecedent's* root key: the only part a
            // basket must contain for the rule to fire, so affinity
            // routing can prove single-root queries shard-local.
            let s = shard_of(rule.antecedent.items(), &tax, num_shards);
            buckets[s].push(rule);
        }
        let shards = buckets
            .into_iter()
            .map(|rules| {
                let index = RuleIndex::build(&rules, &tax);
                Shard { rules, index }
            })
            .collect();
        Catalog {
            taxonomy: tax,
            num_transactions: store.num_transactions,
            shards,
        }
    }

    /// The hierarchy queries are interpreted under.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rules across shards.
    pub fn num_rules(&self) -> usize {
        self.shards.iter().map(|s| s.rules.len()).sum()
    }

    /// Transactions behind the stored supports.
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// The extended transaction of a basket: items plus all ancestors,
    /// sorted and deduplicated. Items outside the taxonomy are dropped
    /// (a live query may mention products the store predates).
    pub fn extend_basket(&self, basket: &[ItemId]) -> Vec<ItemId> {
        let known: Vec<ItemId> = basket
            .iter()
            .copied()
            .filter(|it| it.raw() < self.taxonomy.num_items())
            .collect();
        self.taxonomy.extend_transaction(&known)
    }

    /// Decides which shards a basket has to visit. Extension only adds
    /// *ancestors*, which never change an item's root, so the root set
    /// of the extended transaction equals the root set of the known raw
    /// items — a rule can match only if its antecedent's root set is a
    /// subset of that set. With rules placed by their antecedent root
    /// key, a single-root basket's answer therefore lives entirely on
    /// `shard_of({root})`; only multi-root baskets need fan-out.
    pub fn route(&self, basket: &[ItemId]) -> Route {
        let mut root: Option<u32> = None;
        for &it in basket {
            if it.raw() >= self.taxonomy.num_items() {
                continue; // unknown item: dropped by extend_basket too
            }
            let r = self.taxonomy.root_of(it).raw();
            match root {
                None => root = Some(r),
                Some(seen) if seen == r => {}
                Some(_) => return Route::Broadcast,
            }
        }
        match root {
            None => Route::Empty,
            Some(r) => {
                Route::Single((fx_hash_u32_slice(&[r]) % self.shards.len().max(1) as u64) as usize)
            }
        }
    }

    /// The matches of one shard for a query. `basket` drives the index
    /// lookup (ancestor closure is pre-folded into the postings);
    /// `extended` drives the containment tests.
    pub fn shard_matches(
        &self,
        shard: usize,
        basket: &[ItemId],
        extended: &[ItemId],
    ) -> Vec<Match> {
        // lint:allow(panic-path): shard ids come from the engine's own
        // worker loop (0..num_shards), never from the wire.
        let s = &self.shards[shard];
        let mut out = Vec::new();
        for ri in s.index.candidates(basket) {
            // lint:allow(panic-path): postings are built over this same
            // rules vector at store load, after checksum validation.
            let rule = &s.rules[ri as usize];
            if rule.antecedent.is_contained_in(extended)
                && !rule.consequent.is_contained_in(extended)
            {
                out.push(Match {
                    score: rule.confidence * rule.support,
                    rule: rule.clone(),
                });
            }
        }
        out
    }

    /// Merges shard-local matches into the final top-k answer:
    /// deterministic total order, consequent dedup, ancestor
    /// suppression, truncation — in that order, so the result does not
    /// depend on shard count or arrival order.
    pub fn merge(&self, mut matches: Vec<Match>, top_k: usize) -> Vec<Recommendation> {
        // Total order: score desc, support desc, then the rule key. The
        // key is unique (stores are canonical), so ties cannot reorder.
        matches.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.rule.support_count.cmp(&a.rule.support_count))
                .then_with(|| a.rule.antecedent.cmp(&b.rule.antecedent))
                .then_with(|| a.rule.consequent.cmp(&b.rule.consequent))
        });
        // Consequent dedup: the first (best) rule per consequent wins.
        let mut best: Vec<Match> = Vec::new();
        for m in matches {
            if !best.iter().any(|b| b.rule.consequent == m.rule.consequent) {
                best.push(m);
            }
        }
        // Ancestor suppression: drop a match whose consequent is a
        // generalization of a better-or-equal match's consequent.
        let kept: Vec<&Match> = best
            .iter()
            .filter(|gen| {
                !best.iter().any(|spec| {
                    spec.score >= gen.score
                        && self.specializes(&spec.rule.consequent, &gen.rule.consequent)
                })
            })
            .collect();
        kept.into_iter()
            .take(top_k)
            .map(|m| Recommendation {
                consequent: m.rule.consequent.clone(),
                support_count: m.rule.support_count,
                confidence: m.rule.confidence,
                score: m.score,
            })
            .collect()
    }

    /// True when `spec` is a proper item-wise specialization of `gen`:
    /// same size, different sets, every `gen` item covered by an
    /// equal-or-descendant `spec` item and vice versa.
    fn specializes(&self, spec: &Itemset, gen: &Itemset) -> bool {
        if spec.len() != gen.len() || spec == gen {
            return false;
        }
        let covers = |g: ItemId, s: ItemId| g == s || self.taxonomy.is_ancestor(g, s);
        gen.items()
            .iter()
            .all(|&g| spec.items().iter().any(|&s| covers(g, s)))
            && spec
                .items()
                .iter()
                .all(|&s| gen.items().iter().any(|&g| covers(g, s)))
    }

    /// The full in-process query path: extend, match every shard,
    /// merge. This is what the TCP server parallelizes over its worker
    /// pool; answers are identical by construction.
    pub fn query(&self, basket: &[ItemId], top_k: usize) -> Vec<Recommendation> {
        let extended = self.extend_basket(basket);
        let mut all = Vec::new();
        for s in 0..self.shards.len() {
            all.extend(self.shard_matches(s, basket, &extended));
        }
        self.merge(all, top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rule, sa95_taxonomy};
    use gar_types::iset;

    fn catalog(rules: Vec<Rule>, num_shards: usize) -> Catalog {
        Catalog::new(RuleStore::new(rules, sa95_taxonomy(), 6), num_shards)
    }

    #[test]
    fn ancestor_match_through_extension() {
        // [SA95]: "outerwear ⇒ hiking boots". A basket holding only
        // jackets(3) must trigger it via the ancestor outerwear(1).
        let cat = catalog(vec![rule(iset![1], iset![7], 2, 2.0 / 3.0)], 1);
        let recs = cat.query(&[ItemId(3)], 5);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].consequent, iset![7]);
        assert_eq!(recs[0].support_count, 2);
    }

    #[test]
    fn satisfied_consequent_is_not_recommended() {
        let cat = catalog(vec![rule(iset![1], iset![7], 2, 2.0 / 3.0)], 1);
        // The basket already holds boots(7): nothing to recommend.
        assert!(cat.query(&[ItemId(3), ItemId(7)], 5).is_empty());
        // Even holding the *ancestor* footwear(5) satisfies {7}? No —
        // extension only adds ancestors, so a held ancestor does not
        // imply the descendant. The rule still fires.
        assert_eq!(cat.query(&[ItemId(3), ItemId(5)], 5).len(), 1);
    }

    #[test]
    fn generalization_is_suppressed_when_specialization_scores_higher() {
        // Same antecedent, consequents boots(7) and its ancestor
        // footwear(5); the specific rule scores >= the general one, so
        // only "⇒ boots" survives.
        let cat = catalog(
            vec![
                rule(iset![1], iset![7], 2, 2.0 / 3.0),
                rule(iset![1], iset![5], 2, 2.0 / 3.0),
            ],
            1,
        );
        let recs = cat.query(&[ItemId(3)], 5);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].consequent, iset![7]);
    }

    #[test]
    fn generalization_survives_when_it_scores_strictly_higher() {
        // "⇒ footwear" with higher support than "⇒ boots": the general
        // rule carries real extra information, keep both.
        let cat = catalog(
            vec![
                rule(iset![1], iset![7], 2, 2.0 / 3.0),
                rule(iset![1], iset![5], 3, 1.0),
            ],
            1,
        );
        let recs = cat.query(&[ItemId(3)], 5);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].consequent, iset![5]);
        assert_eq!(recs[1].consequent, iset![7]);
    }

    #[test]
    fn consequents_are_deduplicated_keeping_the_best_rule() {
        let cat = catalog(
            vec![
                rule(iset![1], iset![7], 2, 2.0 / 3.0),
                rule(iset![4], iset![7], 3, 1.0),
            ],
            1,
        );
        let recs = cat.query(&[ItemId(3), ItemId(4)], 5);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].confidence, 1.0);
        assert_eq!(recs[0].support_count, 3);
    }

    #[test]
    fn top_k_truncates_after_suppression() {
        let cat = catalog(
            vec![
                rule(iset![1], iset![6], 1, 0.4),
                rule(iset![1], iset![7], 2, 2.0 / 3.0),
                rule(iset![3], iset![2], 3, 0.9),
            ],
            1,
        );
        let recs = cat.query(&[ItemId(3)], 2);
        assert_eq!(recs.len(), 2);
        // Best two by score: {2} (0.9*0.5) then {7} (0.667*0.333).
        assert_eq!(recs[0].consequent, iset![2]);
        assert_eq!(recs[1].consequent, iset![7]);
    }

    #[test]
    fn answers_identical_across_shard_counts() {
        let rules = vec![
            rule(iset![1], iset![7], 2, 2.0 / 3.0),
            rule(iset![3], iset![2], 3, 0.9),
            rule(iset![7], iset![1], 2, 1.0),
            rule(iset![2], iset![6], 1, 0.4),
            rule(iset![4], iset![7], 1, 0.5),
        ];
        let baskets: Vec<Vec<ItemId>> = vec![
            vec![ItemId(3)],
            vec![ItemId(7)],
            vec![ItemId(2), ItemId(4)],
            vec![ItemId(3), ItemId(6)],
        ];
        let reference = catalog(rules.clone(), 1);
        for shards in [2, 3, 4, 7] {
            let cat = catalog(rules.clone(), shards);
            assert_eq!(cat.num_rules(), 5);
            for basket in &baskets {
                assert_eq!(
                    cat.query(basket, 10),
                    reference.query(basket, 10),
                    "shards={shards} basket={basket:?}"
                );
            }
        }
    }

    #[test]
    fn route_classifies_baskets_by_distinct_roots() {
        let cat = catalog(vec![rule(iset![1], iset![7], 2, 2.0 / 3.0)], 4);
        // jackets(3) + ski pants(4) + clothes(0): one root → Single.
        match cat.route(&[ItemId(3), ItemId(4), ItemId(0)]) {
            Route::Single(s) => assert!(s < 4),
            other => panic!("expected Single, got {other:?}"),
        }
        // A single-root basket routes to the shard of its root key —
        // where every rule with that antecedent root lives.
        let tax = sa95_taxonomy();
        assert_eq!(
            cat.route(&[ItemId(3)]),
            Route::Single(shard_of(&[ItemId(0)], &tax, 4))
        );
        // clothes(0) + boots(7): two roots → Broadcast.
        assert_eq!(cat.route(&[ItemId(0), ItemId(7)]), Route::Broadcast);
        // Unknown items are ignored; all-unknown means no shard at all.
        assert_eq!(cat.route(&[ItemId(900)]), Route::Empty);
        assert_eq!(cat.route(&[]), Route::Empty);
        match cat.route(&[ItemId(900), ItemId(6)]) {
            Route::Single(_) => {}
            other => panic!("expected Single, got {other:?}"),
        }
    }

    #[test]
    fn single_root_routing_agrees_with_full_fanout() {
        // Every rule a single-root basket can match must live on the
        // routed shard: scoring only that shard must equal fanning out
        // to all of them. Exercised over rules with cross-root
        // consequents and multi-root antecedents — the ones affinity
        // placement must keep out of the way.
        let rules = vec![
            rule(iset![1], iset![7], 2, 2.0 / 3.0), // clothes → footwear
            rule(iset![3], iset![2], 3, 0.9),       // clothes → clothes
            rule(iset![7], iset![1], 2, 1.0),       // footwear → clothes
            rule(iset![2], iset![6], 1, 0.4),
            rule(iset![4], iset![7], 1, 0.5),
            rule(iset![2, 6], iset![7], 1, 0.7), // multi-root antecedent
        ];
        for shards in [1usize, 2, 4] {
            let cat = catalog(rules.clone(), shards);
            for basket in [
                vec![ItemId(3)],
                vec![ItemId(7)],
                vec![ItemId(2), ItemId(3)],
                vec![ItemId(6), ItemId(7)],
            ] {
                let Route::Single(s) = cat.route(&basket) else {
                    panic!("single-root basket {basket:?} not routed Single");
                };
                let extended = cat.extend_basket(&basket);
                let routed = cat.merge(cat.shard_matches(s, &basket, &extended), 10);
                let mut all = Vec::new();
                for shard in 0..cat.num_shards() {
                    all.extend(cat.shard_matches(shard, &basket, &extended));
                }
                let fanout = cat.merge(all, 10);
                assert_eq!(routed, fanout, "shards={shards} basket={basket:?}");
            }
        }
    }

    #[test]
    fn sharding_is_root_hash_invariant_under_generalization() {
        let tax = sa95_taxonomy();
        for n in [1usize, 2, 4, 8] {
            // jackets(3) and its ancestor outerwear(1) share root
            // clothes(0): same shard, every shard count.
            assert_eq!(
                shard_of(&[ItemId(3)], &tax, n),
                shard_of(&[ItemId(1)], &tax, n)
            );
            assert_eq!(
                shard_of(&[ItemId(3), ItemId(7)], &tax, n),
                shard_of(&[ItemId(1), ItemId(5)], &tax, n)
            );
        }
    }

    #[test]
    fn unknown_basket_items_are_ignored() {
        let cat = catalog(vec![rule(iset![1], iset![7], 2, 2.0 / 3.0)], 2);
        assert_eq!(cat.query(&[ItemId(3), ItemId(500)], 5).len(), 1);
        assert!(cat.query(&[ItemId(500)], 5).is_empty());
    }
}
