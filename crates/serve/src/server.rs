//! The sharded, supervised, hot-swappable query server.
//!
//! Topology: one blocking accept loop, one detached handler thread per
//! connection, and one **supervisor** thread per shard. Each supervisor
//! owns its shard's bounded job queue: it publishes a fresh sender into
//! the shard's slot, runs the worker loop under `catch_unwind`, and on
//! a panic clears the slot, backs off, and restarts the worker — the
//! serving-tier mirror of the mining cluster's degraded-mode recovery
//! (bounded restarts, [`gar_cluster::RetryPolicy`]-shaped backoff).
//! While a shard is down, queries are answered **degraded**: the v2
//! response carries `shards_missing`, mirroring `ParallelReport`'s
//! degraded notes.
//!
//! Rule refresh: the catalog lives in an [`EpochCell`]. A handler takes
//! one snapshot per query and every shard job carries that snapshot, so
//! a query observes exactly one epoch end to end; a `Reload` frame (or
//! [`Server::reload`]) builds and validates the replacement catalog
//! outside the lock and swaps it in as `epoch + 1` while in-flight
//! queries drain on their old snapshots. A reload that fails
//! validation (missing file, checksum, ordering) is rejected and the
//! old epoch keeps answering.
//!
//! Overload: shard queues are bounded ([`ServerConfig::queue_depth`]).
//! A full queue — or a v2 deadline budget the backlog cannot meet —
//! sheds the query *before* any shard work with the typed retryable
//! `Response::Overloaded` instead of queueing toward collapse.
//!
//! Fault injection: the serve-side tokens of a
//! [`gar_cluster::FaultPlan`] (`conn-reset@cN`, `slow-frame@cN`,
//! `shard-panic@sNqM`, `shard-stall@sNqM`, `stale-swap@rN`) are
//! consulted at the matching connection / shard-job / reload points,
//! driven by `cargo xtask serve-chaos`.
//!
//! Observability: per-shard `serve.queries/hits/misses`, `serve.shard_us`,
//! and `serve.shard_restarts`; request-level `serve.requests`,
//! `serve.latency_us`, `serve.errors`, `serve.deadline_exceeded`,
//! `serve.shed`, `serve.degraded`; swap-level `serve.swaps` and
//! `serve.swap_rejected`.
//!
//! Shutdown: a `Shutdown` frame (or [`Server::shutdown`]) flips the
//! shared `running` flag and nudges the accept loop with a throwaway
//! self-connection; handlers poll the flag every ~100 ms via their
//! socket read deadline; [`Server::wait`] then retires the shard
//! senders so workers drain and exit, and joins everything.

use crate::engine::{Catalog, Match};
use crate::epoch::{Epoch, EpochCell};
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, PROTOCOL_VERSION,
};
use crate::store::RuleStore;
use crate::sync::Mutex;
use gar_cluster::{FaultPlan, ServeFaultOp};
use gar_obs::{Obs, Stopwatch};
use gar_types::{Error, ItemId, Result};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a connection handler re-checks the shutdown flag while
/// blocked waiting for the next request frame.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of rule shards (and shard worker threads); clamped ≥ 1.
    pub shards: usize,
    /// Deadline for collecting all shard answers to one query.
    pub deadline: Duration,
    /// Bound on each shard's job queue; a full queue sheds the query.
    /// Clamped ≥ 1.
    pub queue_depth: usize,
    /// Rough per-job cost used by deadline-budget admission: a v2 query
    /// whose `budget_ms` cannot cover `(backlog + 1) × est_job_ms` is
    /// shed instead of queued.
    pub est_job_ms: u64,
    /// Backoff suggested to shed clients.
    pub retry_after_ms: u32,
    /// How many times a crashed shard worker is restarted before the
    /// shard is left down (answers stay degraded).
    pub max_restarts: usize,
    /// Base of the supervisor's linear restart backoff (sleep before
    /// restart `k` is `restart_backoff × k`).
    pub restart_backoff: Duration,
    /// Serve-side fault injection points (empty plan = no faults).
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 1,
            deadline: Duration::from_secs(5),
            queue_depth: 64,
            est_job_ms: 1,
            retry_after_ms: 25,
            max_restarts: 8,
            restart_backoff: Duration::from_millis(10),
            faults: FaultPlan::default(),
        }
    }
}

/// One unit of shard work: a parsed query, the epoch snapshot it runs
/// against, and the reply channel.
struct Job {
    snapshot: Arc<Epoch<Catalog>>,
    basket: Arc<Vec<ItemId>>,
    extended: Arc<Vec<ItemId>>,
    reply: Sender<Vec<Match>>,
}

/// One shard's supervised queue endpoint. The slot holds the *current*
/// worker incarnation's sender; `None` while the shard is down
/// (crashed and not yet restarted, out of restart budget, or shutting
/// down).
struct ShardSlot {
    tx: Mutex<Option<SyncSender<Job>>>,
    /// Jobs admitted but not yet finished (backlog estimate for
    /// admission control).
    queued: AtomicUsize,
    /// Jobs handed to a worker over the shard's lifetime, counted
    /// across restarts — the `q` coordinate of shard fault tokens.
    jobs: AtomicU64,
}

impl ShardSlot {
    fn new() -> ShardSlot {
        ShardSlot {
            tx: Mutex::new(None),
            queued: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    fn finish_job(&self) {
        // Saturating: `queued` is reset to 0 when a crashed worker's
        // queue is discarded, so a late decrement must not wrap.
        let _ = self
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                Some(q.saturating_sub(1))
            });
    }
}

/// State shared by the accept loop, handlers, supervisors, and admin
/// reload paths.
struct Shared {
    current: EpochCell<Catalog>,
    slots: Vec<ShardSlot>,
    cfg: ServerConfig,
    obs: Obs,
    running: AtomicBool,
    /// Accepted connections, in accept order — the `c` coordinate of
    /// connection fault tokens.
    conns: AtomicU64,
    /// Reload attempts, 1-based — the `r` coordinate of `stale-swap`.
    reloads: AtomicU64,
}

impl Shared {
    /// Loads, validates, and swaps in the store at `path`. On any
    /// failure the current epoch keeps serving and the error reports
    /// why the swap was rejected.
    fn reload(&self, path: &str) -> Result<u64> {
        let attempt = self.reloads.fetch_add(1, Ordering::SeqCst) + 1;
        let result = self.reload_attempt(path, attempt as usize);
        match &result {
            Ok(_) => self.obs.add("serve.swaps", &[], 1),
            Err(_) => self.obs.add("serve.swap_rejected", &[], 1),
        }
        result
    }

    fn reload_attempt(&self, path: &str, attempt: usize) -> Result<u64> {
        let mut bytes = std::fs::read(path)
            .map_err(|e| Error::io(format!("reading store for reload: {path}"), e))?;
        if self.cfg.faults.take_serve_reload(attempt) {
            // Injected stale swap: damage the image after the read but
            // before validation — decode must reject it.
            self.obs.add("serve.fault.stale_swap", &[], 1);
            let mid = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(mid) {
                *b ^= 0xFF;
            }
        }
        let store = crate::store::decode(&bytes)?;
        let num_shards = self.current.load().value().num_shards();
        let catalog = Catalog::new(store, num_shards);
        Ok(self.current.swap(catalog))
    }
}

/// A running server; dropping it does *not* stop the threads — call
/// [`Server::shutdown`] then [`Server::wait`] (or send a `Shutdown`
/// frame) for an orderly exit.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisors: Vec<JoinHandle<()>>,
    obs: Obs,
}

/// A cloneable admin handle onto a running server: reload the store
/// and read the current epoch without holding the [`Server`] itself
/// (e.g. from the CLI's `--watch-store` poller thread).
#[derive(Clone)]
pub struct ReloadHandle {
    shared: Arc<Shared>,
}

impl ReloadHandle {
    /// Hot-swaps the store at `path` in as the next epoch; see
    /// [`Server::reload`].
    pub fn reload(&self, path: &str) -> Result<u64> {
        self.shared.reload(path)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.current.epoch()
    }

    /// Whether the server is still accepting work.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability handle the server records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The current store epoch (1 until the first successful reload).
    pub fn epoch(&self) -> u64 {
        self.shared.current.epoch()
    }

    /// Loads, validates, and hot-swaps the store file at `path`;
    /// returns the new epoch. A rejected reload (missing file, bad
    /// checksum, non-canonical ordering) leaves the old epoch serving.
    pub fn reload(&self, path: &str) -> Result<u64> {
        self.shared.reload(path)
    }

    /// An admin handle that outlives borrows of the server.
    pub fn reload_handle(&self) -> ReloadHandle {
        ReloadHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests an orderly stop: flips the flag and unblocks the accept
    /// loop with a throwaway connection.
    pub fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Best-effort nudge; if it fails the accept loop is already gone.
        drop(TcpStream::connect(self.addr));
    }

    /// Blocks until the accept loop and every shard supervisor have
    /// exited.
    pub fn wait(mut self) -> Result<()> {
        if let Some(h) = self.accept.take() {
            h.join().map_err(|_| Error::NodeFailure {
                node: 0,
                reason: "server accept thread panicked".into(),
            })?;
        }
        // Retire the shard senders: workers drain their queues and
        // return, supervisors see a clean exit and stop.
        for slot in &self.shared.slots {
            slot.tx.lock().take();
        }
        for (shard, h) in self.supervisors.drain(..).enumerate() {
            h.join().map_err(|_| Error::NodeFailure {
                node: shard,
                reason: "shard supervisor panicked".into(),
            })?;
        }
        Ok(())
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), shards and
/// indexes `store` per `cfg`, and starts serving in the background.
pub fn serve(addr: &str, store: RuleStore, cfg: ServerConfig, obs: Obs) -> Result<Server> {
    let listener = TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| Error::io("reading bound address", e))?;
    let catalog = Catalog::new(store, cfg.shards);
    let num_shards = catalog.num_shards();
    let shared = Arc::new(Shared {
        current: EpochCell::new(catalog),
        slots: (0..num_shards).map(|_| ShardSlot::new()).collect(),
        cfg,
        obs: obs.clone(),
        running: AtomicBool::new(true),
        conns: AtomicU64::new(0),
        reloads: AtomicU64::new(0),
    });

    let mut supervisors = Vec::with_capacity(num_shards);
    for shard in 0..num_shards {
        let shared = Arc::clone(&shared);
        supervisors.push(
            std::thread::Builder::new()
                .name(format!("gar-serve-shard-{shard}"))
                .spawn(move || shard_supervisor(shard, &shared))
                .map_err(|e| Error::io("spawning shard supervisor", e))?,
        );
    }

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gar-serve-accept".into())
            .spawn(move || accept_loop(&listener, &shared))
            .map_err(|e| Error::io("spawning accept thread", e))?
    };

    Ok(Server {
        addr: local,
        shared,
        accept: Some(accept),
        supervisors,
        obs,
    })
}

/// One shard's supervisor: publish a queue, run the worker, and on a
/// panic isolate it, back off, and restart with a fresh queue — up to
/// `max_restarts` times. While the slot holds `None` the shard is down
/// and handlers answer degraded.
fn shard_supervisor(shard: usize, shared: &Shared) {
    let Some(slot) = shared.slots.get(shard) else {
        return;
    };
    let mut restarts = 0usize;
    loop {
        let (tx, rx) = mpsc::sync_channel(shared.cfg.queue_depth.max(1));
        *slot.tx.lock() = Some(tx);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shard_worker(shard, slot, &shared.cfg.faults, &rx, &shared.obs);
        }));
        // Down from here until a restart republishes a sender: clear
        // the slot (new queries skip this shard → degraded) and discard
        // the dead queue's backlog estimate.
        slot.tx.lock().take();
        slot.queued.store(0, Ordering::SeqCst);
        if outcome.is_ok() {
            return; // clean drain: the last sender was retired
        }
        shared
            .obs
            .add("serve.shard_restarts", &[("shard", shard as u64)], 1);
        restarts += 1;
        if restarts > shared.cfg.max_restarts || !shared.running.load(Ordering::SeqCst) {
            return; // out of budget: shard stays down, answers stay degraded
        }
        std::thread::sleep(shared.cfg.restart_backoff * restarts as u32);
    }
}

/// A shard worker incarnation: drains jobs until the current sender is
/// retired, scoring each query against its own slice of the job's
/// epoch snapshot.
fn shard_worker(shard: usize, slot: &ShardSlot, faults: &FaultPlan, rx: &Receiver<Job>, obs: &Obs) {
    let labels = [("shard", shard as u64)];
    while let Ok(job) = rx.recv() {
        let jobno = (slot.jobs.fetch_add(1, Ordering::SeqCst) + 1) as usize;
        if faults.take_serve_shard(ServeFaultOp::ShardStall, shard, jobno) {
            obs.add("serve.fault.shard_stall", &labels, 1);
            std::thread::sleep(faults.hang);
        }
        if faults.take_serve_shard(ServeFaultOp::ShardPanic, shard, jobno) {
            obs.add("serve.fault.shard_panic", &labels, 1);
            // lint:allow(panic-path): this panic *is* the injected
            // fault — the supervisor's catch_unwind is the code under
            // test.
            panic!("injected shard panic: shard {shard} job {jobno}");
        }
        let _span = obs.span(shard as u64, 0, "query");
        let clock = Stopwatch::start();
        let matches = job
            .snapshot
            .value()
            .shard_matches(shard, &job.basket, &job.extended);
        obs.observe(
            "serve.shard_us",
            &labels,
            clock.elapsed().as_micros() as u64,
        );
        obs.add("serve.queries", &labels, 1);
        if matches.is_empty() {
            obs.add("serve.misses", &labels, 1);
        } else {
            obs.add("serve.hits", &labels, 1);
        }
        // A receiver gone mid-collect just means the handler gave up
        // (deadline) or disconnected; the next job is unaffected.
        drop(job.reply.send(matches));
        slot.finish_job();
    }
}

/// The accept loop: tags each connection with its accept-order index
/// (the fault plan's `c` coordinate) and hands it to a detached
/// handler.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while shared.running.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if !shared.running.load(Ordering::SeqCst) {
            break; // The shutdown nudge itself.
        }
        let conn = shared.conns.fetch_add(1, Ordering::SeqCst) as usize;
        let shared = Arc::clone(shared);
        // Detached: the handler exits on EOF, on a fatal frame error,
        // or within one poll interval of the flag flipping.
        drop(
            std::thread::Builder::new()
                .name("gar-serve-conn".into())
                .spawn(move || handle_connection(stream, conn, &shared)),
        );
    }
}

/// How one query ended before response encoding.
enum Answered {
    /// All live shards answered; `missing` counts the dead ones.
    Full { matches: Vec<Match>, missing: u32 },
    /// Shed before any shard work (queue full or budget unmeetable).
    Shed,
    /// The collect deadline expired.
    TimedOut,
}

/// One connection: a loop of request frames until EOF, a fatal framing
/// error, or shutdown.
fn handle_connection(mut stream: TcpStream, conn: usize, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream.set_write_timeout(Some(shared.cfg.deadline)).is_err()
    {
        return;
    }
    // A response is a few small writes (header, payload, checksum);
    // letting Nagle batch them against delayed ACKs costs ~40 ms per
    // round trip on loopback.
    drop(stream.set_nodelay(true));
    let obs = &shared.obs;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(Error::Timeout { .. }) => {
                if shared.running.load(Ordering::SeqCst) {
                    continue; // idle poll tick
                }
                return;
            }
            Err(_) => {
                // Oversize length, bad checksum, mid-frame EOF: the
                // stream is no longer frame-aligned. Best-effort error
                // frame, then drop the connection.
                obs.add("serve.errors", &[], 1);
                let resp = encode_response(&Response::Error("malformed frame".into()));
                drop(write_frame(&mut stream, &resp));
                return;
            }
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame was well-formed (checksum passed), so the
                // stream is still aligned: report and keep serving.
                obs.add("serve.errors", &[], 1);
                let resp = encode_response(&Response::Error(e.to_string()));
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        if shared
            .cfg
            .faults
            .take_serve_conn(ServeFaultOp::ConnReset, conn)
        {
            // Injected reset: the request was read but the connection
            // dies before a single response byte — the client must
            // reconnect and retry.
            obs.add("serve.fault.conn_reset", &[], 1);
            return;
        }
        let response = match request {
            Request::Query { basket, top_k } => Some(answer_query(shared, basket, top_k, 0, false)),
            Request::QueryV2 {
                version,
                basket,
                top_k,
                budget_ms,
            } => {
                if version != PROTOCOL_VERSION {
                    obs.add("serve.version_mismatch", &[], 1);
                    Some(Response::VersionMismatch {
                        server: PROTOCOL_VERSION,
                        client: version,
                    })
                } else {
                    Some(answer_query(shared, basket, top_k, budget_ms, true))
                }
            }
            Request::Reload { version, path } => {
                if version != PROTOCOL_VERSION {
                    obs.add("serve.version_mismatch", &[], 1);
                    Some(Response::VersionMismatch {
                        server: PROTOCOL_VERSION,
                        client: version,
                    })
                } else {
                    Some(match shared.reload(&path) {
                        Ok(epoch) => Response::ReloadAck { epoch },
                        Err(e) => {
                            obs.add("serve.errors", &[], 1);
                            Response::Error(format!("reload rejected: {e}"))
                        }
                    })
                }
            }
            Request::Shutdown => {
                let ack = encode_response(&Response::ShutdownAck);
                drop(write_frame(&mut stream, &ack));
                shared.running.store(false, Ordering::SeqCst);
                if let Ok(addr) = stream.local_addr() {
                    drop(TcpStream::connect(addr)); // nudge the accept loop
                }
                return;
            }
        };
        let Some(response) = response else { continue };
        if write_response(&mut stream, conn, shared, &response).is_err() {
            return;
        }
    }
}

/// Writes one response frame, honoring a scheduled `slow-frame` fault
/// by dribbling the bytes out in small delayed chunks (the client-side
/// frame reader must reassemble partial writes).
fn write_response(
    stream: &mut TcpStream,
    conn: usize,
    shared: &Shared,
    response: &Response,
) -> Result<()> {
    if !shared
        .cfg
        .faults
        .take_serve_conn(ServeFaultOp::SlowFrame, conn)
    {
        return write_frame(stream, &encode_response(response));
    }
    shared.obs.add("serve.fault.slow_frame", &[], 1);
    let mut framed = Vec::new();
    write_frame(&mut framed, &encode_response(response))?;
    let io = |e| Error::io("writing slow frame", e);
    for chunk in framed.chunks(3) {
        stream.write_all(chunk).map_err(io)?;
        stream.flush().map_err(io)?;
        std::thread::sleep(shared.cfg.faults.delay);
    }
    Ok(())
}

/// Runs one query end to end against a single epoch snapshot and
/// shapes the response for the requested protocol generation.
fn answer_query(
    shared: &Shared,
    basket: Vec<ItemId>,
    top_k: u32,
    budget_ms: u32,
    v2: bool,
) -> Response {
    let obs = &shared.obs;
    let clock = Stopwatch::start();
    obs.add("serve.requests", &[], 1);
    let snapshot = shared.current.load();
    let response = match run_query(shared, &snapshot, basket, budget_ms) {
        Answered::Full { matches, missing } => {
            let recs = snapshot.value().merge(matches, top_k as usize);
            if missing > 0 {
                obs.add("serve.degraded", &[], 1);
            }
            if v2 {
                Response::ResultsV2 {
                    epoch: snapshot.number(),
                    shards_missing: missing,
                    recs,
                }
            } else {
                Response::Results(recs)
            }
        }
        Answered::Shed => {
            obs.add("serve.shed", &[], 1);
            let retry_after_ms = shared.cfg.retry_after_ms;
            if v2 {
                Response::Overloaded { retry_after_ms }
            } else {
                Response::Error(format!("overloaded: retry after {retry_after_ms} ms"))
            }
        }
        Answered::TimedOut if v2 => {
            // The backlog outran the client's budget: typed and
            // retryable, exactly like a shed before dispatch.
            obs.add("serve.shed", &[], 1);
            Response::Overloaded {
                retry_after_ms: shared.cfg.retry_after_ms,
            }
        }
        Answered::TimedOut => {
            obs.add("serve.errors", &[], 1);
            let e = Error::Timeout {
                node: 0,
                op: "shard-collect".into(),
            };
            Response::Error(e.to_string())
        }
    };
    obs.observe("serve.latency_us", &[], clock.elapsed().as_micros() as u64);
    response
}

/// Fans one query out to every live shard and collects the answers
/// under the deadline. Dead shards (no published sender, or a crash
/// mid-collect) are counted as missing rather than failing the query;
/// a queue that cannot take the job — or a backlog the budget cannot
/// cover — sheds it.
fn run_query(
    shared: &Shared,
    snapshot: &Arc<Epoch<Catalog>>,
    basket: Vec<ItemId>,
    budget_ms: u32,
) -> Answered {
    let catalog = snapshot.value();
    let basket = Arc::new(basket);
    let extended = Arc::new(catalog.extend_basket(&basket));
    let deadline = if budget_ms == 0 {
        shared.cfg.deadline
    } else {
        shared
            .cfg
            .deadline
            .min(Duration::from_millis(budget_ms as u64))
    };
    if budget_ms > 0 {
        let backlog = shared
            .slots
            .iter()
            .map(|s| s.queued.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0) as u64;
        if (backlog + 1).saturating_mul(shared.cfg.est_job_ms) > budget_ms as u64 {
            return Answered::Shed;
        }
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut dispatched = 0usize;
    let mut missing = 0u32;
    for slot in &shared.slots {
        let job = Job {
            snapshot: Arc::clone(snapshot),
            basket: Arc::clone(&basket),
            extended: Arc::clone(&extended),
            reply: reply_tx.clone(),
        };
        slot.queued.fetch_add(1, Ordering::SeqCst);
        // The guard is held across try_send only, which never blocks.
        let sent = match slot.tx.lock().as_ref() {
            Some(tx) => tx.try_send(job),
            None => Err(TrySendError::Disconnected(job)),
        };
        match sent {
            Ok(()) => dispatched += 1,
            Err(TrySendError::Full(_)) => {
                slot.finish_job();
                return Answered::Shed;
            }
            Err(TrySendError::Disconnected(_)) => {
                // Shard down (crashed, restarting, or out of budget):
                // answer without it.
                slot.finish_job();
                missing += 1;
            }
        }
    }
    drop(reply_tx);
    let mut matches = Vec::new();
    let mut collected = 0usize;
    while collected < dispatched {
        match reply_rx.recv_timeout(deadline) {
            Ok(mut m) => {
                matches.append(&mut m);
                collected += 1;
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Every outstanding job's worker died before replying.
                missing += (dispatched - collected) as u32;
                break;
            }
            Err(RecvTimeoutError::Timeout) => {
                shared.obs.add("serve.deadline_exceeded", &[], 1);
                return Answered::TimedOut;
            }
        }
    }
    Answered::Full { matches, missing }
}
