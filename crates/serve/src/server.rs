//! The sharded concurrent query server.
//!
//! Topology: one blocking accept loop, one detached handler thread per
//! connection, and one long-lived worker thread per shard. A handler
//! parses a query, extends the basket once, fans the job out to every
//! shard worker over an `mpsc` channel, and collects the shard-local
//! match lists under the configured deadline before merging them into
//! the final answer — the serving-tier mirror of H-HPGM's
//! scatter/gather pass structure.
//!
//! Observability: each shard worker opens a `query` span per job (lane
//! = shard id) and feeds per-shard counters (`serve.queries`,
//! `serve.hits`, `serve.misses`) and the `serve.shard_us` latency
//! histogram; handlers record request-level `serve.requests`,
//! `serve.latency_us`, `serve.errors`, and `serve.deadline_exceeded`.
//!
//! Shutdown: a `Shutdown` frame (or [`Server::shutdown`]) flips the
//! shared `running` flag and nudges the accept loop with a throwaway
//! self-connection; handlers poll the flag every ~100 ms via their
//! socket read deadline, and shard workers exit once the last job
//! sender is gone. [`Server::wait`] joins everything.

use crate::engine::{Catalog, Match};
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response,
};
use crate::store::RuleStore;
use gar_obs::{Obs, Stopwatch};
use gar_types::{Error, ItemId, Result};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a connection handler re-checks the shutdown flag while
/// blocked waiting for the next request frame.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of rule shards (and shard worker threads); clamped ≥ 1.
    pub shards: usize,
    /// Deadline for collecting all shard answers to one query.
    pub deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 1,
            deadline: Duration::from_secs(5),
        }
    }
}

/// One unit of shard work: a parsed query plus the reply channel.
struct Job {
    basket: Arc<Vec<ItemId>>,
    extended: Arc<Vec<ItemId>>,
    reply: Sender<Vec<Match>>,
}

/// A running server; dropping it does *not* stop the threads — call
/// [`Server::shutdown`] then [`Server::wait`] (or send a `Shutdown`
/// frame) for an orderly exit.
pub struct Server {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    obs: Obs,
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability handle the server records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Requests an orderly stop: flips the flag and unblocks the accept
    /// loop with a throwaway connection.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        // Best-effort nudge; if it fails the accept loop is already gone.
        drop(TcpStream::connect(self.addr));
    }

    /// Blocks until the accept loop and every shard worker have exited.
    pub fn wait(mut self) -> Result<()> {
        if let Some(h) = self.accept.take() {
            h.join().map_err(|_| Error::NodeFailure {
                node: 0,
                reason: "server accept thread panicked".into(),
            })?;
        }
        for (shard, h) in self.workers.drain(..).enumerate() {
            h.join().map_err(|_| Error::NodeFailure {
                node: shard,
                reason: "shard worker panicked".into(),
            })?;
        }
        Ok(())
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), shards and
/// indexes `store` per `cfg`, and starts serving in the background.
pub fn serve(addr: &str, store: RuleStore, cfg: ServerConfig, obs: Obs) -> Result<Server> {
    let listener = TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| Error::io("reading bound address", e))?;
    let catalog = Arc::new(Catalog::new(store, cfg.shards));
    let running = Arc::new(AtomicBool::new(true));

    let mut senders = Vec::with_capacity(catalog.num_shards());
    let mut workers = Vec::with_capacity(catalog.num_shards());
    for shard in 0..catalog.num_shards() {
        let (tx, rx) = mpsc::channel::<Job>();
        senders.push(tx);
        let catalog = Arc::clone(&catalog);
        let obs = obs.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("gar-serve-shard-{shard}"))
                .spawn(move || shard_worker(shard, &catalog, &rx, &obs))
                .map_err(|e| Error::io("spawning shard worker", e))?,
        );
    }

    let accept = {
        let running = Arc::clone(&running);
        let catalog = Arc::clone(&catalog);
        let obs = obs.clone();
        std::thread::Builder::new()
            .name("gar-serve-accept".into())
            .spawn(move || accept_loop(&listener, &running, &catalog, &senders, cfg, &obs))
            .map_err(|e| Error::io("spawning accept thread", e))?
    };

    Ok(Server {
        addr: local,
        running,
        accept: Some(accept),
        workers,
        obs,
    })
}

/// A shard worker: drains jobs until the last sender drops, scoring
/// each query against its own slice of the rule set.
fn shard_worker(shard: usize, catalog: &Catalog, rx: &Receiver<Job>, obs: &Obs) {
    let labels = [("shard", shard as u64)];
    while let Ok(job) = rx.recv() {
        let _span = obs.span(shard as u64, 0, "query");
        let clock = Stopwatch::start();
        let matches = catalog.shard_matches(shard, &job.basket, &job.extended);
        obs.observe(
            "serve.shard_us",
            &labels,
            clock.elapsed().as_micros() as u64,
        );
        obs.add("serve.queries", &labels, 1);
        if matches.is_empty() {
            obs.add("serve.misses", &labels, 1);
        } else {
            obs.add("serve.hits", &labels, 1);
        }
        // A receiver gone mid-collect just means the handler gave up
        // (deadline) or disconnected; the next job is unaffected.
        drop(job.reply.send(matches));
    }
}

/// The accept loop. Owns the primary clone of every shard sender, so
/// workers cannot outlive it by more than the open connections.
fn accept_loop(
    listener: &TcpListener,
    running: &Arc<AtomicBool>,
    catalog: &Arc<Catalog>,
    senders: &[Sender<Job>],
    cfg: ServerConfig,
    obs: &Obs,
) {
    while running.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if !running.load(Ordering::SeqCst) {
            break; // The shutdown nudge itself.
        }
        let running = Arc::clone(running);
        let catalog = Arc::clone(catalog);
        let senders = senders.to_vec();
        let obs = obs.clone();
        // Detached: the handler exits on EOF, on a fatal frame error,
        // or within one poll interval of the flag flipping.
        drop(
            std::thread::Builder::new()
                .name("gar-serve-conn".into())
                .spawn(move || handle_connection(stream, &running, &catalog, &senders, cfg, &obs)),
        );
    }
}

/// One connection: a loop of request frames until EOF, a fatal framing
/// error, or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    running: &AtomicBool,
    catalog: &Catalog,
    senders: &[Sender<Job>],
    cfg: ServerConfig,
    obs: &Obs,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream.set_write_timeout(Some(cfg.deadline)).is_err()
    {
        return;
    }
    // A response is a few small writes (header, payload, checksum);
    // letting Nagle batch them against delayed ACKs costs ~40 ms per
    // round trip on loopback.
    drop(stream.set_nodelay(true));
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(Error::Timeout { .. }) => {
                if running.load(Ordering::SeqCst) {
                    continue; // idle poll tick
                }
                return;
            }
            Err(_) => {
                // Oversize length, bad checksum, mid-frame EOF: the
                // stream is no longer frame-aligned. Best-effort error
                // frame, then drop the connection.
                obs.add("serve.errors", &[], 1);
                let resp = encode_response(&Response::Error("malformed frame".into()));
                drop(write_frame(&mut stream, &resp));
                return;
            }
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame was well-formed (checksum passed), so the
                // stream is still aligned: report and keep serving.
                obs.add("serve.errors", &[], 1);
                let resp = encode_response(&Response::Error(e.to_string()));
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Query { basket, top_k } => {
                let clock = Stopwatch::start();
                obs.add("serve.requests", &[], 1);
                let response = match run_query(catalog, senders, cfg.deadline, basket, obs) {
                    Ok(matches) => Response::Results(catalog.merge(matches, top_k as usize)),
                    Err(e) => {
                        obs.add("serve.errors", &[], 1);
                        Response::Error(e.to_string())
                    }
                };
                obs.observe("serve.latency_us", &[], clock.elapsed().as_micros() as u64);
                if write_frame(&mut stream, &encode_response(&response)).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let ack = encode_response(&Response::ShutdownAck);
                drop(write_frame(&mut stream, &ack));
                running.store(false, Ordering::SeqCst);
                if let Ok(addr) = stream.local_addr() {
                    drop(TcpStream::connect(addr)); // nudge the accept loop
                }
                return;
            }
        }
    }
}

/// Fans one query out to every shard and collects the answers under
/// `deadline`. A missed deadline is the workspace's retryable
/// [`Error::Timeout`], exactly like a hung peer in the mining cluster.
fn run_query(
    catalog: &Catalog,
    senders: &[Sender<Job>],
    deadline: Duration,
    basket: Vec<ItemId>,
    obs: &Obs,
) -> Result<Vec<Match>> {
    let basket = Arc::new(basket);
    let extended = Arc::new(catalog.extend_basket(&basket));
    let (reply_tx, reply_rx) = mpsc::channel();
    for tx in senders {
        let job = Job {
            basket: Arc::clone(&basket),
            extended: Arc::clone(&extended),
            reply: reply_tx.clone(),
        };
        tx.send(job).map_err(|_| Error::NodeFailure {
            node: 0,
            reason: "shard worker exited".into(),
        })?;
    }
    drop(reply_tx);
    let mut matches = Vec::new();
    for _ in 0..senders.len() {
        match reply_rx.recv_timeout(deadline) {
            Ok(mut m) => matches.append(&mut m),
            Err(_) => {
                obs.add("serve.deadline_exceeded", &[], 1);
                return Err(Error::Timeout {
                    node: 0,
                    op: "shard-collect".into(),
                });
            }
        }
    }
    Ok(matches)
}
