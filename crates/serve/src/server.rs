//! The sharded, supervised, hot-swappable query server — built around a
//! single non-blocking readiness event loop.
//!
//! Topology: **one** event-loop thread owns the listener, every
//! connection, and all protocol state; one **supervisor** thread per
//! shard owns that shard's bounded job queue exactly as before (publish
//! a fresh sender, run the worker under `catch_unwind`, clear the slot
//! and restart with backoff on a panic). The per-connection handler
//! threads of the previous design are gone: sockets are non-blocking,
//! readiness comes from the hand-rolled [`crate::netpoll`] `poll(2)`
//! shim, and partial frames reassemble in [`FrameBuffer`] (the codec
//! file, so the `no-raw-net` lint still sees every stream read in one
//! place). Shard workers hand finished jobs back over an mpsc
//! completion channel and nudge the loop through a loopback waker
//! socket pair (coalesced by an atomic flag).
//!
//! Requests **pipeline**: a connection may send any number of frames
//! without waiting; responses are queued per connection in request
//! order (a slot is reserved when the request is admitted and filled
//! when its shard jobs complete), so concurrent queries on one socket
//! never reorder.
//!
//! Routing: rules are placed by the root-item hash of their
//! **antecedent**, so a basket whose (known) items share one root —
//! which generalization can never change — can only match rules on that
//! one shard ([`Catalog::route`]). Single-root baskets therefore
//! dispatch exactly one job; fan-out is reserved for multi-root
//! baskets. Batched requests (`QueryBatch`) group their baskets by
//! routed shard into **one job per (request, shard)**, amortizing queue
//! and wake overhead across the whole batch.
//!
//! Hot answers: an optional bounded FIFO cache
//! ([`ServerConfig::cache_capacity`], default off) keyed by canonical
//! basket bytes **plus the epoch number and top-k**, so a reload
//! invalidates by construction — an epoch-2 lookup can never see an
//! epoch-1 answer. Only complete (no shard missing) answers are
//! cached; `serve.cache.{hits,misses}` count every lookup.
//!
//! Rule refresh: the catalog lives in an [`EpochCell`]. A request takes
//! one snapshot and every job carries it, so a query observes exactly
//! one epoch end to end; `Reload` builds and validates the replacement
//! outside the lock and swaps it as `epoch + 1` while in-flight
//! queries drain on their snapshots. A rejected reload (missing file,
//! checksum, ordering) leaves the old epoch serving.
//!
//! Overload: shard queues are bounded ([`ServerConfig::queue_depth`]).
//! A full queue — or a deadline budget the backlog cannot meet
//! (`(backlog + jobs) × est_job_ms > budget_ms`) — sheds the whole
//! request *before* shard work with the typed retryable
//! `Response::Overloaded`.
//!
//! Fault injection: the serve-side tokens of a
//! [`gar_cluster::FaultPlan`] (`conn-reset@cN`, `slow-frame@cN`,
//! `shard-panic@sNqM`, `shard-stall@sNqM`, `stale-swap@rN`) are
//! consulted at the same connection / shard-job / reload points as
//! before; the shard fault `q` coordinate counts **jobs**, so a batch
//! is one unit exactly like a single query.
//!
//! Observability: everything the thread-per-connection server recorded
//! (`serve.requests/queries/hits/misses/shard_us/latency_us/errors/
//! deadline_exceeded/shed/degraded/swaps/swap_rejected/shard_restarts/
//! version_mismatch/fault.*`) plus `serve.baskets`,
//! `serve.routed.{single,fanout,empty}` and `serve.cache.{hits,misses}`.
//!
//! Shutdown: a `Shutdown` frame (or [`Server::shutdown`]) flips the
//! shared `running` flag (the handle also nudges the waker); the loop
//! stops accepting and reading, drains in-flight requests and output
//! buffers, and exits. [`Server::wait`] joins the loop, retires the
//! shard senders so workers drain, and joins the supervisors.

use crate::engine::{Catalog, Match, Recommendation, Route};
use crate::epoch::{Epoch, EpochCell};
use crate::netpoll::{Interest, Poller, Readiness};
use crate::protocol::{
    decode_request, drain_ready, encode_response, write_frame, BatchAnswer, FillStatus,
    FrameBuffer, Request, Response, PROTOCOL_VERSION,
};
use crate::store::RuleStore;
use crate::sync::Mutex;
use gar_cluster::{FaultPlan, ServeFaultOp};
use gar_obs::{Obs, Stopwatch};
use gar_types::{Error, ItemId, Result};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::io::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on one poll tick while idle; the loop re-checks the
/// shutdown flag at least this often.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A dispatched basket and its ancestor extension, shared across every
/// shard job that carries it.
type SharedBasket = (Arc<Vec<ItemId>>, Arc<Vec<ItemId>>);

#[cfg(unix)]
fn raw_fd<T: AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    0
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of rule shards (and shard worker threads); clamped ≥ 1.
    pub shards: usize,
    /// Deadline for collecting all shard answers to one request.
    pub deadline: Duration,
    /// Bound on each shard's job queue; a full queue sheds the request.
    /// Clamped ≥ 1.
    pub queue_depth: usize,
    /// Rough per-job cost used by deadline-budget admission: a request
    /// whose `budget_ms` cannot cover `(backlog + jobs) × est_job_ms`
    /// is shed instead of queued.
    pub est_job_ms: u64,
    /// Backoff suggested to shed clients.
    pub retry_after_ms: u32,
    /// How many times a crashed shard worker is restarted before the
    /// shard is left down (answers stay degraded).
    pub max_restarts: usize,
    /// Base of the supervisor's linear restart backoff (sleep before
    /// restart `k` is `restart_backoff × k`).
    pub restart_backoff: Duration,
    /// Hot-answer cache capacity in entries; 0 (the default) disables
    /// the cache. Keys embed the epoch, so a reload invalidates
    /// logically at once and stale entries age out FIFO.
    pub cache_capacity: usize,
    /// Serve-side fault injection points (empty plan = no faults).
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 1,
            deadline: Duration::from_secs(5),
            queue_depth: 64,
            est_job_ms: 1,
            retry_after_ms: 25,
            max_restarts: 8,
            restart_backoff: Duration::from_millis(10),
            cache_capacity: 0,
            faults: FaultPlan::default(),
        }
    }
}

/// One basket inside a shard job: which answer slot it belongs to and
/// the (shared) basket plus its ancestor extension.
struct JobItem {
    index: usize,
    basket: Arc<Vec<ItemId>>,
    extended: Arc<Vec<ItemId>>,
}

/// One unit of shard work: every basket of one request routed to this
/// shard, the epoch snapshot they run against, and the completion
/// guard. Batches ride in one job so queue overhead is per
/// (request, shard), not per basket.
struct Job {
    snapshot: Arc<Epoch<Catalog>>,
    items: Vec<JobItem>,
    guard: ReplyGuard,
}

/// What a shard worker hands back to the event loop. `results` is
/// `None` when the job died before scoring (worker panic, queue
/// discarded) — the guard's `Drop` posts it so a job can never vanish
/// silently.
struct Completion {
    req: u64,
    shard: usize,
    results: Option<Vec<(usize, Vec<Match>)>>,
}

/// Completion bookkeeping that must fire exactly once per dispatched
/// job, on every path: success posts the scored results, a panic or a
/// dropped queue posts a failure from `Drop`. Both release the shard's
/// backlog slot and nudge the event loop awake.
struct ReplyGuard {
    shared: Arc<Shared>,
    tx: Sender<Completion>,
    req: u64,
    shard: usize,
    armed: bool,
}

impl ReplyGuard {
    fn complete(mut self, results: Vec<(usize, Vec<Match>)>) {
        self.armed = false;
        // A dead receiver means the loop is gone; accounting still runs.
        drop(self.tx.send(Completion {
            req: self.req,
            shard: self.shard,
            results: Some(results),
        }));
        self.settle();
    }

    /// The job was never handed to a worker (queue full / shard down):
    /// release the backlog slot without posting a completion — the
    /// dispatcher does its own accounting on those paths.
    fn abandon(mut self) {
        self.armed = false;
        if let Some(slot) = self.shared.slots.get(self.shard) {
            slot.finish_job();
        }
    }

    fn settle(&self) {
        if let Some(slot) = self.shared.slots.get(self.shard) {
            slot.finish_job();
        }
        self.shared.wake();
    }
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        if self.armed {
            drop(self.tx.send(Completion {
                req: self.req,
                shard: self.shard,
                results: None,
            }));
            self.settle();
        }
    }
}

/// One shard's supervised queue endpoint. The slot holds the *current*
/// worker incarnation's sender; `None` while the shard is down
/// (crashed and not yet restarted, out of restart budget, or shutting
/// down).
struct ShardSlot {
    tx: Mutex<Option<SyncSender<Job>>>,
    /// Jobs admitted but not yet finished (backlog estimate for
    /// admission control).
    queued: AtomicUsize,
    /// Jobs handed to a worker over the shard's lifetime, counted
    /// across restarts — the `q` coordinate of shard fault tokens.
    jobs: AtomicU64,
}

impl ShardSlot {
    fn new() -> ShardSlot {
        ShardSlot {
            tx: Mutex::new(None),
            queued: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    fn finish_job(&self) {
        // Saturating: `queued` is reset to 0 when a crashed worker's
        // queue is discarded, so a late decrement must not wrap.
        let _ = self
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| {
                Some(q.saturating_sub(1))
            });
    }
}

/// State shared by the event loop, shard supervisors/workers, and admin
/// reload paths.
struct Shared {
    current: EpochCell<Catalog>,
    slots: Vec<ShardSlot>,
    cfg: ServerConfig,
    obs: Obs,
    running: AtomicBool,
    /// Accepted connections, in accept order — the `c` coordinate of
    /// connection fault tokens. The waker pair uses its own throwaway
    /// listener, so it never consumes a number.
    conns: AtomicU64,
    /// Reload attempts, 1-based — the `r` coordinate of `stale-swap`.
    reloads: AtomicU64,
    /// Write end of the event loop's waker socket pair.
    wake_tx: TcpStream,
    /// Coalesces wake bytes: set before writing, cleared by the loop
    /// *before* draining, so a wake can park at most one byte.
    wake_pending: AtomicBool,
}

impl Shared {
    /// Nudges the event loop out of `poll`. Coalesced: while a nudge is
    /// already pending no byte is written, so workers can wake at full
    /// rate without ever backing up the pipe.
    fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::SeqCst) {
            let mut tx = &self.wake_tx;
            drop(tx.write(&[1u8]));
            drop(tx.flush());
        }
    }

    /// Loads, validates, and swaps in the store at `path`. On any
    /// failure the current epoch keeps serving and the error reports
    /// why the swap was rejected.
    fn reload(&self, path: &str) -> Result<u64> {
        let attempt = self.reloads.fetch_add(1, Ordering::SeqCst) + 1;
        let result = self.reload_attempt(path, attempt as usize);
        match &result {
            Ok(_) => self.obs.add("serve.swaps", &[], 1),
            Err(_) => self.obs.add("serve.swap_rejected", &[], 1),
        }
        result
    }

    fn reload_attempt(&self, path: &str, attempt: usize) -> Result<u64> {
        let mut bytes = std::fs::read(path)
            .map_err(|e| Error::io(format!("reading store for reload: {path}"), e))?;
        if self.cfg.faults.take_serve_reload(attempt) {
            // Injected stale swap: damage the image after the read but
            // before validation — decode must reject it.
            self.obs.add("serve.fault.stale_swap", &[], 1);
            let mid = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(mid) {
                *b ^= 0xFF;
            }
        }
        let store = crate::store::decode(&bytes)?;
        let num_shards = self.current.load().value().num_shards();
        let catalog = Catalog::new(store, num_shards);
        Ok(self.current.swap(catalog))
    }
}

/// A running server; dropping it does *not* stop the threads — call
/// [`Server::shutdown`] then [`Server::wait`] (or send a `Shutdown`
/// frame) for an orderly exit.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    driver: Option<JoinHandle<()>>,
    supervisors: Vec<JoinHandle<()>>,
    obs: Obs,
}

/// A cloneable admin handle onto a running server: reload the store
/// and read the current epoch without holding the [`Server`] itself
/// (e.g. from the CLI's `--watch-store` poller thread).
#[derive(Clone)]
pub struct ReloadHandle {
    shared: Arc<Shared>,
}

impl ReloadHandle {
    /// Hot-swaps the store at `path` in as the next epoch; see
    /// [`Server::reload`].
    pub fn reload(&self, path: &str) -> Result<u64> {
        self.shared.reload(path)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.current.epoch()
    }

    /// Whether the server is still accepting work.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability handle the server records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The current store epoch (1 until the first successful reload).
    pub fn epoch(&self) -> u64 {
        self.shared.current.epoch()
    }

    /// Loads, validates, and hot-swaps the store file at `path`;
    /// returns the new epoch. A rejected reload (missing file, bad
    /// checksum, non-canonical ordering) leaves the old epoch serving.
    pub fn reload(&self, path: &str) -> Result<u64> {
        self.shared.reload(path)
    }

    /// An admin handle that outlives borrows of the server.
    pub fn reload_handle(&self) -> ReloadHandle {
        ReloadHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests an orderly stop: flips the flag and nudges the event
    /// loop awake through the waker pipe.
    pub fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        self.shared.wake();
    }

    /// Blocks until the event loop and every shard supervisor have
    /// exited.
    pub fn wait(mut self) -> Result<()> {
        if let Some(h) = self.driver.take() {
            h.join().map_err(|_| Error::NodeFailure {
                node: 0,
                reason: "server event loop panicked".into(),
            })?;
        }
        // Retire the shard senders: workers drain their queues and
        // return, supervisors see a clean exit and stop.
        for slot in &self.shared.slots {
            slot.tx.lock().take();
        }
        for (shard, h) in self.supervisors.drain(..).enumerate() {
            h.join().map_err(|_| Error::NodeFailure {
                node: shard,
                reason: "shard supervisor panicked".into(),
            })?;
        }
        Ok(())
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), shards and
/// indexes `store` per `cfg`, and starts serving in the background.
pub fn serve(addr: &str, store: RuleStore, cfg: ServerConfig, obs: Obs) -> Result<Server> {
    let listener = TcpListener::bind(addr).map_err(|e| Error::io(format!("binding {addr}"), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| Error::io("reading bound address", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| Error::io("setting listener non-blocking", e))?;

    // The waker pair: a loopback connection to ourselves on a throwaway
    // listener (so it never consumes a fault-plan `c` coordinate).
    // Workers write a byte, poll reports the read end ready, the loop
    // drains it.
    fn wake_io(what: &'static str) -> impl FnOnce(std::io::Error) -> Error {
        move |e| Error::io(format!("waker setup: {what}"), e)
    }
    let wake_listener = TcpListener::bind("127.0.0.1:0").map_err(wake_io("bind"))?;
    let wake_addr = wake_listener.local_addr().map_err(wake_io("local addr"))?;
    let wake_tx = TcpStream::connect(wake_addr).map_err(wake_io("connect"))?;
    let (wake_rx, _) = wake_listener.accept().map_err(wake_io("accept"))?;
    wake_rx
        .set_nonblocking(true)
        .map_err(wake_io("non-blocking"))?;
    drop(wake_listener);

    let catalog = Catalog::new(store, cfg.shards);
    let num_shards = catalog.num_shards();
    let cache_capacity = cfg.cache_capacity;
    let shared = Arc::new(Shared {
        current: EpochCell::new(catalog),
        slots: (0..num_shards).map(|_| ShardSlot::new()).collect(),
        cfg,
        obs: obs.clone(),
        running: AtomicBool::new(true),
        conns: AtomicU64::new(0),
        reloads: AtomicU64::new(0),
        wake_tx,
        wake_pending: AtomicBool::new(false),
    });

    let mut supervisors = Vec::with_capacity(num_shards);
    for shard in 0..num_shards {
        let shared = Arc::clone(&shared);
        supervisors.push(
            std::thread::Builder::new()
                .name(format!("gar-serve-shard-{shard}"))
                .spawn(move || shard_supervisor(shard, &shared))
                .map_err(|e| Error::io("spawning shard supervisor", e))?,
        );
    }

    let (comp_tx, comp_rx) = mpsc::channel();
    let driver = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gar-serve-loop".into())
            .spawn(move || {
                EventLoop {
                    shared,
                    listener,
                    wake_rx,
                    comp_tx,
                    comp_rx,
                    conns: Vec::new(),
                    pending: HashMap::new(),
                    next_req: 1,
                    cache: AnswerCache::new(cache_capacity),
                    poller: Poller::new(),
                    draining: false,
                }
                .run()
            })
            .map_err(|e| Error::io("spawning event loop", e))?
    };

    Ok(Server {
        addr: local,
        shared,
        driver: Some(driver),
        supervisors,
        obs,
    })
}

/// One shard's supervisor: publish a queue, run the worker, and on a
/// panic isolate it, back off, and restart with a fresh queue — up to
/// `max_restarts` times. While the slot holds `None` the shard is down
/// and requests are answered degraded.
fn shard_supervisor(shard: usize, shared: &Arc<Shared>) {
    let Some(slot) = shared.slots.get(shard) else {
        return;
    };
    let mut restarts = 0usize;
    loop {
        let (tx, rx) = mpsc::sync_channel(shared.cfg.queue_depth.max(1));
        *slot.tx.lock() = Some(tx);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shard_worker(shard, slot, &shared.cfg.faults, &rx, &shared.obs);
        }));
        // Down from here until a restart republishes a sender: clear
        // the slot (new requests skip this shard → degraded) and
        // discard the dead queue's backlog estimate. Queued jobs drop
        // with the queue; their guards post failure completions.
        slot.tx.lock().take();
        slot.queued.store(0, Ordering::SeqCst);
        if outcome.is_ok() {
            return; // clean drain: the last sender was retired
        }
        shared
            .obs
            .add("serve.shard_restarts", &[("shard", shard as u64)], 1);
        restarts += 1;
        if restarts > shared.cfg.max_restarts || !shared.running.load(Ordering::SeqCst) {
            return; // out of budget: shard stays down, answers stay degraded
        }
        std::thread::sleep(shared.cfg.restart_backoff * restarts as u32);
    }
}

/// A shard worker incarnation: drains jobs until the current sender is
/// retired, scoring every basket of each job against its own slice of
/// the job's epoch snapshot. Per-basket counters keep their historical
/// meaning (one `serve.queries` per basket scored); fault tokens count
/// whole jobs.
fn shard_worker(shard: usize, slot: &ShardSlot, faults: &FaultPlan, rx: &Receiver<Job>, obs: &Obs) {
    let labels = [("shard", shard as u64)];
    while let Ok(job) = rx.recv() {
        let jobno = (slot.jobs.fetch_add(1, Ordering::SeqCst) + 1) as usize;
        if faults.take_serve_shard(ServeFaultOp::ShardStall, shard, jobno) {
            obs.add("serve.fault.shard_stall", &labels, 1);
            std::thread::sleep(faults.hang);
        }
        if faults.take_serve_shard(ServeFaultOp::ShardPanic, shard, jobno) {
            obs.add("serve.fault.shard_panic", &labels, 1);
            // lint:allow(panic-path): this panic *is* the injected
            // fault — the supervisor's catch_unwind is the code under
            // test. The job's guard posts the failure completion from
            // its Drop during unwind.
            panic!("injected shard panic: shard {shard} job {jobno}");
        }
        let _span = obs.span(shard as u64, 0, "query");
        let mut results = Vec::with_capacity(job.items.len());
        for item in &job.items {
            let clock = Stopwatch::start();
            let matches = job
                .snapshot
                .value()
                .shard_matches(shard, &item.basket, &item.extended);
            obs.observe(
                "serve.shard_us",
                &labels,
                clock.elapsed().as_micros() as u64,
            );
            obs.add("serve.queries", &labels, 1);
            if matches.is_empty() {
                obs.add("serve.misses", &labels, 1);
            } else {
                obs.add("serve.hits", &labels, 1);
            }
            results.push((item.index, matches));
        }
        job.guard.complete(results);
    }
}

/// Which protocol generation shaped a request (and so its response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    V1,
    V2,
    Batch,
}

/// Per-basket scoring state inside a pending request.
#[derive(Default)]
struct BasketState {
    /// Cache key to fill on a complete answer (`None` when the cache is
    /// off, the lookup hit, or the basket routed `Empty`).
    key: Option<Vec<u8>>,
    /// Pre-resolved answer (cache hit or empty route): `(recs, missing)`.
    ready: Option<(Vec<Recommendation>, u32)>,
    /// Shard matches accumulated so far.
    matches: Vec<Match>,
    /// Shards that should have scored this basket but died.
    missing: u32,
}

/// One admitted request waiting on shard completions.
struct Pending {
    /// Owning connection id (not index — indices shift as conns close).
    conn: u64,
    shape: Shape,
    top_k: usize,
    snapshot: Arc<Epoch<Catalog>>,
    clock: Stopwatch,
    deadline: Duration,
    expected: usize,
    done: usize,
    /// Which basket indices each dispatched shard job covers, so a
    /// failure completion can charge `missing` to exactly those.
    jobs: Vec<(usize, Vec<usize>)>,
    baskets: Vec<BasketState>,
}

/// An entry in a connection's ordered response queue: responses go out
/// in request order, so a slot is reserved at admission and filled at
/// completion.
enum RespSlot {
    Ready(Vec<u8>),
    Waiting(u64),
}

/// One live connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Accept-order id — the fault plan's `c` coordinate.
    id: u64,
    inbuf: FrameBuffer,
    outbuf: Vec<u8>,
    resp: VecDeque<RespSlot>,
    /// No more frames will be read (EOF, shutdown, or framing error);
    /// the conn closes once its response queue and out buffer drain.
    read_shut: bool,
    dead: bool,
}

/// The bounded hot-answer FIFO cache. Keys embed the epoch, so entries
/// from a replaced epoch can never be returned; they just age out.
struct AnswerCache {
    capacity: usize,
    map: HashMap<Vec<u8>, Vec<Recommendation>>,
    order: VecDeque<Vec<u8>>,
}

impl AnswerCache {
    fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<Recommendation>> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: Vec<u8>, recs: Vec<Recommendation>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), recs).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                match self.order.pop_front() {
                    Some(old) => drop(self.map.remove(&old)),
                    None => break,
                }
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Canonical cache key: epoch, top-k, then the basket's distinct item
/// ids sorted — so `[3,1,3]` and `[1,3]` share an entry and an answer
/// can never leak across epochs or k values.
fn cache_key(epoch: u64, top_k: u32, basket: &[ItemId]) -> Vec<u8> {
    let mut items: Vec<u32> = basket.iter().map(|i| i.raw()).collect();
    items.sort_unstable();
    items.dedup();
    let mut key = Vec::with_capacity(12 + items.len() * 4);
    key.extend_from_slice(&epoch.to_le_bytes());
    key.extend_from_slice(&top_k.to_le_bytes());
    for it in items {
        key.extend_from_slice(&it.to_le_bytes());
    }
    key
}

/// Encodes and frames a response for a connection's out queue.
fn frame_bytes(response: &Response) -> Vec<u8> {
    let mut framed = Vec::new();
    // Writing into a Vec cannot fail.
    drop(write_frame(&mut framed, &encode_response(response)));
    framed
}

/// The typed shed reply for each protocol generation.
fn shed_response(cfg: &ServerConfig, shape: Shape) -> Response {
    match shape {
        Shape::V1 => Response::Error(format!("overloaded: retry after {} ms", cfg.retry_after_ms)),
        _ => Response::Overloaded {
            retry_after_ms: cfg.retry_after_ms,
        },
    }
}

/// The single-threaded readiness loop: listener + waker + every
/// connection in one `poll` set; shard work leaves through bounded
/// queues and comes back through the completion channel.
struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    wake_rx: TcpStream,
    comp_tx: Sender<Completion>,
    comp_rx: Receiver<Completion>,
    conns: Vec<Conn>,
    pending: HashMap<u64, Pending>,
    next_req: u64,
    cache: AnswerCache,
    poller: Poller,
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut readiness: Vec<Readiness> = Vec::new();
        loop {
            if !self.shared.running.load(Ordering::SeqCst) {
                self.draining = true;
            }
            if self.draining
                && self.pending.is_empty()
                && self.conns.iter().all(|c| c.outbuf.is_empty())
            {
                return;
            }

            // Sleep until the next readiness event, completion nudge,
            // or the nearest request deadline.
            let mut timeout = POLL_INTERVAL;
            // lint:allow(det-taint): a min over deadlines is the same
            // in any iteration order
            for p in self.pending.values() {
                let left = p.deadline.saturating_sub(p.clock.elapsed());
                timeout = timeout.min(left.max(Duration::from_millis(1)));
            }
            let n_polled = self.conns.len();
            let mut interests = Vec::with_capacity(2 + n_polled);
            interests.push(Interest {
                fd: raw_fd(&self.listener),
                read: true,
                write: false,
            });
            interests.push(Interest {
                fd: raw_fd(&self.wake_rx),
                read: true,
                write: false,
            });
            for c in &self.conns {
                interests.push(Interest {
                    fd: raw_fd(&c.stream),
                    read: !(c.read_shut || self.draining),
                    write: !c.outbuf.is_empty(),
                });
            }
            if self
                .poller
                .wait(&interests, timeout, &mut readiness)
                .is_err()
            {
                // poll itself failing (not EINTR — the shim swallows
                // that) is unexpected; back off briefly and retry
                // rather than spinning.
                readiness.clear();
                std::thread::sleep(Duration::from_millis(1));
            }

            // Waker: clear the coalescing flag *before* draining, so a
            // wake racing the drain lands a fresh byte for next tick.
            if readiness.get(1).is_some_and(|r| r.readable || r.closed) {
                self.shared.wake_pending.store(false, Ordering::SeqCst);
                drain_ready(&mut self.wake_rx);
            }

            // Completions are drained every tick regardless of what
            // woke us — the waker is a nudge, not the ground truth.
            while let Ok(c) = self.comp_rx.try_recv() {
                self.apply_completion(c);
            }
            self.expire_deadlines();

            if readiness.first().is_some_and(|r| r.readable) {
                self.accept_ready();
            }
            for i in 0..n_polled {
                let Some(r) = readiness.get(2 + i).copied() else {
                    break;
                };
                if r.readable || r.closed {
                    self.read_conn(i);
                }
                if r.writable {
                    self.pump(i);
                }
            }
            self.conns.retain(|c| !c.dead);
        }
    }

    /// Accepts everything currently queued on the listener.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining || !self.shared.running.load(Ordering::SeqCst) {
                        continue; // closing: refuse by immediate drop
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // A response is a few small writes; letting Nagle
                    // batch them against delayed ACKs costs ~40 ms per
                    // round trip on loopback.
                    drop(stream.set_nodelay(true));
                    let id = self.shared.conns.fetch_add(1, Ordering::SeqCst);
                    self.conns.push(Conn {
                        stream,
                        id,
                        inbuf: FrameBuffer::new(),
                        outbuf: Vec::new(),
                        resp: VecDeque::new(),
                        read_shut: false,
                        dead: false,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Pulls whatever the socket has, surfaces complete frames, and
    /// dispatches them. A framing error (oversize claim, checksum
    /// mismatch) means the stream is no longer frame-aligned: answer
    /// with a best-effort error frame and close once it flushes.
    fn read_conn(&mut self, ci: usize) {
        let mut frames = Vec::new();
        let mut framing_error = false;
        {
            let Some(conn) = self.conns.get_mut(ci) else {
                return;
            };
            if conn.dead || conn.read_shut {
                return;
            }
            let status = match conn.inbuf.fill(&mut conn.stream) {
                Ok(s) => s,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            };
            loop {
                match conn.inbuf.next_frame() {
                    Ok(Some(p)) => frames.push(p),
                    Ok(None) => break,
                    Err(_) => {
                        framing_error = true;
                        break;
                    }
                }
            }
            if status == FillStatus::Eof {
                conn.read_shut = true;
                if frames.is_empty()
                    && !framing_error
                    && conn.resp.is_empty()
                    && conn.outbuf.is_empty()
                {
                    conn.dead = true; // clean EOF, nothing in flight
                }
            }
        }
        for payload in frames {
            if self.conns.get(ci).is_none_or(|c| c.dead) {
                return;
            }
            self.handle_frame(ci, payload);
        }
        if framing_error {
            self.shared.obs.add("serve.errors", &[], 1);
            self.respond(ci, frame_bytes(&Response::Error("malformed frame".into())));
            if let Some(conn) = self.conns.get_mut(ci) {
                conn.read_shut = true;
            }
            self.pump(ci);
        }
    }

    /// Decodes and dispatches one request frame.
    fn handle_frame(&mut self, ci: usize, payload: Vec<u8>) {
        let obs = self.shared.obs.clone();
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame was well-formed (checksum passed), so the
                // stream is still aligned: report and keep serving.
                obs.add("serve.errors", &[], 1);
                self.respond(ci, frame_bytes(&Response::Error(e.to_string())));
                return;
            }
        };
        let Some(conn_id) = self.conns.get(ci).map(|c| c.id as usize) else {
            return;
        };
        if self
            .shared
            .cfg
            .faults
            .take_serve_conn(ServeFaultOp::ConnReset, conn_id)
        {
            // Injected reset: the request was read but the connection
            // dies before a single response byte — the client must
            // reconnect and retry.
            obs.add("serve.fault.conn_reset", &[], 1);
            if let Some(conn) = self.conns.get_mut(ci) {
                conn.dead = true;
            }
            return;
        }
        let mismatch = |client: u16| {
            frame_bytes(&Response::VersionMismatch {
                server: PROTOCOL_VERSION,
                client,
            })
        };
        match request {
            Request::Query { basket, top_k } => {
                self.start_request(ci, Shape::V1, vec![basket], top_k, 0);
            }
            Request::QueryV2 {
                version,
                basket,
                top_k,
                budget_ms,
            } => {
                if version != PROTOCOL_VERSION {
                    obs.add("serve.version_mismatch", &[], 1);
                    self.respond(ci, mismatch(version));
                } else {
                    self.start_request(ci, Shape::V2, vec![basket], top_k, budget_ms);
                }
            }
            Request::QueryBatch {
                version,
                baskets,
                top_k,
                budget_ms,
            } => {
                if version != PROTOCOL_VERSION {
                    obs.add("serve.version_mismatch", &[], 1);
                    self.respond(ci, mismatch(version));
                } else {
                    self.start_request(ci, Shape::Batch, baskets, top_k, budget_ms);
                }
            }
            Request::Reload { version, path } => {
                if version != PROTOCOL_VERSION {
                    obs.add("serve.version_mismatch", &[], 1);
                    self.respond(ci, mismatch(version));
                    return;
                }
                let response = match self.shared.reload(&path) {
                    Ok(epoch) => {
                        // Epoch-tagged keys already can't alias; the
                        // clear just stops dead entries occupying
                        // capacity.
                        self.cache.clear();
                        Response::ReloadAck { epoch }
                    }
                    Err(e) => {
                        obs.add("serve.errors", &[], 1);
                        Response::Error(format!("reload rejected: {e}"))
                    }
                };
                self.respond(ci, frame_bytes(&response));
            }
            Request::Shutdown => {
                self.respond(ci, frame_bytes(&Response::ShutdownAck));
                if let Some(conn) = self.conns.get_mut(ci) {
                    conn.read_shut = true;
                }
                self.shared.running.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Admits one query-shaped request: cache lookups, affinity
    /// routing, admission control, and per-shard batched dispatch. A
    /// response slot is reserved in request order whatever the outcome.
    fn start_request(
        &mut self,
        ci: usize,
        shape: Shape,
        baskets: Vec<Vec<ItemId>>,
        top_k: u32,
        budget_ms: u32,
    ) {
        let shared = Arc::clone(&self.shared);
        let obs = shared.obs.clone();
        obs.add("serve.requests", &[], 1);
        obs.add("serve.baskets", &[], baskets.len() as u64);
        let clock = Stopwatch::start();
        let snapshot = shared.current.load();
        let nshards = shared.slots.len();
        let cache_on = shared.cfg.cache_capacity > 0;

        let mut states: Vec<BasketState> = Vec::with_capacity(baskets.len());
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        {
            let catalog = snapshot.value();
            for (i, basket) in baskets.iter().enumerate() {
                let mut st = BasketState::default();
                if cache_on {
                    let key = cache_key(snapshot.number(), top_k, basket);
                    if let Some(recs) = self.cache.get(&key) {
                        obs.add("serve.cache.hits", &[], 1);
                        st.ready = Some((recs, 0));
                        states.push(st);
                        continue;
                    }
                    obs.add("serve.cache.misses", &[], 1);
                    st.key = Some(key);
                }
                match catalog.route(basket) {
                    Route::Empty => {
                        obs.add("serve.routed.empty", &[], 1);
                        st.key = None; // nothing worth caching
                        st.ready = Some((Vec::new(), 0));
                    }
                    Route::Single(s) => {
                        obs.add("serve.routed.single", &[], 1);
                        if let Some(b) = buckets.get_mut(s) {
                            b.push(i);
                        }
                    }
                    Route::Broadcast => {
                        obs.add("serve.routed.fanout", &[], 1);
                        for b in buckets.iter_mut() {
                            b.push(i);
                        }
                    }
                }
                states.push(st);
            }
        }

        let njobs = buckets.iter().filter(|b| !b.is_empty()).count();
        let deadline = if budget_ms == 0 {
            shared.cfg.deadline
        } else {
            shared
                .cfg
                .deadline
                .min(Duration::from_millis(budget_ms as u64))
        };

        // Admission: a budget the current backlog plus our own jobs
        // cannot meet is shed typed before any shard work.
        if budget_ms > 0 && njobs > 0 {
            let backlog = shared
                .slots
                .iter()
                .map(|s| s.queued.load(Ordering::SeqCst))
                .max()
                .unwrap_or(0) as u64;
            if (backlog + njobs as u64).saturating_mul(shared.cfg.est_job_ms) > budget_ms as u64 {
                obs.add("serve.shed", &[], 1);
                obs.observe("serve.latency_us", &[], clock.elapsed().as_micros() as u64);
                self.respond(ci, frame_bytes(&shed_response(&shared.cfg, shape)));
                return;
            }
        }

        // Share each dispatched basket (and its ancestor extension)
        // across however many shard jobs carry it.
        let mut dispatched = vec![false; baskets.len()];
        for bucket in &buckets {
            for &i in bucket {
                if let Some(d) = dispatched.get_mut(i) {
                    *d = true;
                }
            }
        }
        let mut arcs: Vec<Option<SharedBasket>> = Vec::with_capacity(baskets.len());
        {
            let catalog = snapshot.value();
            for (i, basket) in baskets.into_iter().enumerate() {
                if dispatched.get(i).copied().unwrap_or(false) {
                    let extended = Arc::new(catalog.extend_basket(&basket));
                    arcs.push(Some((Arc::new(basket), extended)));
                } else {
                    arcs.push(None);
                }
            }
        }

        let req = self.next_req;
        self.next_req += 1;
        let mut expected = 0usize;
        let mut jobs: Vec<(usize, Vec<usize>)> = Vec::new();
        for (s, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let Some(slot) = shared.slots.get(s) else {
                continue;
            };
            let mut items = Vec::with_capacity(bucket.len());
            for &i in &bucket {
                if let Some(Some((basket, extended))) = arcs.get(i) {
                    items.push(JobItem {
                        index: i,
                        basket: Arc::clone(basket),
                        extended: Arc::clone(extended),
                    });
                }
            }
            slot.queued.fetch_add(1, Ordering::SeqCst);
            let job = Job {
                snapshot: Arc::clone(&snapshot),
                items,
                guard: ReplyGuard {
                    shared: Arc::clone(&shared),
                    tx: self.comp_tx.clone(),
                    req,
                    shard: s,
                    armed: true,
                },
            };
            // The guard is held across try_send only, which never blocks.
            let sent = match slot.tx.lock().as_ref() {
                Some(tx) => tx.try_send(job),
                None => Err(TrySendError::Disconnected(job)),
            };
            match sent {
                Ok(()) => {
                    expected += 1;
                    jobs.push((s, bucket));
                }
                Err(TrySendError::Full(job)) => {
                    // Shed the whole request. Jobs already queued on
                    // other shards run to completion; their results
                    // reference a request id that was never registered
                    // and are discarded on arrival.
                    let Job { guard, .. } = job;
                    guard.abandon();
                    obs.add("serve.shed", &[], 1);
                    obs.observe("serve.latency_us", &[], clock.elapsed().as_micros() as u64);
                    self.respond(ci, frame_bytes(&shed_response(&shared.cfg, shape)));
                    return;
                }
                Err(TrySendError::Disconnected(job)) => {
                    // Shard down (crashed, restarting, or out of
                    // budget): answer without it.
                    let Job { guard, .. } = job;
                    guard.abandon();
                    for &i in &bucket {
                        if let Some(st) = states.get_mut(i) {
                            st.missing += 1;
                        }
                    }
                }
            }
        }

        let conn_id = self.conns.get(ci).map(|c| c.id).unwrap_or(u64::MAX);
        let pending = Pending {
            conn: conn_id,
            shape,
            top_k: top_k as usize,
            snapshot,
            clock,
            deadline,
            expected,
            done: 0,
            jobs,
            baskets: states,
        };
        self.respond_waiting(ci, req);
        if expected == 0 {
            // Fully answered from cache / empty routes / dead shards.
            self.finalize_ok(req, pending);
        } else {
            self.pending.insert(req, pending);
        }
    }

    /// Applies one shard completion; finalizes the request once every
    /// dispatched job has reported.
    fn apply_completion(&mut self, c: Completion) {
        let finished = {
            let Some(p) = self.pending.get_mut(&c.req) else {
                return; // shed, timed out, or abandoned: stale result
            };
            p.done += 1;
            match c.results {
                Some(list) => {
                    for (idx, m) in list {
                        if let Some(b) = p.baskets.get_mut(idx) {
                            b.matches.extend(m);
                        }
                    }
                }
                None => {
                    // The job died before scoring: every basket it
                    // carried is missing this shard's answer.
                    let idxs = p
                        .jobs
                        .iter()
                        .find(|(s, _)| *s == c.shard)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default();
                    for idx in idxs {
                        if let Some(b) = p.baskets.get_mut(idx) {
                            b.missing += 1;
                        }
                    }
                }
            }
            p.done >= p.expected
        };
        if finished {
            if let Some(p) = self.pending.remove(&c.req) {
                self.finalize_ok(c.req, p);
            }
        }
    }

    /// Times out every pending request whose deadline has passed.
    fn expire_deadlines(&mut self) {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.clock.elapsed() >= p.deadline)
            .map(|(req, _)| *req)
            .collect();
        for req in expired {
            if let Some(p) = self.pending.remove(&req) {
                self.finalize_timeout(req, p);
            }
        }
    }

    /// Builds the success response for a fully-reported request: merge
    /// per basket, record degradation, feed the cache, and deliver.
    fn finalize_ok(&mut self, req: u64, p: Pending) {
        let obs = self.shared.obs.clone();
        let Pending {
            conn,
            shape,
            top_k,
            snapshot,
            clock,
            baskets,
            ..
        } = p;
        let epoch = snapshot.number();
        let mut answers = Vec::with_capacity(baskets.len());
        for b in baskets {
            let (recs, missing) = match b.ready {
                Some(ready) => ready,
                None => (snapshot.value().merge(b.matches, top_k), b.missing),
            };
            if missing > 0 {
                obs.add("serve.degraded", &[], 1);
            } else if let Some(key) = b.key {
                // Complete answers only: a degraded answer must be
                // re-scored once the shard is back, never replayed.
                self.cache.insert(key, recs.clone());
            }
            answers.push(BatchAnswer {
                shards_missing: missing,
                recs,
            });
        }
        let response = match shape {
            Shape::Batch => Response::ResultsBatch { epoch, answers },
            Shape::V2 => {
                let a = answers.into_iter().next().unwrap_or(BatchAnswer {
                    shards_missing: 0,
                    recs: Vec::new(),
                });
                Response::ResultsV2 {
                    epoch,
                    shards_missing: a.shards_missing,
                    recs: a.recs,
                }
            }
            Shape::V1 => Response::Results(
                answers
                    .into_iter()
                    .next()
                    .map(|a| a.recs)
                    .unwrap_or_default(),
            ),
        };
        obs.observe("serve.latency_us", &[], clock.elapsed().as_micros() as u64);
        self.deliver(conn, req, frame_bytes(&response));
    }

    /// Builds the timeout response: typed retryable for v2/batch
    /// (indistinguishable from a shed, as before), an error string for
    /// v1.
    fn finalize_timeout(&mut self, req: u64, p: Pending) {
        let obs = self.shared.obs.clone();
        obs.add("serve.deadline_exceeded", &[], 1);
        let response = match p.shape {
            Shape::V1 => {
                obs.add("serve.errors", &[], 1);
                let e = Error::Timeout {
                    node: 0,
                    op: "shard-collect".into(),
                };
                Response::Error(e.to_string())
            }
            _ => {
                obs.add("serve.shed", &[], 1);
                Response::Overloaded {
                    retry_after_ms: self.shared.cfg.retry_after_ms,
                }
            }
        };
        obs.observe(
            "serve.latency_us",
            &[],
            p.clock.elapsed().as_micros() as u64,
        );
        self.deliver(p.conn, req, frame_bytes(&response));
    }

    /// Fills the reserved response slot for `req` on its connection and
    /// pumps. A connection that died in the meantime just discards the
    /// response.
    fn deliver(&mut self, conn_id: u64, req: u64, framed: Vec<u8>) {
        let Some(ci) = self.conns.iter().position(|c| c.id == conn_id && !c.dead) else {
            return;
        };
        let mut filled = false;
        if let Some(conn) = self.conns.get_mut(ci) {
            if let Some(slot) = conn
                .resp
                .iter_mut()
                .find(|s| matches!(s, RespSlot::Waiting(r) if *r == req))
            {
                *slot = RespSlot::Ready(framed);
                filled = true;
            }
        }
        if filled {
            self.pump(ci);
        }
    }

    /// Enqueues an immediately-ready response in request order.
    fn respond(&mut self, ci: usize, framed: Vec<u8>) {
        if let Some(conn) = self.conns.get_mut(ci) {
            conn.resp.push_back(RespSlot::Ready(framed));
        }
        self.pump(ci);
    }

    /// Reserves a response slot for a request still in flight.
    fn respond_waiting(&mut self, ci: usize, req: u64) {
        if let Some(conn) = self.conns.get_mut(ci) {
            conn.resp.push_back(RespSlot::Waiting(req));
        }
    }

    /// Moves every leading ready response into the out buffer (honoring
    /// a scheduled `slow-frame` fault by dribbling that response out in
    /// small delayed chunks) and writes as much as the socket takes.
    fn pump(&mut self, ci: usize) {
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.conns.get_mut(ci) else {
            return;
        };
        if conn.dead {
            return;
        }
        while matches!(conn.resp.front(), Some(RespSlot::Ready(_))) {
            let Some(RespSlot::Ready(framed)) = conn.resp.pop_front() else {
                break;
            };
            if shared
                .cfg
                .faults
                .take_serve_conn(ServeFaultOp::SlowFrame, conn.id as usize)
            {
                shared.obs.add("serve.fault.slow_frame", &[], 1);
                if dribble(conn, &framed, &shared).is_err() {
                    conn.dead = true;
                    return;
                }
            } else {
                conn.outbuf.extend_from_slice(&framed);
            }
        }
        flush_out(conn);
        if conn.read_shut && conn.resp.is_empty() && conn.outbuf.is_empty() {
            conn.dead = true; // drained: close
        }
    }
}

/// Writes the out buffer until the socket would block.
fn flush_out(conn: &mut Conn) {
    while !conn.outbuf.is_empty() {
        match conn.stream.write(&conn.outbuf) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => drop(conn.outbuf.drain(..n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// The `slow-frame` fault: flush what's buffered, then trickle the
/// response out in 3-byte chunks with delays (the client-side frame
/// reader must reassemble partial writes). Temporarily blocking — the
/// loop stalls for the dribble, which is the point of the fault.
fn dribble(conn: &mut Conn, framed: &[u8], shared: &Shared) -> std::io::Result<()> {
    conn.stream.set_nonblocking(false)?;
    conn.stream.write_all(&conn.outbuf)?;
    conn.outbuf.clear();
    for chunk in framed.chunks(3) {
        conn.stream.write_all(chunk)?;
        conn.stream.flush()?;
        std::thread::sleep(shared.cfg.faults.delay);
    }
    conn.stream.set_nonblocking(true)
}
