//! Taxonomy-aware inverted index over a rule set.
//!
//! The postings list of item `i` holds every rule whose antecedent or
//! consequent contains `i` **or any ancestor of `i`** — i.e. the rules a
//! basket containing `i` could possibly trigger under the paper's
//! extended-transaction semantics. The ancestor closure is folded in
//! *once at build time* by walking each item's `gar-taxonomy` ancestor
//! path (O(path length) per item), so a query looks up its raw basket
//! items directly; no per-query set union over the hierarchy is needed.

use gar_mining::rules::Rule;
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;

/// Immutable item → rule-id postings (rule ids index the slice the
/// index was built from; lists are sorted ascending).
#[derive(Debug, Clone)]
pub struct RuleIndex {
    postings: Vec<Vec<u32>>,
}

impl RuleIndex {
    /// Builds the ancestor-closed index for `rules` under `tax`.
    pub fn build(rules: &[Rule], tax: &Taxonomy) -> RuleIndex {
        let n = tax.num_items() as usize;
        // Exact postings first: item -> rules literally containing it.
        // Store decoding already validated every rule item against the
        // taxonomy, but an out-of-range id still must not panic a
        // serving path, so it is dropped rather than indexed.
        let mut exact: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (ri, rule) in rules.iter().enumerate() {
            for &it in rule
                .antecedent
                .items()
                .iter()
                .chain(rule.consequent.items())
            {
                if let Some(list) = exact.get_mut(it.index()) {
                    list.push(ri as u32);
                }
            }
        }
        // Then fold each item's ancestor path in: postings[i] is the
        // sorted union of exact[a] over a ∈ {i} ∪ ancestors(i).
        let mut postings = Vec::with_capacity(n);
        for i in 0..n {
            let item = ItemId(i as u32);
            let mut merged = exact.get(i).cloned().unwrap_or_default();
            for &anc in tax.ancestors(item) {
                if let Some(list) = exact.get(anc.index()) {
                    merged.extend_from_slice(list);
                }
            }
            merged.sort_unstable();
            merged.dedup();
            postings.push(merged);
        }
        RuleIndex { postings }
    }

    /// The rules triggerable by `item` (through itself or an ancestor).
    pub fn postings(&self, item: ItemId) -> &[u32] {
        self.postings
            .get(item.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Sorted distinct candidate rule ids for a raw (unextended) basket.
    /// Items outside the taxonomy contribute nothing.
    pub fn candidates(&self, basket: &[ItemId]) -> Vec<u32> {
        let mut out = Vec::new();
        for &it in basket {
            out.extend_from_slice(self.postings(it));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rule as fixture_rule, sa95_taxonomy};
    use gar_types::{iset, Itemset};

    fn rule(a: Itemset, c: Itemset) -> Rule {
        fixture_rule(a, c, 2, 0.5)
    }

    #[test]
    fn postings_include_ancestor_hits() {
        let tax = sa95_taxonomy();
        // rule 0 mentions outerwear(1); rule 1 mentions boots(7).
        let rules = vec![rule(iset![1], iset![7]), rule(iset![7], iset![1])];
        let idx = RuleIndex::build(&rules, &tax);
        // jackets(3) is a descendant of outerwear(1): both rules hit
        // (rule 0 via antecedent 1, rule 1 via consequent 1).
        assert_eq!(idx.postings(ItemId(3)), &[0, 1]);
        // shirts(2) shares only the root clothes(0), never mentioned.
        assert!(idx.postings(ItemId(2)).is_empty());
        // boots(7) hits both rules directly.
        assert_eq!(idx.postings(ItemId(7)), &[0, 1]);
    }

    #[test]
    fn candidates_union_is_sorted_distinct() {
        let tax = sa95_taxonomy();
        let rules = vec![
            rule(iset![1], iset![7]),
            rule(iset![2], iset![6]),
            rule(iset![7], iset![1]),
        ];
        let idx = RuleIndex::build(&rules, &tax);
        let c = idx.candidates(&[ItemId(3), ItemId(7), ItemId(3)]);
        assert_eq!(c, vec![0, 2]);
        // An out-of-range item is ignored, not a panic.
        assert!(idx.candidates(&[ItemId(99)]).is_empty());
    }
}
