//! Epoch-versioned hot-swap cell for the rule catalog.
//!
//! The server holds exactly one [`EpochCell`]; every query handler
//! takes a snapshot ([`EpochCell::load`]) before dispatching shard
//! work, and every shard job carries that same snapshot. A reload
//! builds the replacement catalog *outside* the lock and then swaps the
//! `Arc` in one critical section, so:
//!
//! * a query observes exactly one epoch end to end — the snapshot it
//!   loaded — never a mix of old and new rules (atomicity by
//!   construction: the catalog behind an `Arc<Epoch<T>>` is immutable);
//! * in-flight queries drain on the old epoch, which is freed when the
//!   last snapshot `Arc` drops;
//! * epoch numbers increase monotonically (`swap` computes
//!   `current + 1` under the same lock that publishes it).
//!
//! The cell is built on [`crate::sync`] so `cargo xtask loom` can model
//! check the swap/load race (`tests/loom_epoch.rs`).

use crate::sync::{Arc, Mutex};

/// One immutable, epoch-stamped value (the rule catalog in production).
#[derive(Debug)]
pub struct Epoch<T> {
    number: u64,
    value: T,
}

impl<T> Epoch<T> {
    /// The epoch number this value was published under (first is 1).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The value itself.
    pub fn value(&self) -> &T {
        &self.value
    }
}

/// A slot holding the current `Arc<Epoch<T>>`, swappable while readers
/// hold snapshots of earlier epochs.
pub struct EpochCell<T> {
    slot: Mutex<Arc<Epoch<T>>>,
}

impl<T> EpochCell<T> {
    /// Publishes `value` as epoch 1.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            slot: Mutex::new(Arc::new(Epoch { number: 1, value })),
        }
    }

    /// Snapshot of the current epoch. The critical section is a single
    /// `Arc::clone`; the returned snapshot stays valid (and keeps its
    /// epoch's value alive) across any number of subsequent swaps.
    pub fn load(&self) -> Arc<Epoch<T>> {
        Arc::clone(&self.slot.lock())
    }

    /// Atomically publishes `value` as the next epoch and returns its
    /// number. The number is read and the new `Arc` stored under one
    /// lock, so concurrent swappers serialize and numbers never repeat
    /// or regress.
    pub fn swap(&self, value: T) -> u64 {
        let mut slot = self.slot.lock();
        let number = slot.number + 1;
        *slot = Arc::new(Epoch { number, value });
        number
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.slot.lock().number
    }
}

#[cfg(all(test, not(gar_loom)))]
mod tests {
    use super::*;

    #[test]
    fn swap_bumps_epoch_and_old_snapshots_survive() {
        let cell = EpochCell::new("a");
        let before = cell.load();
        assert_eq!((before.number(), *before.value()), (1, "a"));
        assert_eq!(cell.swap("b"), 2);
        assert_eq!(cell.epoch(), 2);
        // The old snapshot still reads the old value.
        assert_eq!((before.number(), *before.value()), (1, "a"));
        let after = cell.load();
        assert_eq!((after.number(), *after.value()), (2, "b"));
    }

    #[test]
    fn epochs_are_monotonic_under_concurrent_swaps() {
        let cell = std::sync::Arc::new(EpochCell::new(0usize));
        let mut handles = Vec::new();
        for t in 0..4 {
            let cell = std::sync::Arc::clone(&cell);
            handles.push(std::thread::spawn(move || {
                (0..64).map(|_| cell.swap(t)).collect::<Vec<u64>>()
            }));
        }
        let mut seen: Vec<u64> = Vec::new();
        for h in handles {
            let numbers = h.join().expect("swapper panicked");
            assert!(
                numbers.windows(2).all(|w| w[0] < w[1]),
                "per-thread monotone"
            );
            seen.extend(numbers);
        }
        seen.sort_unstable();
        let expected: Vec<u64> = (2..2 + 4 * 64).collect();
        assert_eq!(seen, expected, "every epoch number issued exactly once");
    }
}
