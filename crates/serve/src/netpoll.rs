//! A hand-rolled `poll(2)` readiness shim — the serving tier's only
//! window onto socket readiness, in the workspace's offline-deps
//! spirit: no `libc` crate, no `mio`, just the one C entry point the
//! platform already links through `std`.
//!
//! The server's event loop registers every socket it owns (listener,
//! waker, connections) with a read and/or write interest and blocks in
//! [`Poller::wait`] until one becomes ready or the timeout expires.
//! On unix this is a real `poll(2)` call; elsewhere it degrades to a
//! short sleep that reports everything ready — level-triggered
//! over-reporting is always safe against non-blocking sockets (a
//! not-actually-ready socket just answers `WouldBlock`), it only costs
//! spurious wakeups.
//!
//! `poll` is used instead of `epoll` because the server's fd count is
//! small (one listener, one waker, tens of connections), the interest
//! set changes every tick (write interest follows buffered bytes), and
//! a stateless O(n) registration per tick keeps the shim tiny and
//! portable across unixes.

use std::io;
use std::time::Duration;

/// One socket's registration for a [`Poller::wait`] tick.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    /// The raw fd (`AsRawFd`); ignored by the non-unix fallback.
    pub fd: i32,
    /// Wake when readable (or on peer close).
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

/// What a socket reported back.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Data (or an accepted peer, or EOF) is waiting.
    pub readable: bool,
    /// The send buffer has room.
    pub writable: bool,
    /// Error/hangup: the owner should read it to collect the error.
    pub closed: bool,
}

/// Reusable readiness poller; `wait` fills `out` one entry per
/// interest, in order.
#[derive(Debug, Default)]
pub struct Poller {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
}

impl Poller {
    /// A new poller with empty scratch space.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Blocks until any interest is ready or `timeout` elapses; fills
    /// `out` with one [`Readiness`] per interest (all-default on
    /// timeout) and returns how many interests woke.
    pub fn wait(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
        out: &mut Vec<Readiness>,
    ) -> io::Result<usize> {
        out.clear();
        out.resize(interests.len(), Readiness::default());
        self.wait_impl(interests, timeout, out)
    }

    #[cfg(unix)]
    fn wait_impl(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
        out: &mut [Readiness],
    ) -> io::Result<usize> {
        self.fds.clear();
        for it in interests {
            let mut events = 0i16;
            if it.read {
                events |= sys::POLLIN;
            }
            if it.write {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd: it.fd,
                events,
                revents: 0,
            });
        }
        let n = sys::poll(&mut self.fds, timeout)?;
        for (slot, fd) in out.iter_mut().zip(&self.fds) {
            slot.readable = fd.revents & (sys::POLLIN | sys::POLLHUP) != 0;
            slot.writable = fd.revents & sys::POLLOUT != 0;
            slot.closed = fd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
        }
        Ok(n)
    }

    #[cfg(not(unix))]
    fn wait_impl(
        &mut self,
        interests: &[Interest],
        timeout: Duration,
        out: &mut [Readiness],
    ) -> io::Result<usize> {
        // Portable fallback: sleep briefly, then claim everything is
        // ready. Non-blocking sockets turn over-reporting into plain
        // `WouldBlock`s, so this is slow but correct.
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
        for (slot, it) in out.iter_mut().zip(interests) {
            slot.readable = it.read;
            slot.writable = it.write;
        }
        Ok(interests.len())
    }
}

#[cfg(unix)]
mod sys {
    use std::io;
    use std::time::Duration;

    /// `struct pollfd` from `<poll.h>`, laid out exactly as the ABI
    /// demands.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    // Shared event bits across the unixes this workspace targets
    // (Linux, macOS, the BSDs all agree on these values).
    pub const POLLIN: i16 = 0x0001;
    pub const POLLOUT: i16 = 0x0004;
    pub const POLLERR: i16 = 0x0008;
    pub const POLLHUP: i16 = 0x0010;
    pub const POLLNVAL: i16 = 0x0020;

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    mod ffi {
        use super::{NfdsT, PollFd};
        extern "C" {
            pub fn poll(
                fds: *mut PollFd,
                nfds: NfdsT,
                timeout: std::os::raw::c_int,
            ) -> std::os::raw::c_int;
        }
    }

    /// Calls `poll(2)`; EINTR counts as a zero-ready wakeup (the event
    /// loop just recomputes its timeout and re-enters).
    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        // Round a sub-millisecond timeout up so a short deadline never
        // degenerates into a zero-timeout busy spin.
        let mut millis = timeout.as_millis();
        if millis == 0 && !timeout.is_zero() {
            millis = 1;
        }
        let millis = millis.min(i32::MAX as u128) as std::os::raw::c_int;
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs; the pointer/length pair passed
        // matches it exactly, and poll(2) writes only within the slice
        // (the `revents` fields). No pointer escapes the call.
        let rc = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as NfdsT, millis) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                for fd in fds.iter_mut() {
                    fd.revents = 0;
                }
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[cfg(unix)]
    fn fd_of<T: AsRawFd>(s: &T) -> i32 {
        s.as_raw_fd()
    }

    #[cfg(not(unix))]
    fn fd_of<T>(_s: &T) -> i32 {
        0
    }

    #[test]
    fn readable_after_peer_writes_and_timeout_when_idle() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut poller = Poller::new();
        let mut out = Vec::new();
        let interests = [Interest {
            fd: fd_of(&rx),
            read: true,
            write: false,
        }];

        // Idle: the wait must come back (timeout), not hang.
        poller
            .wait(&interests, Duration::from_millis(10), &mut out)
            .unwrap();

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        // Ready: a bounded number of waits must report readable.
        let mut readable = false;
        for _ in 0..100 {
            poller
                .wait(&interests, Duration::from_millis(50), &mut out)
                .unwrap();
            if out.first().is_some_and(|r| r.readable) {
                readable = true;
                break;
            }
        }
        assert!(readable, "peer bytes never reported readable");
        let mut buf = [0u8; 16];
        // lint:allow(no-raw-net): test-only readback proving the
        // readiness report was truthful; production reads go through
        // protocol::FrameBuffer.
        let n = rx.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn write_interest_reports_writable_on_a_fresh_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (_rx, _) = listener.accept().unwrap();
        let mut poller = Poller::new();
        let mut out = Vec::new();
        poller
            .wait(
                &[Interest {
                    fd: fd_of(&tx),
                    read: false,
                    write: true,
                }],
                Duration::from_millis(100),
                &mut out,
            )
            .unwrap();
        assert!(out.first().is_some_and(|r| r.writable));
    }
}
