//! The persisted rule store — `GRUL` codec.
//!
//! Format (little-endian, style of `gar-mining`'s `GCKP` checkpoint):
//! magic `GRUL`, `u32` version, the taxonomy as a parent array (`u32`
//! item count, one `u32` per item, `u32::MAX` = root — mirroring the
//! `GTAX` file so `serve` needs no side-channel taxonomy), `u64`
//! transaction count, `u32` rule count, then per rule the antecedent and
//! consequent as length-prefixed `u32` item lists, the `u64` support
//! count and the `f64` confidence bit pattern. The whole payload is
//! sealed by a trailing FxHash **checksum**; writes go through a temp
//! file + rename so a crash mid-write never leaves a torn store.
//!
//! Rules are stored in the canonical `(antecedent, consequent)` order of
//! [`gar_mining::rules::canonicalize_rules`] and the decoder *enforces*
//! strict ascent, so a given rule set has exactly one on-disk byte
//! representation — same-seed stores are byte-identical no matter how
//! many nodes mined them.

use gar_mining::rules::{canonicalize_rules, Rule};
use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
use gar_types::{Error, ItemId, Itemset, Result};
use std::hash::Hasher;
use std::path::Path;

const MAGIC: &[u8; 4] = b"GRUL";
const VERSION: u32 = 1;
const NO_PARENT: u32 = u32::MAX;

/// Decode guards against implausible lengths (so a corrupt length field
/// fails cleanly instead of attempting a huge allocation).
const MAX_ITEMS: usize = 1 << 26;
const MAX_RULES: usize = 1 << 26;
const MAX_ITEMSET_LEN: usize = 1 << 16;

/// A mined rule set bound to the taxonomy it was mined under, ready to
/// be served.
#[derive(Debug, Clone)]
pub struct RuleStore {
    /// The classification hierarchy the rules (and queries) live in.
    pub taxonomy: Taxonomy,
    /// Database size behind the supports (for re-deriving fractions).
    pub num_transactions: u64,
    /// Rules in canonical `(antecedent, consequent)` order, deduplicated.
    pub rules: Vec<Rule>,
}

impl RuleStore {
    /// Builds a store, canonicalizing (sorting + deduplicating) `rules`.
    /// Support fractions are re-derived from `support_count` over
    /// `num_transactions` — the codec persists only the count, so this
    /// keeps the in-memory store identical to its reloaded image.
    pub fn new(mut rules: Vec<Rule>, taxonomy: Taxonomy, num_transactions: u64) -> RuleStore {
        canonicalize_rules(&mut rules);
        for r in &mut rules {
            r.support = r.support_count as f64 / num_transactions.max(1) as f64;
        }
        RuleStore {
            taxonomy,
            num_transactions,
            rules,
        }
    }

    /// Writes the store to `path` atomically (temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, encode(self))
            .map_err(|e| Error::io(format!("writing rule store {}", tmp.display()), e))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| Error::io(format!("publishing rule store {}", path.display()), e))
    }

    /// Reads and validates the store at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<RuleStore> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| Error::io(format!("reading rule store {}", path.display()), e))?;
        decode(&bytes)
    }

    /// The sorted, distinct items mentioned by any rule antecedent —
    /// the natural query universe for load generation.
    pub fn antecedent_items(&self) -> Vec<ItemId> {
        let mut out: Vec<ItemId> = self
            .rules
            .iter()
            .flat_map(|r| r.antecedent.items().iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = gar_types::FxHasher::default();
    h.write(bytes);
    h.finish()
}

fn push_itemset(out: &mut Vec<u8>, set: &Itemset) {
    out.extend_from_slice(&(set.len() as u32).to_le_bytes());
    for &it in set.items() {
        out.extend_from_slice(&it.raw().to_le_bytes());
    }
}

/// Serializes a store (checksum included). The caller guarantees the
/// rules are already canonical — [`RuleStore::new`] enforces it.
pub(crate) fn encode(store: &RuleStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let tax = &store.taxonomy;
    out.extend_from_slice(&tax.num_items().to_le_bytes());
    for i in 0..tax.num_items() {
        let code = tax.parent(ItemId(i)).map_or(NO_PARENT, |p| p.raw());
        out.extend_from_slice(&code.to_le_bytes());
    }
    out.extend_from_slice(&store.num_transactions.to_le_bytes());
    out.extend_from_slice(&(store.rules.len() as u32).to_le_bytes());
    for rule in &store.rules {
        push_itemset(&mut out, &rule.antecedent);
        push_itemset(&mut out, &rule.consequent);
        out.extend_from_slice(&rule.support_count.to_le_bytes());
        out.extend_from_slice(&rule.confidence.to_bits().to_le_bytes());
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Bounded cursor over the store body; every short read is a clean
/// [`Error::Corrupt`], never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::Corrupt("rule store truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| Error::Corrupt("rule store u32 field malformed".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| Error::Corrupt("rule store u64 field malformed".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// A length-prefixed itemset: non-empty, strictly increasing, every
    /// item below `num_items`.
    fn itemset(&mut self, num_items: u32, what: &str) -> Result<Itemset> {
        let len = self.u32()? as usize;
        if len == 0 || len > MAX_ITEMSET_LEN {
            return Err(Error::Corrupt(format!("implausible {what} length {len}")));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            let raw = self.u32()?;
            if raw >= num_items {
                return Err(Error::Corrupt(format!(
                    "{what} item {raw} outside the taxonomy (< {num_items})"
                )));
            }
            items.push(ItemId(raw));
        }
        if items.iter().zip(items.iter().skip(1)).any(|(a, b)| a >= b) {
            return Err(Error::Corrupt(format!("{what} items are not ascending")));
        }
        Ok(Itemset::from_sorted(items))
    }
}

/// Decodes a store, verifying the checksum and every structural
/// invariant (including canonical rule order). All damage surfaces as
/// [`Error::Corrupt`].
pub(crate) fn decode(bytes: &[u8]) -> Result<RuleStore> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(Error::Corrupt("rule store too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let tail: [u8; 8] = tail
        .try_into()
        .map_err(|_| Error::Corrupt("rule store checksum tail malformed".into()))?;
    let stored = u64::from_le_bytes(tail);
    if checksum(body) != stored {
        return Err(Error::Corrupt("rule store checksum mismatch".into()));
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    if c.take(4)? != MAGIC {
        return Err(Error::Corrupt("not a rule store (bad magic)".into()));
    }
    if c.u32()? != VERSION {
        return Err(Error::Corrupt("unsupported rule store version".into()));
    }
    let num_items = c.u32()?;
    if num_items as usize > MAX_ITEMS {
        return Err(Error::Corrupt("implausible taxonomy size".into()));
    }
    let mut builder = TaxonomyBuilder::new(num_items);
    for child in 0..num_items {
        let parent = c.u32()?;
        if parent != NO_PARENT {
            builder
                .add_edge(ItemId(child), ItemId(parent))
                .map_err(|e| Error::Corrupt(format!("embedded taxonomy invalid: {e}")))?;
        }
    }
    // Re-validate the forest invariants: a corrupt file must not smuggle
    // a cycle past the ancestor-path machinery.
    let taxonomy = builder
        .build()
        .map_err(|e| Error::Corrupt(format!("embedded taxonomy invalid: {e}")))?;

    let num_transactions = c.u64()?;
    let num_rules = c.u32()? as usize;
    if num_rules > MAX_RULES {
        return Err(Error::Corrupt("implausible rule count".into()));
    }
    let n = num_transactions.max(1) as f64;
    let mut rules: Vec<Rule> = Vec::with_capacity(num_rules.min(1 << 16));
    for _ in 0..num_rules {
        let antecedent = c.itemset(num_items, "antecedent")?;
        let consequent = c.itemset(num_items, "consequent")?;
        let support_count = c.u64()?;
        if support_count > num_transactions {
            return Err(Error::Corrupt(format!(
                "rule support {support_count} exceeds the {num_transactions}-transaction database"
            )));
        }
        let confidence = f64::from_bits(c.u64()?);
        if !confidence.is_finite() || !(0.0..=1.0).contains(&confidence) {
            return Err(Error::Corrupt(format!(
                "rule confidence {confidence} outside [0, 1]"
            )));
        }
        if let Some(prev) = rules.last() {
            let key = (&prev.antecedent, &prev.consequent);
            if key >= (&antecedent, &consequent) {
                return Err(Error::Corrupt(
                    "rules are not in canonical (antecedent, consequent) order".into(),
                ));
            }
        }
        rules.push(Rule {
            antecedent,
            consequent,
            support_count,
            support: support_count as f64 / n,
            confidence,
        });
    }
    if c.pos != body.len() {
        return Err(Error::Corrupt("rule store has trailing garbage".into()));
    }
    Ok(RuleStore {
        taxonomy,
        num_transactions,
        rules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rule, sa95_taxonomy};
    use gar_types::iset;

    fn sample() -> RuleStore {
        RuleStore::new(
            vec![
                rule(iset![1], iset![7], 2, 2.0 / 3.0),
                rule(iset![7], iset![1], 2, 1.0),
                rule(iset![3], iset![7], 1, 0.5),
            ],
            sa95_taxonomy(),
            6,
        )
    }

    #[test]
    fn round_trip() {
        let store = sample();
        let back = decode(&encode(&store)).unwrap();
        assert_eq!(back.rules, store.rules);
        assert_eq!(back.num_transactions, 6);
        assert_eq!(back.taxonomy.num_items(), 8);
        for i in 0..8 {
            assert_eq!(
                back.taxonomy.parent(ItemId(i)),
                store.taxonomy.parent(ItemId(i))
            );
        }
    }

    #[test]
    fn new_canonicalizes_and_dedups() {
        let store = RuleStore::new(
            vec![
                rule(iset![7], iset![1], 2, 1.0),
                rule(iset![1], iset![7], 2, 2.0 / 3.0),
                rule(iset![7], iset![1], 2, 1.0),
            ],
            sa95_taxonomy(),
            6,
        );
        let keys: Vec<_> = store
            .rules
            .iter()
            .map(|r| (r.antecedent.clone(), r.consequent.clone()))
            .collect();
        assert_eq!(keys, vec![(iset![1], iset![7]), (iset![7], iset![1])]);
    }

    #[test]
    fn encoding_is_identical_regardless_of_input_order() {
        let a = sample();
        let b = RuleStore::new(
            {
                let mut r = a.rules.clone();
                r.reverse();
                r
            },
            sa95_taxonomy(),
            6,
        );
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn every_truncation_is_a_clean_corrupt_error() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, Error::Corrupt(_)),
                "truncation at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let err = decode(&bad).unwrap_err();
            assert!(matches!(err, Error::Corrupt(_)), "flip at {i}: {err:?}");
        }
    }

    #[test]
    fn non_canonical_order_rejected() {
        // Hand-build a payload with descending rules: the decoder must
        // refuse it even though the checksum verifies.
        let mut store = sample();
        store.rules.reverse();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&store.taxonomy.num_items().to_le_bytes());
        for i in 0..store.taxonomy.num_items() {
            let code = store
                .taxonomy
                .parent(ItemId(i))
                .map_or(NO_PARENT, |p| p.raw());
            out.extend_from_slice(&code.to_le_bytes());
        }
        out.extend_from_slice(&store.num_transactions.to_le_bytes());
        out.extend_from_slice(&(store.rules.len() as u32).to_le_bytes());
        for rule in &store.rules {
            push_itemset(&mut out, &rule.antecedent);
            push_itemset(&mut out, &rule.consequent);
            out.extend_from_slice(&rule.support_count.to_le_bytes());
            out.extend_from_slice(&rule.confidence.to_bits().to_le_bytes());
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        let err = decode(&out).unwrap_err();
        assert!(
            matches!(&err, Error::Corrupt(m) if m.contains("canonical")),
            "{err:?}"
        );
    }

    #[test]
    fn embedded_taxonomy_cycle_rejected() {
        // 0 -> 1 -> 0 would loop the ancestor walk; the decoder must
        // re-validate instead of trusting the file.
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // parent(0) = 1
        out.extend_from_slice(&0u32.to_le_bytes()); // parent(1) = 0
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        let err = decode(&out).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn save_load_via_tmp_rename() {
        let dir = std::env::temp_dir().join(format!("gar-grul-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rules.grul");
        let store = sample();
        store.save(&path).unwrap();
        assert!(!path.with_extension("grul.tmp").exists());
        let back = RuleStore::load(&path).unwrap();
        assert_eq!(back.rules, store.rules);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn antecedent_items_are_sorted_distinct() {
        let store = sample();
        assert_eq!(
            store.antecedent_items(),
            vec![ItemId(1), ItemId(3), ItemId(7)]
        );
    }
}
