//! Byte-level determinism of the persisted rule store.
//!
//! The store is written in canonical rule order (sorted by antecedent,
//! then consequent, deduplicated), so the same mining seed must produce
//! a byte-identical `.grul` file regardless of how many cluster nodes
//! mined it and across reruns — the serving-layer mirror of the mining
//! crate's `determinism` suite.

use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::parallel::mine_parallel;
use gar_mining::rules::derive_rules;
use gar_mining::{Algorithm, MiningParams};
use gar_serve::RuleStore;
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;
use std::path::PathBuf;

const BIG_MEMORY: u64 = 1 << 30;

fn dataset(seed: u64) -> (Taxonomy, Vec<Vec<ItemId>>) {
    let spec = DatasetSpec {
        name: "serve-determinism".into(),
        num_transactions: 300,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 40,
        num_items: 150,
        num_roots: 6,
        fanout: 4.0,
        seed,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gar-serve-det-{}-{name}.grul", std::process::id()))
}

/// Mines at `num_nodes`, derives rules, persists the store, and returns
/// the exact file bytes.
fn store_bytes(seed: u64, num_nodes: usize, name: &str) -> Vec<u8> {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(num_nodes, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(num_nodes, BIG_MEMORY);
    let params = MiningParams::with_min_support(0.05);
    let report = mine_parallel(Algorithm::HHpgmFgd, &db, &tax, &params, &cluster).unwrap();
    let rules = derive_rules(&report.output, 0.5, Some(&tax));
    assert!(!rules.is_empty(), "fixture mined no rules");
    let store = RuleStore::new(rules, tax, report.output.num_transactions);
    let path = tmp_path(name);
    store.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn store_is_byte_identical_across_node_counts() {
    let reference = store_bytes(11, 1, "n1");
    for nodes in [2, 4] {
        assert_eq!(
            store_bytes(11, nodes, &format!("n{nodes}")),
            reference,
            "store bytes differ between 1 and {nodes} nodes"
        );
    }
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    assert_eq!(store_bytes(23, 2, "a"), store_bytes(23, 2, "b"));
}

#[test]
fn reloaded_store_round_trips_exactly() {
    let (tax, txns) = dataset(31);
    let db = PartitionedDatabase::build_in_memory(2, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(2, BIG_MEMORY);
    let params = MiningParams::with_min_support(0.05);
    let report = mine_parallel(Algorithm::HHpgmFgd, &db, &tax, &params, &cluster).unwrap();
    let rules = derive_rules(&report.output, 0.5, Some(&tax));
    let store = RuleStore::new(rules, tax, report.output.num_transactions);

    let a = tmp_path("rt-a");
    let b = tmp_path("rt-b");
    store.save(&a).unwrap();
    // Save → load → save must be a fixed point of the codec.
    RuleStore::load(&a).unwrap().save(&b).unwrap();
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}
