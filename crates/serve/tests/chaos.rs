//! Serve-layer chaos soak (`cargo xtask serve-chaos`).
//!
//! Each case runs a real loopback server under a seeded serve fault
//! plan and checks the PR's availability invariants:
//!
//! * the server never aborts — [`Server::wait`] returns `Ok` after
//!   every case;
//! * every accepted query is answered **correctly for its epoch and
//!   live shards** or with a typed retryable reply (`Overloaded`);
//! * a corrupt reload is rejected while the old epoch keeps answering
//!   (proven by the epoch tags in the responses);
//! * a crashed shard restarts and `shards_missing` clears;
//! * after recovery, a deterministic fault-free client subset produces
//!   **byte-identical** transcripts to locally encoded expectations.
//!
//! The seed matrix comes from `GAR_SERVE_CHAOS_SEEDS` (comma-separated
//! u64s; CI pins it), defaulting to `11,23,47`.

use gar_cluster::{FaultPlan, RetryPolicy};
use gar_mining::rules::Rule;
use gar_obs::Obs;
use gar_serve::protocol::{encode_response, Response};
use gar_serve::{serve, Catalog, Client, QueryReply, RuleStore, Server, ServerConfig};
use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
use gar_types::{iset, ItemId, Itemset};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn sa95_taxonomy() -> Taxonomy {
    let mut b = TaxonomyBuilder::new(8);
    for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
        b.edge(c, p).unwrap();
    }
    b.build().unwrap()
}

fn rule(a: Itemset, c: Itemset, sup: u64, conf: f64) -> Rule {
    Rule {
        antecedent: a,
        consequent: c,
        support_count: sup,
        support: sup as f64 / 6.0,
        confidence: conf,
    }
}

/// Epoch-1 rules (same fixture as the end-to-end suite).
fn store_v1() -> RuleStore {
    let rules = vec![
        rule(iset![1], iset![7], 2, 2.0 / 3.0),
        rule(iset![3], iset![2], 3, 0.9),
        rule(iset![7], iset![1], 2, 1.0),
        rule(iset![2], iset![6], 1, 0.4),
        rule(iset![4], iset![7], 1, 0.5),
    ];
    RuleStore::new(rules, sa95_taxonomy(), 6)
}

/// Epoch-2 rules: the refreshed generation a reload swaps in.
fn store_v2() -> RuleStore {
    let rules = vec![
        rule(iset![1], iset![7], 4, 0.8),
        rule(iset![2], iset![3], 2, 0.6),
        rule(iset![6], iset![7], 3, 0.7),
    ];
    RuleStore::new(rules, sa95_taxonomy(), 8)
}

fn seeds() -> Vec<u64> {
    let spec = std::env::var("GAR_SERVE_CHAOS_SEEDS").unwrap_or_else(|_| "11,23,47".into());
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("GAR_SERVE_CHAOS_SEEDS must be u64s"))
        .collect()
}

/// SplitMix64, the workspace's seeded stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded basket over the fixture's leaf/interior items.
fn basket(state: &mut u64) -> Vec<ItemId> {
    let universe = [0u32, 1, 2, 3, 4, 5, 6, 7];
    let len = 1 + (splitmix(state) % 3) as usize;
    (0..len)
        .map(|_| ItemId(universe[(splitmix(state) % universe.len() as u64) as usize]))
        .collect()
}

fn start(shards: usize, faults: &str, obs: Obs) -> Server {
    let cfg = ServerConfig {
        shards,
        deadline: Duration::from_secs(5),
        faults: FaultPlan::parse(faults).unwrap(),
        ..ServerConfig::default()
    };
    serve("127.0.0.1:0", store_v1(), cfg, obs).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect(
        &server.local_addr().to_string(),
        Some(Duration::from_secs(5)),
        &RetryPolicy::default(),
    )
    .unwrap()
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "gar-serve-chaos-{}-{seq}-{name}",
        std::process::id()
    ))
}

/// Asserts a (possibly degraded) reply is correct for its epoch: a
/// complete answer must equal the reference exactly; a degraded answer
/// must be a sub-answer of it (shard suppression is shard-local, so
/// every surviving recommendation appears verbatim in the full one).
fn assert_correct_for_epoch(
    reply: &QueryReply,
    basket: &[ItemId],
    refs: &[(u64, Catalog)],
    top_k: usize,
) {
    let QueryReply::Results {
        epoch,
        shards_missing,
        recs,
    } = reply
    else {
        return; // Overloaded: typed retryable, nothing to compare
    };
    let Some((_, reference)) = refs.iter().find(|(e, _)| e == epoch) else {
        panic!("reply carries unknown epoch {epoch}");
    };
    let expected = reference.query(basket, top_k);
    if *shards_missing == 0 {
        assert_eq!(recs, &expected, "complete answer wrong for {basket:?}");
    } else {
        for rec in recs {
            assert!(
                expected.contains(rec),
                "degraded answer invented {rec:?} for {basket:?}"
            );
        }
    }
}

/// Polls until a fault-free probe sees a complete (non-degraded)
/// answer, i.e. the crashed shard is back.
fn wait_until_recovered(client: &mut Client) {
    for _ in 0..200 {
        // A multi-root basket (roots clothes/footwear) broadcasts to
        // every shard — affinity routing would answer a single-root
        // probe from one healthy shard and miss the one restarting.
        let reply = client.query_v2(&[ItemId(3), ItemId(7)], 10, 0).unwrap();
        if matches!(
            reply,
            QueryReply::Results {
                shards_missing: 0,
                ..
            }
        ) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("shard never recovered");
}

#[test]
fn shard_panic_degrades_then_recovers_with_byte_identical_answers() {
    for seed in seeds() {
        let obs = Obs::enabled();
        // The 2nd job on shard 0 panics the worker mid-stream.
        let server = start(2, "shard-panic@s0q2", obs.clone());
        let reference = Catalog::new(store_v1(), 1);
        let refs = [(1u64, Catalog::new(store_v1(), 1))];
        let mut client = connect(&server);
        let mut state = seed;
        let mut epochs = Vec::new();
        let mut saw_degraded = false;
        for _ in 0..30 {
            let b = basket(&mut state);
            // Queries are answered (possibly degraded), never errors.
            let reply = client.query_v2(&b, 10, 0).unwrap();
            assert_correct_for_epoch(&reply, &b, &refs, 10);
            if let QueryReply::Results {
                epoch,
                shards_missing,
                ..
            } = &reply
            {
                epochs.push(*epoch);
                saw_degraded |= *shards_missing > 0;
            }
        }
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "epoch went backwards: {epochs:?}"
        );
        assert!(epochs.iter().all(|&e| e == 1), "no reload happened");
        // The supervisor restarted the crashed shard: degraded clears.
        wait_until_recovered(&mut client);
        assert_eq!(
            obs.metrics().counters.get("serve.shard_restarts{shard=0}"),
            Some(&1),
            "seed {seed}: expected exactly one restart"
        );
        // Post-recovery, a deterministic fault-free subset is
        // byte-identical to locally encoded expectations — v2 and v1.
        let mut state = seed ^ 0xDEAD_BEEF;
        for _ in 0..15 {
            let b = basket(&mut state);
            let expected_v2 = encode_response(&Response::ResultsV2 {
                epoch: 1,
                shards_missing: 0,
                recs: reference.query(&b, 10),
            });
            assert_eq!(client.query_v2_raw(&b, 10, 0).unwrap(), expected_v2);
            let expected_v1 = encode_response(&Response::Results(reference.query(&b, 10)));
            assert_eq!(client.query_raw(&b, 10).unwrap(), expected_v1);
        }
        assert!(saw_degraded, "seed {seed}: the panic was never observed");
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn stale_swap_is_rejected_and_the_next_good_reload_lands() {
    for seed in seeds() {
        let obs = Obs::enabled();
        // Reload #1 is corrupted in flight; reload #2 is clean.
        let server = start(2, "stale-swap@r1", obs.clone());
        let refs = [
            (1u64, Catalog::new(store_v1(), 1)),
            (2u64, Catalog::new(store_v2(), 1)),
        ];
        let path = scratch_path("refresh.grul");
        store_v2().save(&path).unwrap();
        let mut client = connect(&server);
        let mut state = seed;
        let mut epochs = Vec::new();
        let observe = |client: &mut Client, state: &mut u64, epochs: &mut Vec<u64>| {
            let b = basket(state);
            let reply = client.query_v2(&b, 10, 0).unwrap();
            assert_correct_for_epoch(&reply, &b, &refs, 10);
            if let QueryReply::Results { epoch, .. } = reply {
                epochs.push(epoch);
            }
        };
        for _ in 0..5 {
            observe(&mut client, &mut state, &mut epochs);
        }
        // The stale swap: bytes are damaged post-read, validation must
        // reject, and the old epoch keeps answering.
        let err = client.reload(&path.to_string_lossy()).unwrap_err();
        assert!(err.to_string().contains("reload rejected"), "{err}");
        assert_eq!(server.epoch(), 1, "seed {seed}: corrupt swap landed!");
        for _ in 0..5 {
            observe(&mut client, &mut state, &mut epochs);
        }
        assert!(epochs.iter().all(|&e| e == 1));
        // The next reload of the very same file is clean and lands.
        assert_eq!(client.reload(&path.to_string_lossy()).unwrap(), 2);
        for _ in 0..5 {
            observe(&mut client, &mut state, &mut epochs);
        }
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "epoch went backwards: {epochs:?}"
        );
        assert_eq!(epochs.last(), Some(&2));
        let snap = obs.metrics();
        assert_eq!(snap.counters.get("serve.swap_rejected"), Some(&1));
        assert_eq!(snap.counters.get("serve.swaps"), Some(&1));
        assert_eq!(snap.counters.get("serve.fault.stale_swap"), Some(&1));
        std::fs::remove_file(&path).ok();
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn overload_burst_sheds_typed_and_the_server_survives() {
    for seed in seeds() {
        let obs = Obs::enabled();
        let cfg = ServerConfig {
            shards: 1,
            queue_depth: 2,
            deadline: Duration::from_secs(5),
            faults: FaultPlan::parse("shard-stall@s0q1,hang-ms=400").unwrap(),
            ..ServerConfig::default()
        };
        let server = serve("127.0.0.1:0", store_v1(), cfg, obs.clone()).unwrap();
        let reference = Catalog::new(store_v1(), 1);
        let addr = server.local_addr().to_string();

        // The stall victim: its first job parks the only worker 400 ms.
        let victim = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c =
                    Client::connect(&addr, Some(Duration::from_secs(5)), &RetryPolicy::default())
                        .unwrap();
                c.query_v2(&[ItemId(3)], 10, 0).unwrap()
            })
        };
        // Give the victim's job time to reach the worker.
        std::thread::sleep(Duration::from_millis(100));

        // The burst: more concurrent budgeted queries than the queue
        // can hold. Every one must come back typed — an answer or a
        // shed — never an error, and the process must survive.
        let mut burst = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            let mut state = seed.wrapping_add(i);
            let b = basket(&mut state);
            burst.push(std::thread::spawn(move || {
                let mut c =
                    Client::connect(&addr, Some(Duration::from_secs(5)), &RetryPolicy::default())
                        .unwrap();
                c.query_v2(&b, 10, 50).unwrap()
            }));
        }
        let mut shed = 0;
        for h in burst {
            match h.join().expect("burst client panicked") {
                QueryReply::Overloaded { retry_after_ms } => {
                    assert!(retry_after_ms > 0);
                    shed += 1;
                }
                QueryReply::Results {
                    epoch,
                    shards_missing,
                    ..
                } => {
                    assert_eq!(epoch, 1);
                    assert_eq!(shards_missing, 0);
                }
            }
        }
        assert!(shed >= 1, "seed {seed}: burst never shed");
        // The stall victim still gets its full answer.
        let victim = victim.join().expect("victim panicked");
        assert_eq!(
            victim,
            QueryReply::Results {
                epoch: 1,
                shards_missing: 0,
                recs: reference.query(&[ItemId(3)], 10),
            }
        );
        // And the server is healthy afterwards.
        let mut client = connect(&server);
        assert_eq!(
            client.query(&[ItemId(3)], 10).unwrap(),
            reference.query(&[ItemId(3)], 10)
        );
        let snap = obs.metrics();
        assert!(snap.counters.get("serve.shed").copied().unwrap_or(0) >= 1);
        assert_eq!(
            snap.counters.get("serve.fault.shard_stall{shard=0}"),
            Some(&1)
        );
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn combined_fault_stream_holds_all_invariants() {
    for seed in seeds() {
        let obs = Obs::enabled();
        // Connection c0 resets mid-query (hidden by the client's
        // retry-once, which lands on c1), c1's next response dribbles
        // out slowly, shard 1 panics on its 3rd job, and the first
        // reload is stale.
        let server = start(
            2,
            "conn-reset@c0,slow-frame@c1,shard-panic@s1q3,stale-swap@r1,delay-ms=1",
            obs.clone(),
        );
        let refs = [
            (1u64, Catalog::new(store_v1(), 1)),
            (2u64, Catalog::new(store_v2(), 1)),
        ];
        let path = scratch_path("combined.grul");
        store_v2().save(&path).unwrap();
        let mut client = connect(&server);
        let mut state = seed;
        let mut epochs = Vec::new();
        for i in 0..25 {
            if i == 10 {
                // Stale swap rejected; epoch must not move.
                assert!(client.reload(&path.to_string_lossy()).is_err());
                assert_eq!(server.epoch(), 1);
            }
            if i == 15 {
                assert_eq!(client.reload(&path.to_string_lossy()).unwrap(), 2);
            }
            let b = basket(&mut state);
            let reply = client.query_v2(&b, 10, 0).unwrap();
            assert_correct_for_epoch(&reply, &b, &refs, 10);
            if let QueryReply::Results { epoch, .. } = reply {
                epochs.push(epoch);
            }
        }
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "seed {seed}: epoch went backwards: {epochs:?}"
        );
        assert_eq!(epochs.last(), Some(&2));
        // Recovery: shard 1 restarted, answers are complete again and
        // byte-identical to the epoch-2 expectations.
        wait_until_recovered(&mut client);
        let reference = Catalog::new(store_v2(), 1);
        let mut state = seed ^ 0xFEED_FACE;
        for _ in 0..10 {
            let b = basket(&mut state);
            let expected = encode_response(&Response::ResultsV2 {
                epoch: 2,
                shards_missing: 0,
                recs: reference.query(&b, 10),
            });
            assert_eq!(client.query_v2_raw(&b, 10, 0).unwrap(), expected);
        }
        let snap = obs.metrics();
        assert_eq!(snap.counters.get("serve.fault.conn_reset"), Some(&1));
        assert_eq!(snap.counters.get("serve.fault.slow_frame"), Some(&1));
        assert_eq!(snap.counters.get("serve.shard_restarts{shard=1}"), Some(&1));
        assert_eq!(snap.counters.get("serve.swap_rejected"), Some(&1));
        assert_eq!(snap.counters.get("serve.swaps"), Some(&1));
        std::fs::remove_file(&path).ok();
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}
