//! Property tests for the serving layer's two codecs: the `GRUL` store
//! and the wire protocol. Arbitrary values round-trip exactly; random
//! corruption errors cleanly (never panics, never over-allocates).

use gar_mining::rules::Rule;
use gar_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BatchAnswer, Request, Response, PROTOCOL_VERSION,
};
use gar_serve::{Recommendation, RuleStore};
use gar_taxonomy::TaxonomyBuilder;
use gar_types::{ItemId, Itemset};
use proptest::prelude::*;

const NUM_ITEMS: u32 = 60;

/// A random flat taxonomy is enough here: the store embeds whatever
/// hierarchy it is given, and `determinism.rs` covers mined ones.
fn arb_itemset() -> impl Strategy<Value = Itemset> {
    proptest::collection::btree_set(0u32..NUM_ITEMS, 1..5)
        .prop_map(|s| Itemset::from_unsorted(s.into_iter().map(ItemId).collect()))
}

fn arb_rules() -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec((arb_itemset(), arb_itemset(), 0u64..100, 0u32..1001), 0..20)
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(a, c, sup, conf_ppm)| Rule {
                    antecedent: a,
                    consequent: c,
                    support_count: sup,
                    support: sup as f64 / 100.0,
                    confidence: f64::from(conf_ppm) / 1000.0,
                })
                .collect()
        })
}

fn arb_basket() -> impl Strategy<Value = Vec<ItemId>> {
    proptest::collection::vec(0u32..10_000, 0..12).prop_map(|v| v.into_iter().map(ItemId).collect())
}

proptest! {
    #[test]
    fn store_round_trips_through_disk(rules in arb_rules(), n_txn in 100u64..1_000) {
        // support_count stays below n_txn by construction (0..100).
        let tax = TaxonomyBuilder::new(NUM_ITEMS).build().unwrap();
        let store = RuleStore::new(rules, tax, n_txn);
        let path = std::env::temp_dir().join(format!(
            "gar-serve-prop-{}-{n_txn}-{}.grul",
            std::process::id(),
            store.rules.len()
        ));
        store.save(&path).unwrap();
        let loaded = RuleStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.rules, store.rules);
        prop_assert_eq!(loaded.num_transactions, store.num_transactions);
        prop_assert_eq!(loaded.taxonomy.num_items(), store.taxonomy.num_items());
    }

    #[test]
    fn requests_round_trip(basket in arb_basket(), top_k in 0u32..1000) {
        let req = Request::Query { basket, top_k };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(raw in proptest::collection::vec(
        (proptest::collection::btree_set(0u32..1000, 1..5), 0u64..500, 0u32..1001),
        0..10,
    )) {
        let recs: Vec<Recommendation> = raw
            .into_iter()
            .map(|(set, sup, conf_ppm)| {
                let confidence = f64::from(conf_ppm) / 1000.0;
                Recommendation {
                    consequent: Itemset::from_unsorted(
                        set.into_iter().map(ItemId).collect(),
                    ),
                    support_count: sup,
                    confidence,
                    score: confidence * sup as f64 / 500.0,
                }
            })
            .collect();
        let resp = Response::Results(recs);
        prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn batch_requests_round_trip(
        baskets in proptest::collection::vec(arb_basket(), 0..6),
        top_k in 0u32..1000,
        budget_ms in 0u32..10_000,
    ) {
        let req = Request::QueryBatch {
            version: PROTOCOL_VERSION,
            baskets,
            top_k,
            budget_ms,
        };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn batch_responses_round_trip(
        epoch in 0u64..1_000_000,
        raw in proptest::collection::vec(
            (
                0u32..3,
                proptest::collection::vec(
                    (proptest::collection::btree_set(0u32..1000, 1..4), 0u64..500, 0u32..1001),
                    0..4,
                ),
            ),
            0..6,
        ),
    ) {
        let answers: Vec<BatchAnswer> = raw
            .into_iter()
            .map(|(missing, recs)| BatchAnswer {
                shards_missing: missing,
                recs: recs
                    .into_iter()
                    .map(|(set, sup, conf_ppm)| {
                        let confidence = f64::from(conf_ppm) / 1000.0;
                        Recommendation {
                            consequent: Itemset::from_unsorted(
                                set.into_iter().map(ItemId).collect(),
                            ),
                            support_count: sup,
                            confidence,
                            score: confidence * sup as f64 / 500.0,
                        }
                    })
                    .collect(),
            })
            .collect();
        let resp = Response::ResultsBatch { epoch, answers };
        prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn corrupted_batch_frames_never_panic(
        baskets in proptest::collection::vec(arb_basket(), 0..4),
    ) {
        // Exhaustive over the frame: EVERY truncation must error or
        // report a clean partial read, and EVERY single-byte flip must
        // be caught by the checksum — on the new batch tags, never a
        // panic or a silent wrong decode.
        let payload = encode_request(&Request::QueryBatch {
            version: PROTOCOL_VERSION,
            baskets,
            top_k: 3,
            budget_ms: 25,
        });
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload).unwrap();
        for cut in 0..frame.len() {
            drop(read_frame(&mut std::io::Cursor::new(&frame[..cut])));
        }
        for flip in 0..frame.len() {
            let mut bad = frame.clone();
            bad[flip] ^= 0x01;
            if let Ok(Some(p)) = read_frame(&mut std::io::Cursor::new(&bad)) {
                prop_assert_eq!(p, payload.clone());
                prop_assert!(false, "single-bit flip went undetected at byte {}", flip);
            }
        }
        // And the payload itself, truncated at every boundary behind a
        // valid frame, must decode-error cleanly.
        for cut in 0..payload.len() {
            drop(decode_request(&payload[..cut]));
        }
    }

    #[test]
    fn corrupted_frames_never_panic(
        basket in arb_basket(),
        cut in 0usize..200,
        flip in 0usize..200,
    ) {
        let payload = encode_request(&Request::Query { basket, top_k: 3 });
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload).unwrap();
        // Truncation: must error or report clean EOF, never panic.
        let cut = cut.min(frame.len());
        drop(read_frame(&mut std::io::Cursor::new(&frame[..cut])));
        // Byte flip: a full-length frame with one damaged byte must
        // never decode to Ok(Some(original)) silently being wrong —
        // the checksum (or length guard) catches it.
        let flip = flip % frame.len();
        let mut bad = frame.clone();
        bad[flip] ^= 0x01;
        if let Ok(Some(p)) = read_frame(&mut std::io::Cursor::new(&bad)) {
            // Only reachable if the flip landed in the length field and
            // produced another checksum-valid framing — impossible with
            // a single-bit flip, so reaching here at all is a failure.
            prop_assert_eq!(p, payload);
            prop_assert!(false, "single-bit flip went undetected");
        }
    }

    #[test]
    fn garbage_payloads_error_cleanly(
        bytes in proptest::collection::vec(0u32..256, 0..64)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
    ) {
        drop(decode_request(&bytes));
        drop(decode_response(&bytes));
    }

    #[test]
    fn garbage_store_files_error_cleanly(
        bytes in proptest::collection::vec(0u32..256, 0..128)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
    ) {
        let path = std::env::temp_dir().join(format!(
            "gar-serve-garbage-{}-{}.grul",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(RuleStore::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
