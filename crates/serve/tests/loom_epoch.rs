//! Model checking of the epoch hot-swap cell.
//!
//! Compiled only under `--cfg gar_loom` (run via `cargo xtask loom`),
//! where [`gar_serve::EpochCell`] is built on the `gar-modelcheck`
//! virtual mutex: every schedule of every scenario below is explored,
//! so a passing suite means no interleaving of a query racing a swap
//! can observe a torn store (a mix of epochs), regress the epoch
//! number, or deadlock against the supervisor's slot-clearing restart
//! path.

#![cfg(gar_loom)]

use gar_modelcheck::sync::Mutex;
use gar_modelcheck::{model_with, thread, Config};
use gar_serve::EpochCell;
use std::sync::Arc;

fn exhaustive() -> Config {
    Config {
        fail_on_truncation: true,
        ..Config::default()
    }
}

fn bounded(preemptions: usize) -> Config {
    Config {
        preemption_bound: Some(preemptions),
        fail_on_truncation: true,
        ..Config::default()
    }
}

/// A query racing one swap observes exactly the old or the new epoch —
/// `(1, "old")` or `(2, "new")` — never a mix, and the snapshot stays
/// coherent after the swap lands.
#[test]
fn query_racing_a_swap_sees_exactly_one_epoch() {
    let schedules = model_with(exhaustive(), || {
        let cell = Arc::new(EpochCell::new("old"));
        let swapper = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                assert_eq!(cell.swap("new"), 2);
            })
        };
        // The "query": one snapshot, read twice (dispatch + merge in
        // the real server both go through the same snapshot).
        let snapshot = cell.load();
        let seen = (snapshot.number(), *snapshot.value());
        assert!(
            seen == (1, "old") || seen == (2, "new"),
            "torn epoch observed: {seen:?}"
        );
        swapper.join().unwrap();
        // After the swap joined, the old snapshot still reads its own
        // epoch (drained queries finish on the store they started on)…
        assert_eq!((snapshot.number(), *snapshot.value()), seen);
        // …and a fresh load sees the new epoch.
        let fresh = cell.load();
        assert_eq!((fresh.number(), *fresh.value()), (2, "new"));
    });
    assert!(schedules > 1);
}

/// Two concurrent swappers serialize: epoch numbers never repeat or
/// regress, and both land.
#[test]
fn concurrent_swaps_stay_monotonic() {
    model_with(exhaustive(), || {
        let cell = Arc::new(EpochCell::new(0u32));
        let a = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.swap(1))
        };
        let b = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.swap(2))
        };
        let (ea, eb) = (a.join().unwrap(), b.join().unwrap());
        assert!(
            (ea == 2 && eb == 3) || (ea == 3 && eb == 2),
            "epochs {ea},{eb} must be 2 and 3 in some order"
        );
        assert_eq!(cell.epoch(), 3);
    });
}

/// The drain-then-drop shape of the server cannot deadlock with the
/// supervisor restart path: a reader holding an old snapshot, a
/// supervisor clearing and republishing a shard slot, and a swapper
/// publishing a new epoch all run to completion under every schedule.
#[test]
fn drain_and_restart_cannot_deadlock() {
    model_with(bounded(2), || {
        let cell = Arc::new(EpochCell::new("old"));
        // The shard slot: `Some(sender)` stands in for the published
        // queue endpoint; the supervisor's restart clears then
        // republishes it — the same two-lock structure as server.rs
        // (slot lock and epoch lock are never held together).
        let slot = Arc::new(Mutex::new(Some(1u32)));
        let reader = {
            let cell = Arc::clone(&cell);
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Handler order: snapshot first, then the slot (dispatch).
                let snapshot = cell.load();
                let endpoint = *slot.lock();
                // Merge happens on the snapshot regardless of the slot
                // state (a cleared slot is a degraded answer).
                let _ = (snapshot.number(), *snapshot.value(), endpoint);
            })
        };
        let supervisor = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Crash: clear the slot…
                slot.lock().take();
                // …and restart: publish the next incarnation.
                *slot.lock() = Some(2);
            })
        };
        let swapper = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.swap("new");
            })
        };
        reader.join().unwrap();
        supervisor.join().unwrap();
        swapper.join().unwrap();
        assert_eq!(cell.epoch(), 2);
        assert_eq!(*slot.lock(), Some(2));
    });
}
