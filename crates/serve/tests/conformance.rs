//! Serve conformance suite: the wire path must be indistinguishable
//! from the in-process engine.
//!
//! Three contracts, each checked at 1, 2, and 4 shards:
//!
//! * **Batched wire ≡ engine** — every basket of a `QueryBatch` frame
//!   answers exactly what [`Catalog::query`] answers in process, cache
//!   on and cache off, before and after an epoch swap.
//! * **Affinity ≡ broadcast** — raw response payloads for seeded
//!   random baskets are byte-identical across shard counts (and to the
//!   locally encoded single-shard expectation). A 1-shard server
//!   effectively broadcasts everything, so equality across shard
//!   counts is exactly "affinity routing agrees with
//!   broadcast-and-merge".
//! * **Cache coherence vs epochs** — a basket answered from the cache
//!   before a `Reload` is re-scored after it, and the
//!   `serve.cache.{hits,misses}` counters reconcile against
//!   `serve.baskets`.

use gar_cluster::RetryPolicy;
use gar_mining::rules::Rule;
use gar_obs::Obs;
use gar_serve::protocol::{encode_response, Response};
use gar_serve::{serve, BatchReply, Catalog, Client, QueryReply, RuleStore, Server, ServerConfig};
use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
use gar_types::{iset, ItemId, Itemset};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn sa95_taxonomy() -> Taxonomy {
    let mut b = TaxonomyBuilder::new(8);
    for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
        b.edge(c, p).unwrap();
    }
    b.build().unwrap()
}

fn rule(a: Itemset, c: Itemset, sup: u64, conf: f64) -> Rule {
    Rule {
        antecedent: a,
        consequent: c,
        support_count: sup,
        support: sup as f64 / 6.0,
        confidence: conf,
    }
}

/// Epoch-1 rules (the chaos/end-to-end fixture).
fn store_v1() -> RuleStore {
    let rules = vec![
        rule(iset![1], iset![7], 2, 2.0 / 3.0),
        rule(iset![3], iset![2], 3, 0.9),
        rule(iset![7], iset![1], 2, 1.0),
        rule(iset![2], iset![6], 1, 0.4),
        rule(iset![4], iset![7], 1, 0.5),
    ];
    RuleStore::new(rules, sa95_taxonomy(), 6)
}

/// Epoch-2 rules swapped in by a reload.
fn store_v2() -> RuleStore {
    let rules = vec![
        rule(iset![1], iset![7], 4, 0.8),
        rule(iset![2], iset![3], 2, 0.6),
        rule(iset![6], iset![7], 3, 0.7),
    ];
    RuleStore::new(rules, sa95_taxonomy(), 8)
}

/// SplitMix64, the workspace's seeded stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded basket over the fixture's items: mixes single-root baskets
/// (affinity's fast path) and multi-root ones (forced fan-out).
fn basket(state: &mut u64) -> Vec<ItemId> {
    let universe = [0u32, 1, 2, 3, 4, 5, 6, 7];
    let len = 1 + (splitmix(state) % 3) as usize;
    (0..len)
        .map(|_| ItemId(universe[(splitmix(state) % universe.len() as u64) as usize]))
        .collect()
}

fn start(shards: usize, cache_capacity: usize, obs: Obs) -> Server {
    let cfg = ServerConfig {
        shards,
        deadline: Duration::from_secs(5),
        cache_capacity,
        ..ServerConfig::default()
    };
    serve("127.0.0.1:0", store_v1(), cfg, obs).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect(
        &server.local_addr().to_string(),
        Some(Duration::from_secs(5)),
        &RetryPolicy::default(),
    )
    .unwrap()
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "gar-serve-conf-{}-{seq}-{name}",
        std::process::id()
    ))
}

const TOP_K: usize = 10;
const SEED: u64 = 0xC0FF_EE11;

#[test]
fn batched_wire_answers_match_the_in_process_engine() {
    // Reference engines are single-shard: a 1-shard catalog scans
    // every rule, i.e. broadcast-and-merge by construction.
    let refs = [
        (1u64, Catalog::new(store_v1(), 1)),
        (2u64, Catalog::new(store_v2(), 1)),
    ];
    let path = scratch_path("conform.grul");
    store_v2().save(&path).unwrap();
    for shards in [1usize, 2, 4] {
        for cache_capacity in [0usize, 64] {
            let server = start(shards, cache_capacity, Obs::disabled());
            let mut client = connect(&server);
            for (epoch, reference) in &refs {
                if *epoch == 2 {
                    assert_eq!(client.reload(&path.to_string_lossy()).unwrap(), 2);
                }
                let mut state = SEED ^ epoch;
                // Repeat each pass twice so the second sees cache hits
                // (when enabled); answers must not change.
                for _pass in 0..2 {
                    let mut pass_state = state;
                    let baskets: Vec<Vec<ItemId>> =
                        (0..40).map(|_| basket(&mut pass_state)).collect();
                    for chunk in baskets.chunks(8) {
                        let reply = client.query_batch(chunk, TOP_K as u32, 0).unwrap();
                        let BatchReply::Results {
                            epoch: got,
                            answers,
                        } = reply
                        else {
                            panic!("unbudgeted batch was shed");
                        };
                        assert_eq!(got, *epoch);
                        assert_eq!(answers.len(), chunk.len());
                        for (b, a) in chunk.iter().zip(&answers) {
                            assert_eq!(
                                a.shards_missing, 0,
                                "healthy server degraded {b:?} at {shards} shards"
                            );
                            assert_eq!(
                                a.recs,
                                reference.query(b, TOP_K),
                                "batched wire answer diverged from the engine \
                                 for {b:?} at {shards} shards (cache {cache_capacity})"
                            );
                        }
                    }
                }
                state = splitmix(&mut state); // decouple passes per epoch
            }
            client.shutdown().unwrap();
            server.wait().unwrap();
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn affinity_routing_is_byte_identical_to_broadcast_across_shard_counts() {
    let reference = Catalog::new(store_v1(), 1);
    let mut state = SEED;
    let baskets: Vec<Vec<ItemId>> = (0..60).map(|_| basket(&mut state)).collect();
    // Locally encoded expectation = broadcast-and-merge over every rule.
    let expected: Vec<Vec<u8>> = baskets
        .iter()
        .map(|b| {
            encode_response(&Response::ResultsV2 {
                epoch: 1,
                shards_missing: 0,
                recs: reference.query(b, TOP_K),
            })
        })
        .collect();
    for shards in [1usize, 2, 4] {
        let obs = Obs::enabled();
        let server = start(shards, 0, obs.clone());
        let mut client = connect(&server);
        for (b, want) in baskets.iter().zip(&expected) {
            let got = client.query_v2_raw(b, TOP_K as u32, 0).unwrap();
            assert_eq!(
                &got, want,
                "raw payload for {b:?} differs from broadcast at {shards} shards"
            );
        }
        // Batched framing must carry the same answers too.
        for chunk in baskets.chunks(16) {
            let BatchReply::Results { epoch, answers } =
                client.query_batch(chunk, TOP_K as u32, 0).unwrap()
            else {
                panic!("unbudgeted batch was shed");
            };
            assert_eq!(epoch, 1);
            for (b, a) in chunk.iter().zip(&answers) {
                assert_eq!(a.recs, reference.query(b, TOP_K));
            }
        }
        let snap = obs.metrics();
        let single = snap
            .counters
            .get("serve.routed.single")
            .copied()
            .unwrap_or(0);
        let fanout = snap
            .counters
            .get("serve.routed.fanout")
            .copied()
            .unwrap_or(0);
        // The seeded mix must actually exercise both paths, otherwise
        // this test proves nothing about affinity.
        assert!(single > 0, "no single-root basket was routed: {snap:?}");
        assert!(fanout > 0, "no multi-root basket fanned out: {snap:?}");
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn cache_answers_hit_then_invalidate_across_epochs() {
    let v1 = Catalog::new(store_v1(), 1);
    let v2 = Catalog::new(store_v2(), 1);
    let path = scratch_path("cache.grul");
    store_v2().save(&path).unwrap();
    let obs = Obs::enabled();
    let server = start(2, 32, obs.clone());
    let mut client = connect(&server);
    let b = [ItemId(3)];

    let ask = |client: &mut Client, want_epoch: u64, reference: &Catalog| {
        let QueryReply::Results {
            epoch,
            shards_missing,
            recs,
        } = client.query_v2(&b, TOP_K as u32, 0).unwrap()
        else {
            panic!("unbudgeted query was shed");
        };
        assert_eq!(epoch, want_epoch);
        assert_eq!(shards_missing, 0);
        assert_eq!(recs, reference.query(&b, TOP_K));
    };

    // Miss, then hit: the second answer comes from the cache and must
    // be identical to the scored one.
    ask(&mut client, 1, &v1);
    ask(&mut client, 1, &v1);
    let snap = obs.metrics();
    assert_eq!(snap.counters.get("serve.cache.hits"), Some(&1), "{snap:?}");
    assert_eq!(snap.counters.get("serve.cache.misses"), Some(&1));

    // The swap invalidates: the same basket is re-scored against the
    // new epoch, never replayed from the old one.
    assert_eq!(client.reload(&path.to_string_lossy()).unwrap(), 2);
    ask(&mut client, 2, &v2);
    ask(&mut client, 2, &v2);
    let snap = obs.metrics();
    assert_eq!(snap.counters.get("serve.cache.hits"), Some(&2));
    assert_eq!(snap.counters.get("serve.cache.misses"), Some(&2));
    // Every basket either hit or missed the cache: the counters
    // reconcile exactly against the basket count.
    let hits = snap.counters.get("serve.cache.hits").copied().unwrap_or(0);
    let misses = snap
        .counters
        .get("serve.cache.misses")
        .copied()
        .unwrap_or(0);
    assert_eq!(Some(&(hits + misses)), snap.counters.get("serve.baskets"));

    std::fs::remove_file(&path).ok();
    client.shutdown().unwrap();
    server.wait().unwrap();
}
