//! End-to-end serving over real loopback TCP: a known hierarchy, a
//! running sharded server, and a client — answers must match the
//! in-process engine exactly, taxonomy-ancestor matches included, a
//! hostile frame must not take the server down, reloads must hot-swap
//! epochs without dropping queries, and old-version frames must get a
//! typed mismatch answer rather than a hangup.

use gar_cluster::{FaultPlan, RetryPolicy};
use gar_mining::rules::Rule;
use gar_obs::Obs;
use gar_serve::{serve, Catalog, Client, QueryReply, RuleStore, ServerConfig};
use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
use gar_types::{iset, ItemId, Itemset};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The [SA95] hierarchy: clothes(0) → outerwear(1) → {jackets(3),
/// ski pants(4)}; clothes(0) → shirts(2); footwear(5) → {shoes(6),
/// boots(7)}.
fn sa95_taxonomy() -> Taxonomy {
    let mut b = TaxonomyBuilder::new(8);
    for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
        b.edge(c, p).unwrap();
    }
    b.build().unwrap()
}

fn rule(a: Itemset, c: Itemset, sup: u64, conf: f64) -> Rule {
    Rule {
        antecedent: a,
        consequent: c,
        support_count: sup,
        support: sup as f64 / 6.0,
        confidence: conf,
    }
}

fn fixture_rules() -> Vec<Rule> {
    vec![
        // The paper's flagship example: outerwear ⇒ hiking boots.
        rule(iset![1], iset![7], 2, 2.0 / 3.0),
        rule(iset![3], iset![2], 3, 0.9),
        rule(iset![7], iset![1], 2, 1.0),
        rule(iset![2], iset![6], 1, 0.4),
        rule(iset![4], iset![7], 1, 0.5),
    ]
}

fn fixture_store() -> RuleStore {
    RuleStore::new(fixture_rules(), sa95_taxonomy(), 6)
}

/// A second-generation rule set so a reload has observable effects.
fn refreshed_store() -> RuleStore {
    let rules = vec![
        rule(iset![1], iset![7], 4, 0.8),
        rule(iset![2], iset![3], 2, 0.6),
    ];
    RuleStore::new(rules, sa95_taxonomy(), 8)
}

/// A unique scratch path under the OS temp dir.
fn scratch_path(name: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("gar-serve-e2e-{}-{seq}-{name}", std::process::id()))
}

fn start(shards: usize, obs: Obs) -> gar_serve::Server {
    let cfg = ServerConfig {
        shards,
        deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    serve("127.0.0.1:0", fixture_store(), cfg, obs).unwrap()
}

fn connect(server: &gar_serve::Server) -> Client {
    Client::connect(
        &server.local_addr().to_string(),
        Some(Duration::from_secs(5)),
        &RetryPolicy::default(),
    )
    .unwrap()
}

#[test]
fn served_answers_match_the_in_process_engine() {
    let server = start(2, Obs::disabled());
    let reference = Catalog::new(fixture_store(), 1);
    let mut client = connect(&server);
    let baskets: Vec<Vec<ItemId>> = vec![
        vec![ItemId(3)],
        vec![ItemId(7)],
        vec![ItemId(2), ItemId(4)],
        vec![ItemId(3), ItemId(6)],
        vec![ItemId(0)], // an interior category, no rule mentions it
    ];
    for basket in &baskets {
        assert_eq!(
            client.query(basket, 10).unwrap(),
            reference.query(basket, 10),
            "basket {basket:?}"
        );
    }
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn ancestor_match_is_served_over_the_wire() {
    let server = start(1, Obs::disabled());
    let mut client = connect(&server);
    // jackets(3) alone: "outerwear ⇒ hiking boots" fires through the
    // ancestor, so boots(7) must appear among the recommendations.
    let recs = client.query(&[ItemId(3)], 10).unwrap();
    assert!(
        recs.iter().any(|r| r.consequent == iset![7]),
        "no ancestor-driven recommendation in {recs:?}"
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn per_shard_metrics_are_recorded() {
    let obs = Obs::enabled();
    let server = start(2, obs.clone());
    let mut client = connect(&server);
    // Multi-root baskets (clothes + footwear roots) broadcast to every
    // shard; the single-root basket routes to exactly one.
    for basket in [
        vec![ItemId(3), ItemId(7)],
        vec![ItemId(2), ItemId(6)],
        vec![ItemId(4), ItemId(5)],
    ] {
        client.query(&basket, 5).unwrap();
    }
    client.query(&[ItemId(3)], 5).unwrap();
    client.shutdown().unwrap();
    server.wait().unwrap();
    let snap = obs.metrics();
    let mut scored = 0;
    for shard in 0..2 {
        let key = format!("serve.queries{{shard={shard}}}");
        let n = snap.counters.get(&key).copied().unwrap_or(0);
        assert!(n >= 3, "shard {shard} missed broadcasts: {snap:?}");
        scored += n;
    }
    // 3 broadcasts × 2 shards + 1 single-root dispatch.
    assert_eq!(scored, 7, "{snap:?}");
    assert_eq!(snap.counters.get("serve.requests"), Some(&4));
    assert_eq!(snap.counters.get("serve.baskets"), Some(&4));
    assert_eq!(snap.counters.get("serve.routed.fanout"), Some(&3));
    assert_eq!(snap.counters.get("serve.routed.single"), Some(&1));
    assert!(snap.histograms.contains_key("serve.latency_us"));
    assert!(snap.histograms.contains_key("serve.shard_us{shard=0}"));
    // The trace has one `query` span lane per shard.
    let trace = obs.chrome_trace_json();
    assert!(trace.contains("\"query\""), "{trace}");
}

#[test]
fn oversize_frame_gets_an_error_and_the_server_survives() {
    let server = start(1, Obs::disabled());
    // A raw socket claiming a 1 GiB frame: the server must refuse it
    // (error frame, connection dropped) without crashing or allocating.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 32]).unwrap();
    let resp = gar_serve::protocol::read_frame(&mut raw).unwrap();
    let decoded = gar_serve::protocol::decode_response(&resp.unwrap()).unwrap();
    assert!(
        matches!(decoded, gar_serve::protocol::Response::Error(_)),
        "{decoded:?}"
    );
    drop(raw);

    // Garbage that fails the frame checksum is refused the same way.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&8u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xAB; 16]).unwrap();
    let resp = gar_serve::protocol::read_frame(&mut raw).unwrap();
    assert!(resp.is_some());
    drop(raw);

    // The server is still alive and correct afterwards.
    let mut client = connect(&server);
    assert!(!client.query(&[ItemId(3)], 5).unwrap().is_empty());
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn reload_hot_swaps_the_epoch_and_answers_change() {
    let server = start(2, Obs::disabled());
    let mut client = connect(&server);
    let basket = [ItemId(3)];

    // Epoch 1: the original rules answer, stamped with their epoch.
    let reply = client.query_v2(&basket, 10, 0).unwrap();
    let reference_v1 = Catalog::new(fixture_store(), 1);
    assert_eq!(
        reply,
        QueryReply::Results {
            epoch: 1,
            shards_missing: 0,
            recs: reference_v1.query(&basket, 10),
        }
    );

    // Hot-swap in the refreshed store.
    let path = scratch_path("refresh.grul");
    refreshed_store().save(&path).unwrap();
    let epoch = client.reload(&path.to_string_lossy()).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(server.epoch(), 2);

    // Epoch 2: the refreshed rules answer on the same connection.
    let reply = client.query_v2(&basket, 10, 0).unwrap();
    let reference_v2 = Catalog::new(refreshed_store(), 1);
    assert_eq!(
        reply,
        QueryReply::Results {
            epoch: 2,
            shards_missing: 0,
            recs: reference_v2.query(&basket, 10),
        }
    );
    // v1 queries keep working after the swap.
    assert_eq!(
        client.query(&basket, 10).unwrap(),
        reference_v2.query(&basket, 10)
    );
    std::fs::remove_file(&path).ok();
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn corrupt_reload_is_rejected_while_the_old_epoch_serves() {
    let obs = Obs::enabled();
    let server = start(1, obs.clone());
    let mut client = connect(&server);
    let basket = [ItemId(3)];
    let reference = Catalog::new(fixture_store(), 1);

    // Write a refreshed store, then flip one byte mid-file.
    let path = scratch_path("torn.grul");
    refreshed_store().save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let err = client.reload(&path.to_string_lossy()).unwrap_err();
    assert!(
        err.to_string().contains("reload rejected"),
        "unexpected reload error: {err}"
    );
    // The old epoch keeps answering, proven by the epoch tag.
    let reply = client.query_v2(&basket, 10, 0).unwrap();
    assert_eq!(
        reply,
        QueryReply::Results {
            epoch: 1,
            shards_missing: 0,
            recs: reference.query(&basket, 10),
        }
    );
    // A missing file is rejected the same way.
    let err = client.reload("/nonexistent/rules.grul").unwrap_err();
    assert!(err.to_string().contains("reload rejected"), "{err}");
    assert_eq!(server.epoch(), 1);
    let snap = obs.metrics();
    assert_eq!(snap.counters.get("serve.swap_rejected"), Some(&2));
    assert!(!snap.counters.contains_key("serve.swaps"));
    std::fs::remove_file(&path).ok();
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn version_mismatch_is_typed_and_the_connection_survives() {
    use gar_serve::protocol::{
        decode_response, encode_request, read_frame, write_frame, Request, Response,
        PROTOCOL_VERSION,
    };
    let server = start(1, Obs::disabled());
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    // A v2 frame from the future: version 9.
    let req = encode_request(&Request::QueryV2 {
        version: 9,
        basket: vec![ItemId(3)],
        top_k: 5,
        budget_ms: 0,
    });
    write_frame(&mut raw, &req).unwrap();
    let payload = read_frame(&mut raw).unwrap().unwrap();
    assert_eq!(
        decode_response(&payload).unwrap(),
        Response::VersionMismatch {
            server: PROTOCOL_VERSION,
            client: 9,
        }
    );
    // The connection stays open and protocol-consistent: a v1 query on
    // the same socket still answers.
    let req = encode_request(&Request::Query {
        basket: vec![ItemId(3)],
        top_k: 5,
    });
    write_frame(&mut raw, &req).unwrap();
    let payload = read_frame(&mut raw).unwrap().unwrap();
    assert!(matches!(
        decode_response(&payload).unwrap(),
        Response::Results(recs) if !recs.is_empty()
    ));
    drop(raw);
    server.shutdown();
    server.wait().unwrap();
}

#[test]
fn client_transparently_retries_after_a_connection_reset() {
    let obs = Obs::enabled();
    let cfg = ServerConfig {
        shards: 2,
        faults: FaultPlan::parse("conn-reset@c0").unwrap(),
        ..ServerConfig::default()
    };
    let server = serve("127.0.0.1:0", fixture_store(), cfg, obs.clone()).unwrap();
    let mut client = connect(&server);
    // The first connection is reset right after the request is read;
    // the client must reconnect and retry without surfacing an error.
    let recs = client.query(&[ItemId(3)], 10).unwrap();
    let reference = Catalog::new(fixture_store(), 1);
    assert_eq!(recs, reference.query(&[ItemId(3)], 10));
    assert_eq!(
        obs.metrics().counters.get("serve.fault.conn_reset"),
        Some(&1)
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn slow_frame_writes_are_reassembled_by_the_client() {
    let obs = Obs::enabled();
    let cfg = ServerConfig {
        shards: 1,
        faults: FaultPlan::parse("slow-frame@c0,delay-ms=1").unwrap(),
        ..ServerConfig::default()
    };
    let server = serve("127.0.0.1:0", fixture_store(), cfg, obs.clone()).unwrap();
    let mut client = connect(&server);
    // The response frame dribbles out in 3-byte chunks; the framed
    // reader must reassemble it into the exact same answer.
    let recs = client.query(&[ItemId(3)], 10).unwrap();
    let reference = Catalog::new(fixture_store(), 1);
    assert_eq!(recs, reference.query(&[ItemId(3)], 10));
    assert_eq!(
        obs.metrics().counters.get("serve.fault.slow_frame"),
        Some(&1)
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn shutdown_via_server_handle_unblocks_wait() {
    let server = start(3, Obs::disabled());
    let mut client = connect(&server);
    client.query(&[ItemId(3)], 5).unwrap();
    drop(client);
    server.shutdown();
    server.wait().unwrap();
}
