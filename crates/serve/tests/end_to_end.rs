//! End-to-end serving over real loopback TCP: a known hierarchy, a
//! running sharded server, and a client — answers must match the
//! in-process engine exactly, taxonomy-ancestor matches included, and
//! a hostile frame must not take the server down.

use gar_cluster::RetryPolicy;
use gar_mining::rules::Rule;
use gar_obs::Obs;
use gar_serve::{serve, Catalog, Client, RuleStore, ServerConfig};
use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
use gar_types::{iset, ItemId, Itemset};
use std::io::Write as _;
use std::time::Duration;

/// The [SA95] hierarchy: clothes(0) → outerwear(1) → {jackets(3),
/// ski pants(4)}; clothes(0) → shirts(2); footwear(5) → {shoes(6),
/// boots(7)}.
fn sa95_taxonomy() -> Taxonomy {
    let mut b = TaxonomyBuilder::new(8);
    for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
        b.edge(c, p).unwrap();
    }
    b.build().unwrap()
}

fn rule(a: Itemset, c: Itemset, sup: u64, conf: f64) -> Rule {
    Rule {
        antecedent: a,
        consequent: c,
        support_count: sup,
        support: sup as f64 / 6.0,
        confidence: conf,
    }
}

fn fixture_rules() -> Vec<Rule> {
    vec![
        // The paper's flagship example: outerwear ⇒ hiking boots.
        rule(iset![1], iset![7], 2, 2.0 / 3.0),
        rule(iset![3], iset![2], 3, 0.9),
        rule(iset![7], iset![1], 2, 1.0),
        rule(iset![2], iset![6], 1, 0.4),
        rule(iset![4], iset![7], 1, 0.5),
    ]
}

fn fixture_store() -> RuleStore {
    RuleStore::new(fixture_rules(), sa95_taxonomy(), 6)
}

fn start(shards: usize, obs: Obs) -> gar_serve::Server {
    let cfg = ServerConfig {
        shards,
        deadline: Duration::from_secs(5),
    };
    serve("127.0.0.1:0", fixture_store(), cfg, obs).unwrap()
}

fn connect(server: &gar_serve::Server) -> Client {
    Client::connect(
        &server.local_addr().to_string(),
        Some(Duration::from_secs(5)),
        &RetryPolicy::default(),
    )
    .unwrap()
}

#[test]
fn served_answers_match_the_in_process_engine() {
    let server = start(2, Obs::disabled());
    let reference = Catalog::new(fixture_store(), 1);
    let mut client = connect(&server);
    let baskets: Vec<Vec<ItemId>> = vec![
        vec![ItemId(3)],
        vec![ItemId(7)],
        vec![ItemId(2), ItemId(4)],
        vec![ItemId(3), ItemId(6)],
        vec![ItemId(0)], // an interior category, no rule mentions it
    ];
    for basket in &baskets {
        assert_eq!(
            client.query(basket, 10).unwrap(),
            reference.query(basket, 10),
            "basket {basket:?}"
        );
    }
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn ancestor_match_is_served_over_the_wire() {
    let server = start(1, Obs::disabled());
    let mut client = connect(&server);
    // jackets(3) alone: "outerwear ⇒ hiking boots" fires through the
    // ancestor, so boots(7) must appear among the recommendations.
    let recs = client.query(&[ItemId(3)], 10).unwrap();
    assert!(
        recs.iter().any(|r| r.consequent == iset![7]),
        "no ancestor-driven recommendation in {recs:?}"
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn per_shard_metrics_are_recorded() {
    let obs = Obs::enabled();
    let server = start(2, obs.clone());
    let mut client = connect(&server);
    for basket in [vec![ItemId(3)], vec![ItemId(7)], vec![ItemId(2)]] {
        client.query(&basket, 5).unwrap();
    }
    client.shutdown().unwrap();
    server.wait().unwrap();
    let snap = obs.metrics();
    for shard in 0..2 {
        let key = format!("serve.queries{{shard={shard}}}");
        assert_eq!(snap.counters.get(&key), Some(&3), "missing {key}: {snap:?}");
    }
    assert_eq!(snap.counters.get("serve.requests"), Some(&3));
    assert!(snap.histograms.contains_key("serve.latency_us"));
    assert!(snap.histograms.contains_key("serve.shard_us{shard=0}"));
    // The trace has one `query` span lane per shard.
    let trace = obs.chrome_trace_json();
    assert!(trace.contains("\"query\""), "{trace}");
}

#[test]
fn oversize_frame_gets_an_error_and_the_server_survives() {
    let server = start(1, Obs::disabled());
    // A raw socket claiming a 1 GiB frame: the server must refuse it
    // (error frame, connection dropped) without crashing or allocating.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 32]).unwrap();
    let resp = gar_serve::protocol::read_frame(&mut raw).unwrap();
    let decoded = gar_serve::protocol::decode_response(&resp.unwrap()).unwrap();
    assert!(
        matches!(decoded, gar_serve::protocol::Response::Error(_)),
        "{decoded:?}"
    );
    drop(raw);

    // Garbage that fails the frame checksum is refused the same way.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&8u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xAB; 16]).unwrap();
    let resp = gar_serve::protocol::read_frame(&mut raw).unwrap();
    assert!(resp.is_some());
    drop(raw);

    // The server is still alive and correct afterwards.
    let mut client = connect(&server);
    assert!(!client.query(&[ItemId(3)], 5).unwrap().is_empty());
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn shutdown_via_server_handle_unblocks_wait() {
    let server = start(3, Obs::disabled());
    let mut client = connect(&server);
    client.query(&[ItemId(3)], 5).unwrap();
    drop(client);
    server.shutdown();
    server.wait().unwrap();
}
