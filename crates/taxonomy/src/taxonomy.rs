//! The immutable, query-optimized taxonomy.

use gar_types::ItemId;

/// An immutable classification hierarchy over items `0..num_items`.
///
/// Construction goes through [`crate::TaxonomyBuilder`] (validated) or
/// [`crate::synth`] (random forests for the synthetic datasets). All queries
/// are `O(1)` or proportional to the answer size: the proper-ancestor
/// closure is precomputed into one flattened arena ordered bottom-up
/// (parent first, root last).
#[derive(Debug, Clone)]
pub struct Taxonomy {
    parent: Vec<Option<ItemId>>,
    /// Flattened ancestor closure: `anc_data[anc_off[i]..anc_off[i+1]]` are
    /// the proper ancestors of item `i`, nearest first.
    anc_data: Vec<ItemId>,
    anc_off: Vec<u32>,
    root_of: Vec<ItemId>,
    depth: Vec<u32>,
    children: Vec<Vec<ItemId>>,
    roots: Vec<ItemId>,
    leaves: Vec<ItemId>,
    max_depth: u32,
}

impl Taxonomy {
    /// Builds all derived tables from a validated parent array.
    ///
    /// Callers must have checked acyclicity; this is `pub(crate)` for that
    /// reason.
    pub(crate) fn from_parent_array(parent: Vec<Option<ItemId>>) -> Taxonomy {
        let n = parent.len();
        let mut children: Vec<Vec<ItemId>> = vec![Vec::new(); n];
        for (c, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(ItemId(c as u32));
            }
        }

        let mut anc_data = Vec::new();
        let mut anc_off = Vec::with_capacity(n + 1);
        let mut root_of = Vec::with_capacity(n);
        let mut depth = vec![0u32; n];
        anc_off.push(0u32);
        let mut max_depth = 0;
        for i in 0..n {
            let mut cur = parent[i];
            let mut d = 0u32;
            let mut root = ItemId(i as u32);
            while let Some(p) = cur {
                anc_data.push(p);
                root = p;
                d += 1;
                cur = parent[p.index()];
            }
            anc_off.push(anc_data.len() as u32);
            root_of.push(root);
            depth[i] = d;
            max_depth = max_depth.max(d);
        }

        let roots: Vec<ItemId> = (0..n)
            .filter(|&i| parent[i].is_none())
            .map(|i| ItemId(i as u32))
            .collect();
        let leaves: Vec<ItemId> = (0..n)
            .filter(|&i| children[i].is_empty())
            .map(|i| ItemId(i as u32))
            .collect();

        Taxonomy {
            parent,
            anc_data,
            anc_off,
            root_of,
            depth,
            children,
            roots,
            leaves,
            max_depth,
        }
    }

    /// Total number of items (leaves + interior + roots).
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.parent.len() as u32
    }

    /// The direct parent, or `None` for a root.
    #[inline]
    pub fn parent(&self, item: ItemId) -> Option<ItemId> {
        self.parent[item.index()]
    }

    /// The proper ancestors of `item`, nearest (parent) first, root last.
    #[inline]
    pub fn ancestors(&self, item: ItemId) -> &[ItemId] {
        let lo = self.anc_off[item.index()] as usize;
        let hi = self.anc_off[item.index() + 1] as usize;
        &self.anc_data[lo..hi]
    }

    /// The precomputed ancestor closure as one flat offsets+ids table.
    ///
    /// Built once at construction and shared by every pass of every miner
    /// family: `ids()[offsets()[i]..offsets()[i+1]]` are the proper
    /// ancestors of item `i`, nearest first. Hot loops that want to avoid
    /// even the bounds arithmetic of [`Taxonomy::ancestors`] can borrow
    /// the two slices directly.
    #[inline]
    pub fn closure(&self) -> AncestorClosure<'_> {
        AncestorClosure {
            offsets: &self.anc_off,
            ids: &self.anc_data,
        }
    }

    /// The root of `item`'s tree (`item` itself when it is a root).
    ///
    /// This is the partitioning key of the H-HPGM family: every ancestor
    /// itemset of an itemset maps to the same root itemset, so placing
    /// candidates by root keeps whole generalization chains on one node.
    #[inline]
    pub fn root_of(&self, item: ItemId) -> ItemId {
        self.root_of[item.index()]
    }

    /// Depth below the root: roots are 0.
    #[inline]
    pub fn depth(&self, item: ItemId) -> u32 {
        self.depth[item.index()]
    }

    /// The deepest level in the forest.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Direct children of `item`.
    #[inline]
    pub fn children(&self, item: ItemId) -> &[ItemId] {
        &self.children[item.index()]
    }

    /// All roots, in increasing id order.
    #[inline]
    pub fn roots(&self) -> &[ItemId] {
        &self.roots
    }

    /// All leaves (items with no children), in increasing id order.
    #[inline]
    pub fn leaves(&self) -> &[ItemId] {
        &self.leaves
    }

    /// True when `item` has no children.
    #[inline]
    pub fn is_leaf(&self, item: ItemId) -> bool {
        self.children[item.index()].is_empty()
    }

    /// True when `item` has no parent.
    #[inline]
    pub fn is_root(&self, item: ItemId) -> bool {
        self.parent[item.index()].is_none()
    }

    /// True when `anc` is a **proper** ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ItemId, desc: ItemId) -> bool {
        // Depth prunes most negative queries; ancestor lists are short
        // (taxonomy depth), so a linear scan beats building hash sets.
        if self.depth[anc.index()] >= self.depth[desc.index()] {
            return false;
        }
        self.ancestors(desc).contains(&anc)
    }

    /// True when `a == b`, or one is a proper ancestor of the other.
    pub fn related(&self, a: ItemId, b: ItemId) -> bool {
        a == b || self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// All items of the tree rooted at `root`, including `root`, in
    /// breadth-first order.
    pub fn tree_items(&self, root: ItemId) -> Vec<ItemId> {
        let mut out = vec![root];
        let mut i = 0;
        while i < out.len() {
            out.extend_from_slice(self.children(out[i]));
            i += 1;
        }
        out
    }

    /// Number of items in the tree rooted at `root` (including the root).
    pub fn tree_size(&self, root: ItemId) -> usize {
        self.tree_items(root).len()
    }

    /// *Extends* a transaction: the union of the items and **all** their
    /// ancestors, sorted and de-duplicated. This is Cumulate's `t'` (and
    /// NPGM/HPGM's), before the candidate-presence filter.
    pub fn extend_transaction(&self, t: &[ItemId]) -> Vec<ItemId> {
        let mut out = Vec::with_capacity(t.len() * 2);
        self.extend_transaction_into(t, &mut out);
        out
    }

    /// [`Taxonomy::extend_transaction`] into a caller-owned buffer
    /// (cleared first). The extension runs once per transaction per pass,
    /// so hot loops reuse one scratch vector instead of allocating.
    pub fn extend_transaction_into(&self, t: &[ItemId], out: &mut Vec<ItemId>) {
        out.clear();
        out.extend_from_slice(t);
        for &it in t {
            out.extend_from_slice(self.ancestors(it));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Extends a transaction but keeps only items for which `keep` returns
    /// true — the Cumulate optimization of dropping ancestors that occur in
    /// no candidate. Original (non-ancestor) items are always kept so the
    /// caller can still see the raw transaction.
    pub fn extend_transaction_filtered(
        &self,
        t: &[ItemId],
        keep: impl Fn(ItemId) -> bool,
    ) -> Vec<ItemId> {
        let mut out = Vec::with_capacity(t.len() * 2);
        self.extend_transaction_filtered_into(t, keep, &mut out);
        out
    }

    /// [`Taxonomy::extend_transaction_filtered`] into a caller-owned
    /// buffer (cleared first).
    pub fn extend_transaction_filtered_into(
        &self,
        t: &[ItemId],
        keep: impl Fn(ItemId) -> bool,
        out: &mut Vec<ItemId>,
    ) {
        out.clear();
        out.extend_from_slice(t);
        for &it in t {
            for &a in self.ancestors(it) {
                if keep(a) {
                    out.push(a);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// *Reduces* a transaction for the H-HPGM family: each item is replaced
    /// by itself if `is_large`, otherwise by its nearest large ancestor;
    /// items with no large ancestor are dropped. Result is sorted and
    /// de-duplicated.
    pub fn reduce_to_lowest_large(
        &self,
        t: &[ItemId],
        is_large: impl Fn(ItemId) -> bool,
    ) -> Vec<ItemId> {
        let mut out = Vec::with_capacity(t.len());
        self.reduce_to_lowest_large_into(t, is_large, &mut out);
        out
    }

    /// [`Taxonomy::reduce_to_lowest_large`] into a caller-owned buffer
    /// (cleared first).
    pub fn reduce_to_lowest_large_into(
        &self,
        t: &[ItemId],
        is_large: impl Fn(ItemId) -> bool,
        out: &mut Vec<ItemId>,
    ) {
        out.clear();
        for &it in t {
            if is_large(it) {
                out.push(it);
            } else if let Some(&a) = self.ancestors(it).iter().find(|&&a| is_large(a)) {
                out.push(a);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// The nearest large ancestor-or-self of `item`, if any.
    pub fn lowest_large(&self, item: ItemId, is_large: impl Fn(ItemId) -> bool) -> Option<ItemId> {
        if is_large(item) {
            return Some(item);
        }
        self.ancestors(item).iter().copied().find(|&a| is_large(a))
    }
}

/// A borrowed view of the taxonomy's flat ancestor-closure table.
///
/// Computed exactly once per run (at [`Taxonomy`] construction) and shared
/// by every pass of both miner families — Apriori transaction extension and
/// FP-tree ancestor extension both index into the same two arrays instead
/// of re-walking parent pointers per transaction per pass.
#[derive(Debug, Clone, Copy)]
pub struct AncestorClosure<'a> {
    offsets: &'a [u32],
    ids: &'a [ItemId],
}

impl<'a> AncestorClosure<'a> {
    /// The offsets array: `num_items + 1` entries, monotone.
    #[inline]
    pub fn offsets(&self) -> &'a [u32] {
        self.offsets
    }

    /// The concatenated ancestor chains, nearest first per item.
    #[inline]
    pub fn ids(&self) -> &'a [ItemId] {
        self.ids
    }

    /// The proper ancestors of `item`, nearest first, root last.
    #[inline]
    pub fn ancestors(&self, item: ItemId) -> &'a [ItemId] {
        let lo = self.offsets[item.index()] as usize;
        let hi = self.offsets[item.index() + 1] as usize;
        &self.ids[lo..hi]
    }

    /// Chain length of `item` (= its depth).
    #[inline]
    pub fn chain_len(&self, item: ItemId) -> usize {
        (self.offsets[item.index() + 1] - self.offsets[item.index()]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    /// The paper's example forest (Figures 4/6):
    /// tree 1: 1 -> {3,4,5}, 3 -> {7,8}, 4 -> {9,10}
    /// tree 2: 2 -> {6}, 6 -> {15}
    /// items 11..=14 unused leaves of nothing (kept as isolated roots 0,11-14).
    fn paper_forest() -> Taxonomy {
        let mut b = TaxonomyBuilder::new(16);
        for (c, p) in [
            (3, 1),
            (4, 1),
            (5, 1),
            (7, 3),
            (8, 3),
            (9, 4),
            (10, 4),
            (6, 2),
            (15, 6),
        ] {
            b.edge(c, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ancestor_closure_is_nearest_first() {
        let t = paper_forest();
        assert_eq!(t.ancestors(ItemId(9)), &[ItemId(4), ItemId(1)]);
        assert_eq!(t.ancestors(ItemId(15)), &[ItemId(6), ItemId(2)]);
        assert_eq!(t.ancestors(ItemId(1)), &[] as &[ItemId]);
    }

    #[test]
    fn depth_and_max_depth() {
        let t = paper_forest();
        assert_eq!(t.depth(ItemId(1)), 0);
        assert_eq!(t.depth(ItemId(4)), 1);
        assert_eq!(t.depth(ItemId(10)), 2);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn roots_and_leaves() {
        let t = paper_forest();
        assert!(t.roots().contains(&ItemId(1)));
        assert!(t.roots().contains(&ItemId(2)));
        assert!(t.is_root(ItemId(0))); // isolated item: both root and leaf
        assert!(t.is_leaf(ItemId(0)));
        assert!(t.is_leaf(ItemId(15)));
        assert!(!t.is_leaf(ItemId(6)));
    }

    #[test]
    fn related_covers_both_directions() {
        let t = paper_forest();
        assert!(t.related(ItemId(1), ItemId(10)));
        assert!(t.related(ItemId(10), ItemId(1)));
        assert!(t.related(ItemId(7), ItemId(7)));
        assert!(!t.related(ItemId(7), ItemId(9)));
    }

    #[test]
    fn tree_items_covers_whole_tree() {
        let t = paper_forest();
        let mut tree = t.tree_items(ItemId(1));
        tree.sort_unstable();
        assert_eq!(
            tree,
            vec![1, 3, 4, 5, 7, 8, 9, 10]
                .into_iter()
                .map(ItemId)
                .collect::<Vec<_>>()
        );
        assert_eq!(t.tree_size(ItemId(2)), 3);
    }

    #[test]
    fn extend_transaction_matches_paper_example_1() {
        // Paper Example 1: t = {10, 12, 14} extends to {1,2,4,5,6,10,12,14}
        // *after* small-item filtering; raw extension adds ancestors of 10.
        let t = paper_forest();
        let ext = t.extend_transaction(&[ItemId(10), ItemId(12), ItemId(14)]);
        assert_eq!(
            ext,
            vec![1, 4, 10, 12, 14]
                .into_iter()
                .map(ItemId)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn extend_transaction_filtered_drops_unwanted_ancestors() {
        let t = paper_forest();
        let ext = t.extend_transaction_filtered(&[ItemId(10)], |a| a == ItemId(1));
        assert_eq!(ext, vec![ItemId(1), ItemId(10)]);
    }

    #[test]
    fn reduce_matches_paper_example_2() {
        // Paper Example 2: t = {10, 12, 14}; 12 and 14 are small; their
        // nearest large ancestors give t' = {5, 6, 10}. Model 12 under 5 and
        // 14 under 6 via a dedicated forest.
        let mut b = TaxonomyBuilder::new(16);
        for (c, p) in [
            (3, 1),
            (4, 1),
            (5, 1),
            (7, 3),
            (8, 3),
            (9, 4),
            (10, 4),
            (6, 2),
            (15, 6),
            (12, 5),
            (14, 6),
        ] {
            b.edge(c, p).unwrap();
        }
        let t = b.build().unwrap();
        let large: Vec<ItemId> = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15]
            .into_iter()
            .map(ItemId)
            .collect();
        let is_large = |i: ItemId| large.contains(&i);
        let reduced = t.reduce_to_lowest_large(&[ItemId(10), ItemId(12), ItemId(14)], is_large);
        assert_eq!(reduced, vec![ItemId(5), ItemId(6), ItemId(10)]);
    }

    #[test]
    fn reduce_drops_items_with_no_large_ancestor() {
        let t = paper_forest();
        let reduced = t.reduce_to_lowest_large(&[ItemId(13)], |_| false);
        assert!(reduced.is_empty());
    }

    #[test]
    fn lowest_large_prefers_self() {
        let t = paper_forest();
        assert_eq!(t.lowest_large(ItemId(10), |_| true), Some(ItemId(10)));
        assert_eq!(
            t.lowest_large(ItemId(10), |i| i == ItemId(1)),
            Some(ItemId(1))
        );
        assert_eq!(t.lowest_large(ItemId(10), |_| false), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::synth::{synthesize, SynthTaxonomyConfig};
    use proptest::prelude::*;

    fn arb_taxonomy() -> impl Strategy<Value = Taxonomy> {
        (2u32..200, 1u32..8, 1.5f64..8.0, 0u64..1000).prop_map(|(n, roots, fanout, seed)| {
            synthesize(&SynthTaxonomyConfig {
                num_items: n.max(roots + 1),
                num_roots: roots.min(n / 2).max(1),
                fanout,
                seed,
            })
        })
    }

    proptest! {
        #[test]
        fn ancestor_chain_matches_parent_walk(t in arb_taxonomy()) {
            for i in 0..t.num_items() {
                let item = ItemId(i);
                let mut walk = Vec::new();
                let mut cur = t.parent(item);
                while let Some(p) = cur {
                    walk.push(p);
                    cur = t.parent(p);
                }
                prop_assert_eq!(t.ancestors(item), walk.as_slice());
                prop_assert_eq!(t.root_of(item), *walk.last().unwrap_or(&item));
                prop_assert_eq!(t.depth(item) as usize, t.ancestors(item).len());
            }
        }

        #[test]
        fn roots_union_descendants_is_universe(t in arb_taxonomy()) {
            let mut seen = vec![false; t.num_items() as usize];
            for &r in t.roots() {
                for it in t.tree_items(r) {
                    prop_assert!(!seen[it.index()], "item in two trees");
                    seen[it.index()] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn extension_is_superset_and_closed(t in arb_taxonomy(), raw in proptest::collection::vec(0u32..200, 1..10)) {
            let txn: Vec<ItemId> = raw.into_iter()
                .map(|x| ItemId(x % t.num_items()))
                .collect();
            let ext = t.extend_transaction(&txn);
            // superset of the original
            for &it in &txn {
                prop_assert!(ext.contains(&it));
            }
            // ancestor-closed
            for &it in &ext {
                for &a in t.ancestors(it) {
                    prop_assert!(ext.contains(&a));
                }
            }
            // sorted, deduped
            prop_assert!(ext.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn reduction_output_is_large_only(t in arb_taxonomy(), raw in proptest::collection::vec(0u32..200, 1..10), large_mod in 2u32..5) {
            let txn: Vec<ItemId> = raw.into_iter()
                .map(|x| ItemId(x % t.num_items()))
                .collect();
            let is_large = |i: ItemId| i.raw().is_multiple_of(large_mod);
            let red = t.reduce_to_lowest_large(&txn, is_large);
            prop_assert!(red.iter().all(|&i| is_large(i)));
            prop_assert!(red.windows(2).all(|w| w[0] < w[1]));
            // every reduced item is an ancestor-or-self of some txn item
            for &r in &red {
                prop_assert!(txn.iter().any(|&x| x == r || t.is_ancestor(r, x)));
            }
        }

        #[test]
        fn closure_table_matches_ancestors(t in arb_taxonomy()) {
            let cl = t.closure();
            for i in 0..t.num_items() {
                let item = ItemId(i);
                prop_assert_eq!(cl.ancestors(item), t.ancestors(item));
                prop_assert_eq!(cl.chain_len(item), t.ancestors(item).len());
            }
            prop_assert_eq!(cl.offsets().len(), t.num_items() as usize + 1);
        }

        #[test]
        fn into_variants_match_allocating(
            t in arb_taxonomy(),
            raw in proptest::collection::vec(0u32..200, 1..10),
            large_mod in 2u32..5,
        ) {
            let txn: Vec<ItemId> = raw.into_iter()
                .map(|x| ItemId(x % t.num_items()))
                .collect();
            // Pre-poison the scratch to prove it is cleared, and give it
            // capacity to prove reuse does not change results.
            let mut buf = vec![ItemId(u32::MAX); 7];

            t.extend_transaction_into(&txn, &mut buf);
            prop_assert_eq!(&buf, &t.extend_transaction(&txn));

            let keep = |a: ItemId| a.raw().is_multiple_of(2);
            t.extend_transaction_filtered_into(&txn, keep, &mut buf);
            prop_assert_eq!(&buf, &t.extend_transaction_filtered(&txn, keep));

            let is_large = |i: ItemId| i.raw().is_multiple_of(large_mod);
            t.reduce_to_lowest_large_into(&txn, is_large, &mut buf);
            prop_assert_eq!(&buf, &t.reduce_to_lowest_large(&txn, is_large));
        }
    }
}
