//! Taxonomy persistence.
//!
//! Format (little-endian): magic `GTAX`, `u32` version, `u32` item count,
//! then one `u32` per item — the parent's code, or `u32::MAX` for a root.
//! The parent array is the taxonomy's complete definition; everything
//! else is derived on load (and re-validated, so a corrupted file cannot
//! smuggle in a cycle).

use crate::builder::TaxonomyBuilder;
use crate::taxonomy::Taxonomy;
use gar_types::{Error, ItemId, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GTAX";
const VERSION: u32 = 1;
const NO_PARENT: u32 = u32::MAX;

/// Writes `tax` to `path` (overwriting).
pub fn save(tax: &Taxonomy, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)
        .map_err(|e| Error::io(format!("creating taxonomy file {}", path.display()), e))?;
    let mut w = BufWriter::new(file);
    let io_err = |e| Error::io(format!("writing taxonomy file {}", path.display()), e);
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&tax.num_items().to_le_bytes())
        .map_err(io_err)?;
    for i in 0..tax.num_items() {
        let code = tax.parent(ItemId(i)).map_or(NO_PARENT, |p| p.raw());
        w.write_all(&code.to_le_bytes()).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Loads a taxonomy from `path`, re-validating the forest invariants.
pub fn load(path: impl AsRef<Path>) -> Result<Taxonomy> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| Error::io(format!("opening taxonomy file {}", path.display()), e))?;
    let mut r = BufReader::new(file);
    let io_err = |e| Error::io(format!("reading taxonomy file {}", path.display()), e);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(Error::Corrupt(format!(
            "{} is not a taxonomy file (bad magic)",
            path.display()
        )));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word).map_err(io_err)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported taxonomy file version {version}"
        )));
    }
    r.read_exact(&mut word).map_err(io_err)?;
    let n = u32::from_le_bytes(word);

    let mut builder = TaxonomyBuilder::new(n);
    for child in 0..n {
        r.read_exact(&mut word).map_err(io_err)?;
        let parent = u32::from_le_bytes(word);
        if parent != NO_PARENT {
            builder.add_edge(ItemId(child), ItemId(parent))?;
        }
    }
    // Trailing garbage means a corrupt or concatenated file.
    let mut extra = [0u8; 1];
    match r.read(&mut extra) {
        Ok(0) => {}
        Ok(_) => {
            return Err(Error::Corrupt(format!(
                "taxonomy file {} has trailing bytes",
                path.display()
            )))
        }
        Err(e) => return Err(io_err(e)),
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthTaxonomyConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gar-tax-io-{}-{}", std::process::id(), name))
    }

    #[test]
    fn round_trip_preserves_structure() {
        let tax = synthesize(&SynthTaxonomyConfig {
            num_items: 500,
            num_roots: 7,
            fanout: 4.0,
            seed: 3,
        });
        let path = tmp("roundtrip");
        save(&tax, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_items(), tax.num_items());
        for i in 0..tax.num_items() {
            assert_eq!(loaded.parent(ItemId(i)), tax.parent(ItemId(i)));
            assert_eq!(loaded.root_of(ItemId(i)), tax.root_of(ItemId(i)));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let tax = synthesize(&SynthTaxonomyConfig {
            num_items: 50,
            num_roots: 2,
            fanout: 3.0,
            seed: 0,
        });
        let path = tmp("trunc");
        save(&tax, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let tax = synthesize(&SynthTaxonomyConfig {
            num_items: 10,
            num_roots: 1,
            fanout: 3.0,
            seed: 0,
        });
        let path = tmp("trail");
        save(&tax, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_cycle_rejected_on_load() {
        // Hand-craft a 2-item file where 0 -> 1 -> 0.
        let path = tmp("cycle");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"GTAX");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // parent(0) = 1
        bytes.extend_from_slice(&0u32.to_le_bytes()); // parent(1) = 0
        std::fs::write(&path, bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
