//! Pruned taxonomy views (the Cumulate ancestor-filtering optimization).

use crate::taxonomy::Taxonomy;
use gar_types::ItemId;

/// A per-pass filter over the taxonomy: "which ancestors are present in at
/// least one candidate of `C_k`?"
///
/// Cumulate's second optimization ([SA95], carried into every algorithm of
/// the paper): when an interior item occurs in no candidate of the current
/// pass, adding it to extended transactions is pure waste, so it is deleted
/// from the taxonomy *for this pass*. The view is a dense bitmask, so the
/// per-item check on the extension hot path is one load.
#[derive(Debug, Clone)]
pub struct PrunedView {
    keep: Vec<bool>,
    kept: usize,
}

impl PrunedView {
    /// Keeps exactly the items yielded by `present`.
    pub fn new(tax: &Taxonomy, present: impl IntoIterator<Item = ItemId>) -> Self {
        let mut keep = vec![false; tax.num_items() as usize];
        let mut kept = 0;
        for it in present {
            if !keep[it.index()] {
                keep[it.index()] = true;
                kept += 1;
            }
        }
        PrunedView { keep, kept }
    }

    /// Keeps every item (no pruning).
    pub fn keep_all(tax: &Taxonomy) -> Self {
        PrunedView {
            keep: vec![true; tax.num_items() as usize],
            kept: tax.num_items() as usize,
        }
    }

    /// Whether `item` survives the pruning.
    #[inline]
    pub fn keeps(&self, item: ItemId) -> bool {
        self.keep[item.index()]
    }

    /// Number of items kept.
    #[inline]
    pub fn kept(&self) -> usize {
        self.kept
    }

    /// Extends a transaction with only the ancestors this view keeps.
    /// Original items are always retained (they may still match leaf-level
    /// candidates); only the *added ancestors* are filtered, exactly as in
    /// Cumulate's count-support step.
    pub fn extend_transaction(&self, tax: &Taxonomy, t: &[ItemId]) -> Vec<ItemId> {
        tax.extend_transaction_filtered(t, |a| self.keeps(a))
    }

    /// Buffer-reusing variant of [`PrunedView::extend_transaction`]: fills
    /// `out` (cleared first) instead of allocating, so per-transaction scan
    /// loops can thread one scratch `Vec` through every call.
    #[inline]
    pub fn extend_transaction_into(&self, tax: &Taxonomy, t: &[ItemId], out: &mut Vec<ItemId>) {
        tax.extend_transaction_filtered_into(t, |a| self.keeps(a), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn chain() -> Taxonomy {
        // 0 <- 1 <- 2 <- 3 (3 is the deepest leaf)
        let mut b = TaxonomyBuilder::new(4);
        b.edge(1, 0).unwrap();
        b.edge(2, 1).unwrap();
        b.edge(3, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn filters_absent_ancestors() {
        let tax = chain();
        let view = PrunedView::new(&tax, [ItemId(0), ItemId(3)]);
        assert!(view.keeps(ItemId(0)));
        assert!(!view.keeps(ItemId(1)));
        assert_eq!(view.kept(), 2);
        let ext = view.extend_transaction(&tax, &[ItemId(3)]);
        assert_eq!(ext, vec![ItemId(0), ItemId(3)]);
    }

    #[test]
    fn keep_all_behaves_like_plain_extension() {
        let tax = chain();
        let view = PrunedView::keep_all(&tax);
        let ext = view.extend_transaction(&tax, &[ItemId(3)]);
        assert_eq!(ext, tax.extend_transaction(&[ItemId(3)]));
        assert_eq!(view.kept(), 4);
    }

    #[test]
    fn duplicate_present_items_counted_once() {
        let tax = chain();
        let view = PrunedView::new(&tax, [ItemId(1), ItemId(1), ItemId(1)]);
        assert_eq!(view.kept(), 1);
    }
}
