//! Random forest synthesis for the Table-5 datasets.
//!
//! [SA95] grows the classification hierarchy from `R` roots where every
//! interior node's child count is drawn from a Poisson distribution with
//! mean `F` (the *fanout*). The total number of items is fixed, so the
//! resulting depth is roughly `log_F(items / roots)` — which is exactly how
//! Table 5's "number of levels" column emerges (5-6 levels for fanout 5,
//! 6-7 for fanout 3, 3-4 for fanout 10 at 30 000 items / 30 roots).

use crate::taxonomy::Taxonomy;
use gar_types::ItemId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Parameters of a synthetic taxonomy.
#[derive(Debug, Clone)]
pub struct SynthTaxonomyConfig {
    /// Total items in the universe (leaves + interior + roots).
    pub num_items: u32,
    /// Number of trees (`R` in the dataset names, e.g. `R30...` = 30 roots).
    pub num_roots: u32,
    /// Mean fanout (`F` in the dataset names, e.g. `...F5` = fanout 5).
    pub fanout: f64,
    /// RNG seed; equal seeds give identical forests.
    pub seed: u64,
}

impl Default for SynthTaxonomyConfig {
    fn default() -> Self {
        SynthTaxonomyConfig {
            num_items: 1000,
            num_roots: 10,
            fanout: 5.0,
            seed: 0,
        }
    }
}

/// Draws a Poisson-distributed value with mean `lambda` (Knuth's method —
/// fine for the small means used as fanouts; avoids an extra dependency).
pub(crate) fn poisson(rng: &mut impl Rng, lambda: f64) -> u32 {
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological lambda; 16x the mean is vanishingly
        // unlikely for the fanouts used here.
        if f64::from(k) > lambda * 16.0 + 16.0 {
            return k;
        }
    }
}

/// Grows a random forest per the configuration. Item ids are assigned in
/// breadth-first order: roots get `0..num_roots`, then each expanded node's
/// children get the next consecutive ids, so lower ids sit higher in the
/// hierarchy.
///
/// # Panics
/// Panics when `num_roots == 0` or `num_roots > num_items`.
pub fn synthesize(cfg: &SynthTaxonomyConfig) -> Taxonomy {
    assert!(cfg.num_roots >= 1, "need at least one root");
    assert!(
        cfg.num_roots <= cfg.num_items,
        "more roots than items ({} > {})",
        cfg.num_roots,
        cfg.num_items
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7461_786f_6e6f_6d79); // "taxonomy"
    let n = cfg.num_items as usize;
    let mut parent: Vec<Option<ItemId>> = vec![None; n];
    let mut frontier: VecDeque<u32> = (0..cfg.num_roots).collect();
    let mut next_id = cfg.num_roots;

    while next_id < cfg.num_items {
        let node = frontier.pop_front().expect("frontier never empties");
        let mut c = poisson(&mut rng, cfg.fanout);
        if frontier.is_empty() {
            // The frontier must stay alive while items remain unplaced.
            c = c.max(1);
        }
        let c = c.min(cfg.num_items - next_id);
        for _ in 0..c {
            parent[next_id as usize] = Some(ItemId(node));
            frontier.push_back(next_id);
            next_id += 1;
        }
    }

    Taxonomy::from_parent_array(parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_shape() {
        let t = synthesize(&SynthTaxonomyConfig {
            num_items: 3000,
            num_roots: 30,
            fanout: 5.0,
            seed: 42,
        });
        assert_eq!(t.num_items(), 3000);
        assert_eq!(t.roots().len(), 30);
        // 3000 items / 30 roots = 100 per tree, fanout 5 => depth ~3.
        assert!(
            t.max_depth() >= 2 && t.max_depth() <= 8,
            "depth {}",
            t.max_depth()
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = SynthTaxonomyConfig {
            num_items: 500,
            num_roots: 5,
            fanout: 3.0,
            seed: 7,
        };
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        for i in 0..500 {
            assert_eq!(a.parent(ItemId(i)), b.parent(ItemId(i)));
        }
        let c = synthesize(&SynthTaxonomyConfig { seed: 8, ..cfg });
        let differs = (0..500).any(|i| a.parent(ItemId(i)) != c.parent(ItemId(i)));
        assert!(differs, "different seeds should give different forests");
    }

    #[test]
    fn higher_fanout_means_shallower_trees() {
        let mk = |fanout| {
            synthesize(&SynthTaxonomyConfig {
                num_items: 3000,
                num_roots: 30,
                fanout,
                seed: 1,
            })
            .max_depth()
        };
        // Table 5: fanout 10 => 3-4 levels, fanout 3 => 6-7 levels.
        assert!(mk(10.0) < mk(3.0));
    }

    #[test]
    fn mean_fanout_is_roughly_respected() {
        let t = synthesize(&SynthTaxonomyConfig {
            num_items: 10_000,
            num_roots: 10,
            fanout: 5.0,
            seed: 3,
        });
        let interior: Vec<_> = (0..t.num_items())
            .map(ItemId)
            .filter(|&i| !t.is_leaf(i))
            .collect();
        let total_children: usize = interior.iter().map(|&i| t.children(i).len()).sum();
        let mean = total_children as f64 / interior.len() as f64;
        assert!((3.5..=6.5).contains(&mean), "mean fanout {mean}");
    }

    #[test]
    fn degenerate_single_root_chain_is_fine() {
        let t = synthesize(&SynthTaxonomyConfig {
            num_items: 10,
            num_roots: 1,
            fanout: 0.1, // forces the frontier-keepalive path (c.max(1))
            seed: 0,
        });
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.num_items(), 10);
    }

    #[test]
    fn all_roots_all_items() {
        let t = synthesize(&SynthTaxonomyConfig {
            num_items: 8,
            num_roots: 8,
            fanout: 5.0,
            seed: 0,
        });
        assert_eq!(t.roots().len(), 8);
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: u64 = (0..20_000).map(|_| u64::from(poisson(&mut rng, 4.0))).sum();
        let mean = samples as f64 / 20_000.0;
        assert!((3.8..=4.2).contains(&mean), "poisson mean {mean}");
    }
}
