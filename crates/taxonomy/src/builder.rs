//! Validated construction of a [`Taxonomy`].

use crate::taxonomy::Taxonomy;
use gar_types::{Error, ItemId, Result};

/// Incrementally assembles a taxonomy from `(child, parent)` edges and
/// validates the forest invariants before producing a [`Taxonomy`].
///
/// Invariants checked by [`TaxonomyBuilder::build`]:
/// * every referenced item id is `< num_items`;
/// * no item has two parents (the hierarchy is a forest, per the paper's
///   Figure 1);
/// * no cycles (an item is never its own ancestor).
#[derive(Debug, Clone)]
pub struct TaxonomyBuilder {
    num_items: u32,
    parent: Vec<Option<ItemId>>,
}

impl TaxonomyBuilder {
    /// Starts a taxonomy over items `0..num_items`, all initially roots.
    pub fn new(num_items: u32) -> Self {
        TaxonomyBuilder {
            num_items,
            parent: vec![None; num_items as usize],
        }
    }

    /// Records that `parent` is the direct generalization of `child`.
    ///
    /// Returns an error if either id is out of range or `child` already has
    /// a different parent.
    pub fn add_edge(&mut self, child: ItemId, parent: ItemId) -> Result<&mut Self> {
        if child.raw() >= self.num_items || parent.raw() >= self.num_items {
            return Err(Error::InvalidTaxonomy(format!(
                "edge {child:?} -> {parent:?} references an item >= num_items ({})",
                self.num_items
            )));
        }
        if child == parent {
            return Err(Error::InvalidTaxonomy(format!(
                "item {child:?} cannot be its own parent"
            )));
        }
        match self.parent[child.index()] {
            Some(existing) if existing != parent => Err(Error::InvalidTaxonomy(format!(
                "item {child:?} has two parents: {existing:?} and {parent:?}"
            ))),
            _ => {
                self.parent[child.index()] = Some(parent);
                Ok(self)
            }
        }
    }

    /// Convenience wrapper over [`add_edge`](Self::add_edge) for raw codes.
    pub fn edge(&mut self, child: u32, parent: u32) -> Result<&mut Self> {
        self.add_edge(ItemId(child), ItemId(parent))
    }

    /// Validates the forest and produces the immutable [`Taxonomy`].
    pub fn build(self) -> Result<Taxonomy> {
        // Cycle check: walk up from every node; a walk longer than num_items
        // steps must have revisited something.
        let n = self.num_items as usize;
        for start in 0..n {
            let mut cur = start;
            let mut steps = 0usize;
            while let Some(p) = self.parent[cur] {
                cur = p.index();
                steps += 1;
                if steps > n {
                    return Err(Error::InvalidTaxonomy(format!(
                        "cycle detected on the ancestor chain of item {start}"
                    )));
                }
            }
        }
        Ok(Taxonomy::from_parent_array(self.parent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_universe_is_all_roots() {
        let t = TaxonomyBuilder::new(4).build().unwrap();
        assert_eq!(t.num_items(), 4);
        assert_eq!(t.roots().len(), 4);
        assert!(t.ancestors(ItemId(2)).is_empty());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let mut b = TaxonomyBuilder::new(3);
        assert!(b.edge(0, 5).is_err());
        assert!(b.edge(5, 0).is_err());
    }

    #[test]
    fn rejects_self_parent() {
        let mut b = TaxonomyBuilder::new(3);
        assert!(b.edge(1, 1).is_err());
    }

    #[test]
    fn rejects_second_parent() {
        let mut b = TaxonomyBuilder::new(3);
        b.edge(2, 0).unwrap();
        assert!(b.edge(2, 1).is_err());
        // Re-adding the same edge is idempotent, not an error.
        assert!(b.edge(2, 0).is_ok());
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaxonomyBuilder::new(3);
        b.edge(0, 1).unwrap();
        b.edge(1, 2).unwrap();
        b.edge(2, 0).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn builds_paper_figure_1_shape() {
        // A two-tree forest like the paper's running example:
        //   1 -> {3,4,5}, 3 -> {7,8}, 4 -> {9,10}
        //   2 -> {6}, 6 -> {15}
        let mut b = TaxonomyBuilder::new(16);
        for (c, p) in [
            (3, 1),
            (4, 1),
            (5, 1),
            (7, 3),
            (8, 3),
            (9, 4),
            (10, 4),
            (6, 2),
            (15, 6),
        ] {
            b.edge(c, p).unwrap();
        }
        let t = b.build().unwrap();
        assert_eq!(t.root_of(ItemId(10)), ItemId(1));
        assert_eq!(t.root_of(ItemId(15)), ItemId(2));
        assert_eq!(t.ancestors(ItemId(10)), &[ItemId(4), ItemId(1)]);
        assert!(t.is_ancestor(ItemId(1), ItemId(8)));
        assert!(!t.is_ancestor(ItemId(8), ItemId(1)));
        assert!(!t.is_ancestor(ItemId(2), ItemId(8)));
    }
}
