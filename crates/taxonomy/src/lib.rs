//! The classification hierarchy (taxonomy) over items.
//!
//! The paper (following Srikant & Agrawal's *Mining Generalized Association
//! Rules*, VLDB '95) organizes items into a forest of *is-a* trees: an edge
//! from `x` to `y` means `x` is a parent (generalization) of `y`. A
//! transaction *contains* an itemset `X` when every member of `X` is in the
//! transaction **or is an ancestor of some item in it** — so support
//! counting constantly walks ancestor chains. This crate precomputes
//! everything those walks need:
//!
//! * the full proper-ancestor closure of every item (flattened, cache-dense);
//! * the root of every item (the unit H-HPGM partitions candidates by);
//! * depth/level bookkeeping, leaf/interior classification;
//! * transaction *extension* (add all ancestors — Cumulate/NPGM/HPGM) and
//!   transaction *reduction* (replace each item with its closest-to-bottom
//!   large ancestor — the H-HPGM family);
//! * the Cumulate optimization of pruning ancestors that occur in no
//!   candidate ([`Taxonomy::pruned_view`]).
//!
//! [`synth`] grows the random forests used by the synthetic datasets of
//! Table 5 (number of roots, mean fanout).

mod builder;
pub mod io;
pub mod synth;
mod taxonomy;
mod view;

pub use builder::TaxonomyBuilder;
pub use taxonomy::{AncestorClosure, Taxonomy};
pub use view::PrunedView;
