//! Reproduction harness shared by the per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 and EXPERIMENTS.md). This library carries the
//! common machinery: scaled dataset construction, the memory-budget rule,
//! run wrappers, aligned-table printing, and CSV output under `results/`.
//!
//! Environment knobs (all optional):
//!
//! * `GAR_SCALE` — dataset scale factor vs the paper's 3.2 M transactions
//!   (default per binary, typically 0.01-0.02);
//! * `GAR_SEED`  — RNG seed (default 42);
//! * `GAR_RESULTS_DIR` — where CSVs land (default `results/`).

use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::candidate::generate_pairs;
use gar_mining::counter::candidate_entry_bytes;
use gar_mining::parallel::mine_parallel;
use gar_mining::{Algorithm, MiningParams, ParallelReport};
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::{ItemId, Result};
use std::io::Write;
use std::path::PathBuf;

/// Experiment-wide configuration pulled from the environment.
#[derive(Debug, Clone)]
pub struct Env {
    /// Dataset scale factor (fraction of the paper's full size).
    pub scale: f64,
    /// Seed for taxonomy/pattern/transaction generation.
    pub seed: u64,
    /// Directory CSV outputs are written to.
    pub results_dir: PathBuf,
}

impl Env {
    /// Reads the environment, with `default_scale` as the fallback scale.
    pub fn load(default_scale: f64) -> Env {
        let scale = std::env::var("GAR_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_scale);
        let seed = std::env::var("GAR_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let results_dir = std::env::var("GAR_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        Env {
            scale,
            seed,
            results_dir,
        }
    }
}

/// A generated dataset, partitioned for a given cluster size.
pub struct Workload {
    /// The (scaled) spec it came from.
    pub spec: DatasetSpec,
    /// Its classification hierarchy.
    pub taxonomy: Taxonomy,
    /// The raw transactions (kept so the same data can be re-partitioned
    /// for different node counts, as the speedup experiment requires).
    pub transactions: Vec<Vec<ItemId>>,
}

impl Workload {
    /// Generates the workload for `spec` scaled by `env.scale`.
    pub fn generate(spec: &DatasetSpec, env: &Env) -> Result<Workload> {
        let scaled = spec.scaled(env.scale);
        let mut generator = TransactionGenerator::new(&scaled)?;
        let transactions: Vec<_> = generator.by_ref().collect();
        Ok(Workload {
            spec: scaled,
            taxonomy: generator.into_taxonomy(),
            transactions,
        })
    }

    /// Partitions the transactions over `nodes` simulated disks.
    pub fn partition(&self, nodes: usize) -> Result<PartitionedDatabase> {
        PartitionedDatabase::build_in_memory(nodes, self.transactions.iter().cloned())
    }

    /// Exact pass-2 candidate memory at minimum support `minsup`: one
    /// sequential item-count scan, then `|generate_pairs(L1)|` priced at
    /// the per-entry footprint. Used to place the per-node memory budget
    /// in the paper's regime (`M < |C_2| < N·M`).
    pub fn pass2_candidate_bytes(&self, minsup: f64) -> u64 {
        let n = self.transactions.len() as u64;
        let threshold = MiningParams::with_min_support(minsup).min_support_count(n);
        let mut counts = vec![0u64; self.taxonomy.num_items() as usize];
        for t in &self.transactions {
            for it in self.taxonomy.extend_transaction(t) {
                counts[it.index()] += 1;
            }
        }
        let l1: Vec<ItemId> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= threshold)
            .map(|(i, _)| ItemId(i as u32))
            .collect();
        let c2 = generate_pairs(&l1, Some(&self.taxonomy)).len();
        c2 as u64 * candidate_entry_bytes(2)
    }

    /// The memory-budget rule used across the experiments: per-node memory
    /// is sized so the largest candidate set of the sweep exceeds one
    /// node's memory but fits in the aggregate — exactly the regime the
    /// paper assumes ("the size of the candidate itemsets is larger than
    /// the size of local memory of a single node but smaller than the sum
    /// of the memory space of all the nodes").
    pub fn memory_per_node(&self, smallest_minsup: f64, nodes: usize) -> u64 {
        self.memory_with_headroom(smallest_minsup, nodes, 1.5)
    }

    /// [`Workload::memory_per_node`] with an explicit headroom factor.
    /// Candidate *ownership* across nodes is itself skewed (hot root
    /// combinations carry more candidates), so a factor below ~2 leaves
    /// the hottest node with no free duplication space at all — the
    /// regime where TGD/PGD/FGD degenerate to H-HPGM.
    pub fn memory_with_headroom(&self, minsup: f64, nodes: usize, factor: f64) -> u64 {
        let total = self.pass2_candidate_bytes(minsup);
        ((total as f64 * factor) / nodes as f64).ceil() as u64 + 1
    }
}

/// Runs one algorithm over the workload.
pub fn run(
    alg: Algorithm,
    workload: &Workload,
    db: &PartitionedDatabase,
    minsup: f64,
    nodes: usize,
    memory_per_node: u64,
    max_pass: Option<usize>,
) -> Result<ParallelReport> {
    let mut params = MiningParams::with_min_support(minsup);
    params.max_pass = max_pass;
    let cluster = ClusterConfig::new(nodes, memory_per_node);
    mine_parallel(alg, db, &workload.taxonomy, &params, &cluster)
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes rows as CSV under the results directory.
pub fn write_csv(env: &Env, name: &str, headers: &[&str], rows: &[Vec<String>]) -> Result<()> {
    std::fs::create_dir_all(&env.results_dir)
        .map_err(|e| gar_types::Error::io("creating results dir", e))?;
    let path = env.results_dir.join(name);
    let mut f = std::fs::File::create(&path)
        .map_err(|e| gar_types::Error::io(format!("creating {}", path.display()), e))?;
    let esc = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
    )
    .map_err(|e| gar_types::Error::io("writing csv header", e))?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        )
        .map_err(|e| gar_types::Error::io("writing csv row", e))?;
    }
    println!("\n  [written {}]", path.display());
    Ok(())
}

/// The minimum-support sweep the execution-time figures use, in percent
/// (the paper sweeps roughly 0.3%-2%).
pub const MINSUP_SWEEP_PCT: [f64; 5] = [2.0, 1.5, 1.0, 0.5, 0.3];

/// Standard banner for the binaries.
pub fn banner(what: &str, env: &Env) {
    println!("=== {what} ===");
    println!(
        "scale {} of the paper's datasets, seed {}\n",
        env.scale, env.seed
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_datagen::presets;

    #[test]
    fn workload_generation_and_memory_rule() {
        let env = Env {
            scale: 0.003,
            seed: 1,
            results_dir: PathBuf::from("/tmp/gar-bench-test-results"),
        };
        let w = Workload::generate(&presets::r30f5(env.seed), &env).unwrap();
        assert!(!w.transactions.is_empty());
        let bytes = w.pass2_candidate_bytes(0.01);
        assert!(bytes > 0);
        let m = w.memory_per_node(0.01, 4);
        // One node cannot hold everything; four can.
        assert!(m < bytes);
        assert!(4 * m > bytes);
    }

    #[test]
    fn csv_writing_round_trips() {
        let env = Env {
            scale: 1.0,
            seed: 0,
            results_dir: std::env::temp_dir().join(format!("gar-csv-{}", std::process::id())),
        };
        write_csv(
            &env,
            "t.csv",
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(env.results_dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
        std::fs::remove_dir_all(&env.results_dir).ok();
    }

    #[test]
    fn env_defaults() {
        let e = Env::load(0.5);
        assert!(e.scale > 0.0);
        assert_eq!(e.results_dir, PathBuf::from("results"));
    }
}
