//! Ablation: what the classification hierarchy costs and what it finds.
//!
//! Runs hierarchy-blind Apriori and hierarchy-aware Cumulate over the
//! same data at each minimum support, comparing the number of large
//! itemsets discovered (generalized mining finds strictly more — the
//! paper's motivation) against the extra counting work (the paper's
//! "adding the classification hierarchy further increases the processing
//! complexity").
//!
//! Run: `cargo run --release -p gar-bench --bin ablation_hierarchy`

use gar_bench::{banner, print_table, write_csv, Env, Workload};
use gar_datagen::presets;
use gar_mining::sequential::{apriori, cumulate};
use gar_mining::MiningParams;
use gar_obs::Stopwatch;
use gar_storage::PartitionedDatabase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.005);
    banner("Ablation: flat Apriori vs generalized Cumulate", &env);

    let workload = Workload::generate(&presets::r30f5(env.seed), &env)?;
    let db = PartitionedDatabase::build_in_memory(1, workload.transactions.iter().cloned())?;
    let part = db.partition(0);

    let headers = [
        "minsup %",
        "flat large",
        "generalized large",
        "ratio",
        "flat (ms)",
        "generalized (ms)",
    ];
    let mut rows = Vec::new();
    for pct in [2.0f64, 1.0, 0.5] {
        let params = MiningParams::with_min_support(pct / 100.0).max_pass(2);
        let t0 = Stopwatch::start();
        let flat = apriori(part, workload.taxonomy.num_items(), &params)?;
        let flat_ms = t0.elapsed().as_millis();
        let t1 = Stopwatch::start();
        let gen = cumulate(part, &workload.taxonomy, &params)?;
        let gen_ms = t1.elapsed().as_millis();
        rows.push(vec![
            format!("{pct:.1}"),
            flat.num_large().to_string(),
            gen.num_large().to_string(),
            format!(
                "{:.1}x",
                gen.num_large() as f64 / flat.num_large().max(1) as f64
            ),
            flat_ms.to_string(),
            gen_ms.to_string(),
        ]);
    }
    print_table(&headers, &rows);
    write_csv(&env, "ablation_hierarchy.csv", &headers, &rows)?;
    println!("\nexpected: generalized mining finds many-fold more itemsets, at a");
    println!("multiple of the counting cost — the gap parallelism exists to close.");
    Ok(())
}
