//! Figure 14 — execution time of all proposed algorithms (NPGM, H-HPGM,
//! H-HPGM-TGD, -PGD, -FGD) at pass 2, varying the minimum support, one
//! panel per dataset. (HPGM is omitted, as in the paper: "Because the
//! performance of HPGM is always much worse than H-HPGM, we omit [it]".)
//!
//! Expected shape: NPGM blows up at small minimum support (candidate
//! fragments force partition re-scans); TGD degenerates to H-HPGM at
//! small minsup (no room to copy whole trees); FGD is best everywhere.
//!
//! Run: `cargo run --release -p gar-bench --bin fig14_all_algorithms`

use gar_bench::{banner, print_table, run, write_csv, Env, Workload, MINSUP_SWEEP_PCT};
use gar_datagen::presets;
use gar_mining::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner(
        "Figure 14: execution time of the proposed algorithms (pass 2, 16 nodes)",
        &env,
    );

    const NODES: usize = 16;
    const ALGS: [Algorithm; 5] = [
        Algorithm::Npgm,
        Algorithm::HHpgm,
        Algorithm::HHpgmTgd,
        Algorithm::HHpgmPgd,
        Algorithm::HHpgmFgd,
    ];

    let mut csv_rows = Vec::new();
    for spec in presets::all(env.seed) {
        let workload = Workload::generate(&spec, &env)?;
        let memory =
            workload.memory_per_node(MINSUP_SWEEP_PCT[MINSUP_SWEEP_PCT.len() - 1] / 100.0, NODES);
        let db = workload.partition(NODES)?;

        println!(
            "\n--- dataset {} (memory/node = {} KiB) ---",
            spec.name,
            memory / 1024
        );
        let headers = ["minsup %", "NPGM", "H-HPGM", "TGD", "PGD", "FGD"];
        let mut rows = Vec::new();
        for pct in MINSUP_SWEEP_PCT {
            let minsup = pct / 100.0;
            let mut row = vec![format!("{pct:.1}")];
            for alg in ALGS {
                let rep = run(alg, &workload, &db, minsup, NODES, memory, Some(2))?;
                let secs = rep.pass(2).map(|p| p.modeled_seconds).unwrap_or(0.0);
                row.push(format!("{secs:.3}"));
                csv_rows.push(vec![
                    spec.name.clone(),
                    format!("{pct:.1}"),
                    alg.name().to_string(),
                    format!("{secs:.6}"),
                ]);
            }
            rows.push(row);
        }
        print_table(&headers, &rows);
    }
    write_csv(
        &env,
        "fig14_all_algorithms.csv",
        &["dataset", "minsup_pct", "algorithm", "pass2_seconds"],
        &csv_rows,
    )?;
    println!("\nexpected shape: NPGM worst at small minsup; FGD best throughout;");
    println!("TGD approaches H-HPGM as free memory vanishes.");
    Ok(())
}
