//! `serve_load` — a deterministic load generator for `gar-cli serve`,
//! closed-loop by default and open-loop with `--arrival-qps`.
//!
//! Baskets are drawn with a seeded SplitMix64 from the *antecedent
//! universe* of the rule store (items that can actually trigger rules),
//! so the same `--seed` always produces the same query stream. In the
//! default closed loop one request is in flight at a time; per-query
//! latency is measured client-side and summarized as p50/p99 and QPS.
//!
//! The `--transcript` file is the concatenation of every raw response
//! payload, length-prefixed. Server answers are deterministic and carry
//! no timestamps, so two runs with the same seed against the same store
//! must produce byte-identical transcripts — the smoke harness asserts
//! exactly that.
//!
//! `--batch N` groups baskets into `QueryBatch` frames of N — one
//! round-trip scores the whole frame. Latency is attributed **per
//! basket** (every basket in a frame records that frame's latency) and
//! QPS is baskets per second, so `--batch 1` and `--batch 64` numbers
//! stay directly comparable; `--batch 1` keeps the original
//! single-query wire path byte-for-byte (v1 `Query` closed-loop, v2
//! `QueryV2` open-loop), so historical transcripts and numbers are
//! untouched.
//!
//! `--same-root` draws every basket from a single taxonomy root's
//! subtree (the root chosen per basket from the same seeded stream,
//! weighted by its antecedent mass). That is the single-root-heavy
//! workload affinity routing is built for: each basket lands on
//! exactly one shard, and `serve.routed.single` should equal
//! `serve.baskets` on the server side.
//!
//! `--arrival-qps N` switches to an open loop: arrival gaps are drawn
//! from the same seeded stream (`gap_i = (0.5 + u_i) / N`, `u_i`
//! uniform in `[0,1)` — mean `1/N`, never bursty-zero), the schedule is
//! fixed *before* the run, and `--connections K` workers fire queries
//! at their scheduled offsets whether or not earlier answers returned.
//! Overloaded (shed) replies are counted separately from latencies, so
//! the summary reports the shed rate the server's admission control
//! chose under that arrival rate rather than folding retrys into tail
//! latency. Open loop uses the v2 protocol (`--budget-ms` is the
//! per-query deadline budget) and is incompatible with `--transcript`
//! (answer interleaving is timing-dependent across connections).
//!
//! ```text
//! serve_load --addr 127.0.0.1:7878 --rules rules.grul --queries 200 \
//!            --seed 42 --transcript t.bin --summary-out s.json
//! serve_load --addr 127.0.0.1:7878 --rules rules.grul --queries 500 \
//!            --seed 42 --arrival-qps 800 --connections 4 --budget-ms 50
//! ```

use gar_cluster::RetryPolicy;
use gar_obs::json::Value;
use gar_obs::Stopwatch;
use gar_serve::protocol::MAX_BATCH;
use gar_serve::{BatchReply, Client, QueryReply, RuleStore};
use gar_types::{Error, ItemId, Result};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Minimal `--key value` flag access over `std::env::args`.
struct Flags(Vec<String>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        let long = format!("--{key}");
        let mut it = self.0.iter();
        while let Some(tok) = it.next() {
            if *tok == long {
                return it.next().map(String::as_str);
            }
            if let Some(v) = tok.strip_prefix(&format!("{long}=")) {
                return Some(v);
            }
        }
        None
    }

    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|t| t == &format!("--{key}"))
    }

    fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| Error::InvalidConfig(format!("missing --{key}")))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::InvalidConfig(format!("bad --{key} '{v}'"))),
        }
    }
}

/// SplitMix64 — the workspace's seeded generator of choice for small
/// deterministic streams (same recurrence as `gar-datagen`).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn run() -> Result<()> {
    let flags = Flags(std::env::args().skip(1).collect());
    let addr = flags.require("addr")?;
    let rules_path = flags.require("rules")?;
    let queries: usize = flags.get_or("queries", 200)?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let top_k: u32 = flags.get_or("top-k", 5)?;
    let basket_len: usize = flags.get_or("basket", 3)?;
    let shards_label: u64 = flags.get_or("shards-label", 0)?;
    let deadline = Duration::from_millis(flags.get_or("deadline-ms", 5000)?);

    let store = RuleStore::load(rules_path)?;
    let universe = store.antecedent_items();
    if universe.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "{rules_path} holds no rules; nothing to query"
        )));
    }

    // `--same-root` is the single-root-heavy workload: every basket's
    // items come from one taxonomy root's subtree, so affinity routing
    // sends the whole basket to exactly one shard. Groups are keyed by
    // root in a BTreeMap so the draw order is deterministic.
    let same_root = flags.has("same-root");
    let by_root: Vec<(u32, Vec<ItemId>)> = if same_root {
        let mut groups: std::collections::BTreeMap<u32, Vec<ItemId>> = Default::default();
        for &item in &universe {
            groups
                .entry(store.taxonomy.root_of(item).0)
                .or_default()
                .push(item);
        }
        groups.into_iter().collect()
    } else {
        Vec::new()
    };

    let arrival_qps: f64 = flags.get_or("arrival-qps", 0.0)?;
    let batch: usize = flags.get_or("batch", 1)?;
    if batch == 0 || batch > MAX_BATCH {
        return Err(Error::InvalidConfig(format!(
            "--batch must be in 1..={MAX_BATCH}"
        )));
    }

    let mut rng = SplitMix64(seed);
    let baskets: Vec<Vec<ItemId>> = (0..queries)
        .map(|_| {
            // With --same-root the pool is one root's subtree, chosen by
            // drawing a universe item and keeping its whole root group —
            // roots are thereby weighted by their antecedent mass, like
            // the plain draw. Without it the pool is the full universe.
            let pool: &[ItemId] = if same_root {
                let probe = universe[rng.below(universe.len() as u64) as usize];
                let root = store.taxonomy.root_of(probe).0;
                match by_root.binary_search_by_key(&root, |(r, _)| *r) {
                    Ok(i) => &by_root[i].1,
                    Err(_) => &universe,
                }
            } else {
                &universe
            };
            // Distinct items per basket (a transaction is a set).
            let mut b = Vec::new();
            while b.len() < basket_len.min(pool.len()) {
                let item = pool[rng.below(pool.len() as u64) as usize];
                if !b.contains(&item) {
                    b.push(item);
                }
            }
            b
        })
        .collect();

    if arrival_qps > 0.0 {
        if flags.get("transcript").is_some() {
            return Err(Error::InvalidConfig(
                "--transcript needs the deterministic closed loop; \
                 drop --arrival-qps or --transcript"
                    .into(),
            ));
        }
        return open_loop(
            &flags,
            addr,
            &baskets,
            &mut rng,
            arrival_qps,
            deadline,
            batch,
        );
    }

    let mut client = Client::connect(addr, Some(deadline), &RetryPolicy::default())?;
    let mut transcript: Vec<u8> = Vec::new();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(queries);
    let wall = Stopwatch::start();
    if batch == 1 {
        // The original v1 single-query path, untouched: transcripts
        // written here must stay byte-identical across releases.
        for basket in &baskets {
            let clock = Stopwatch::start();
            let payload = client.query_raw(basket, top_k)?;
            latencies_us.push(clock.elapsed().as_micros() as u64);
            transcript.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            transcript.extend_from_slice(&payload);
        }
    } else {
        // Batched path: one frame per chunk; every basket in the chunk
        // records the frame's latency so percentiles stay per-basket.
        for chunk in baskets.chunks(batch) {
            let clock = Stopwatch::start();
            let payload = client.query_batch_raw(chunk, top_k, 0)?;
            let us = clock.elapsed().as_micros() as u64;
            latencies_us.extend(std::iter::repeat_n(us, chunk.len()));
            transcript.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            transcript.extend_from_slice(&payload);
        }
    }
    let elapsed = wall.elapsed();

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies_us.len() - 1) as f64 * p / 100.0).round() as usize;
        latencies_us[idx]
    };
    let (p50, p99) = (pct(50.0), pct(99.0));
    let qps = queries as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("{queries} queries in {elapsed:?}: p50 {p50} us, p99 {p99} us, {qps:.0} qps");

    if let Some(path) = flags.get("transcript") {
        std::fs::write(path, &transcript)
            .map_err(|e| Error::io(format!("writing transcript to {path}"), e))?;
        println!("wrote {path} ({} bytes)", transcript.len());
    }
    if let Some(path) = flags.get("summary-out") {
        let summary = Value::Obj(vec![
            ("shards".into(), Value::Num(shards_label as f64)),
            ("queries".into(), Value::Num(queries as f64)),
            ("batch".into(), Value::Num(batch as f64)),
            ("basket".into(), Value::Num(basket_len as f64)),
            (
                "same_root".into(),
                Value::Num(f64::from(u8::from(same_root))),
            ),
            ("p50_us".into(), Value::Num(p50 as f64)),
            ("p99_us".into(), Value::Num(p99 as f64)),
            ("qps".into(), Value::Num(qps.round())),
        ]);
        std::fs::write(path, summary.render())
            .map_err(|e| Error::io(format!("writing summary to {path}"), e))?;
        println!("wrote {path}");
    }

    if flags.has("shutdown") {
        client.shutdown()?;
        println!("server at {addr} acknowledged shutdown");
    }
    Ok(())
}

/// The open loop: fire each query at its pre-drawn arrival offset over
/// `--connections` parallel workers, regardless of whether earlier
/// answers have returned. Shed (Overloaded) replies are counted, not
/// latency-sampled — open-loop tail latency only means something over
/// the queries the server actually admitted.
#[allow(clippy::too_many_arguments)]
fn open_loop(
    flags: &Flags,
    addr: &str,
    baskets: &[Vec<ItemId>],
    rng: &mut SplitMix64,
    arrival_qps: f64,
    deadline: Duration,
    batch: usize,
) -> Result<()> {
    let top_k: u32 = flags.get_or("top-k", 5)?;
    let budget_ms: u32 = flags.get_or("budget-ms", 50)?;
    let connections: usize = flags.get_or("connections", 4)?;
    let shards_label: u64 = flags.get_or("shards-label", 0)?;
    if connections == 0 {
        return Err(Error::InvalidConfig(
            "--connections must be at least 1".into(),
        ));
    }

    // The arrival schedule is fixed up front from the seeded stream,
    // one arrival per *frame*: gap_i = frame_len × (0.5 + u_i) / qps
    // keeps the offered **basket** rate at `arrival_qps` whatever the
    // batch size, so a given seed always produces the same offered
    // load.
    let frames: Vec<&[Vec<ItemId>]> = baskets.chunks(batch).collect();
    let mut at = 0.0f64;
    let offsets: Vec<Duration> = frames
        .iter()
        .map(|frame| {
            let u = rng.next() as f64 / (u64::MAX as f64 + 1.0);
            at += frame.len() as f64 * (0.5 + u) / arrival_qps;
            Duration::from_secs_f64(at)
        })
        .collect();

    let wall = Stopwatch::start();
    let retry = RetryPolicy::default();
    // Worker w owns queries w, w+K, w+2K, … — a fixed partition, so the
    // schedule (not completion order) decides who sends what.
    let results: Vec<Result<(Vec<u64>, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| {
                let wall = &wall;
                let offsets = &offsets;
                let retry = &retry;
                let frames = &frames;
                scope.spawn(move || -> Result<(Vec<u64>, u64)> {
                    let mut client = Client::connect(addr, Some(deadline), retry)?;
                    let mut latencies_us = Vec::new();
                    let mut shed = 0u64;
                    for (frame, offset) in frames
                        .iter()
                        .zip(offsets)
                        .skip(w)
                        .step_by(connections.max(1))
                    {
                        let now = wall.elapsed();
                        if *offset > now {
                            std::thread::sleep(*offset - now);
                        }
                        let clock = Stopwatch::start();
                        if batch == 1 {
                            // The original v2 single-query wire path.
                            let Some(basket) = frame.first() else {
                                continue;
                            };
                            match client.query_v2(basket, top_k, budget_ms)? {
                                QueryReply::Results { .. } => {
                                    latencies_us.push(clock.elapsed().as_micros() as u64);
                                }
                                QueryReply::Overloaded { .. } => shed += 1,
                            }
                        } else {
                            match client.query_batch(frame, top_k, budget_ms)? {
                                BatchReply::Results { .. } => {
                                    // Per-basket attribution: every
                                    // basket in the frame waited this
                                    // long for its answer.
                                    let us = clock.elapsed().as_micros() as u64;
                                    latencies_us.extend(std::iter::repeat_n(us, frame.len()));
                                }
                                // Admission is all-or-nothing per
                                // frame: the whole frame was shed.
                                BatchReply::Overloaded { .. } => shed += frame.len() as u64,
                            }
                        }
                    }
                    Ok((latencies_us, shed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(Error::InvalidConfig("load worker panicked".into())),
            })
            .collect()
    });
    let elapsed = wall.elapsed();

    let mut latencies_us = Vec::new();
    let mut shed = 0u64;
    for r in results {
        let (lat, s) = r?;
        latencies_us.extend(lat);
        shed += s;
    }
    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() - 1) as f64 * p / 100.0).round() as usize;
        latencies_us.get(idx).copied().unwrap_or(0)
    };
    let (p50, p99) = (pct(50.0), pct(99.0));
    let queries = baskets.len();
    let qps = queries as f64 / elapsed.as_secs_f64().max(1e-9);
    let shed_rate = shed as f64 / (queries as f64).max(1.0);
    println!(
        "{queries} queries in {elapsed:?} (open loop, target {arrival_qps:.0} qps, \
         {connections} connections): p50 {p50} us, p99 {p99} us, {qps:.0} qps, \
         {shed} shed ({:.1}%)",
        shed_rate * 100.0
    );

    if let Some(path) = flags.get("summary-out") {
        let summary = Value::Obj(vec![
            ("shards".into(), Value::Num(shards_label as f64)),
            ("queries".into(), Value::Num(queries as f64)),
            ("arrival_qps".into(), Value::Num(arrival_qps)),
            ("batch".into(), Value::Num(batch as f64)),
            (
                "basket".into(),
                Value::Num(flags.get_or("basket", 3)? as f64),
            ),
            (
                "same_root".into(),
                Value::Num(f64::from(u8::from(flags.has("same-root")))),
            ),
            ("connections".into(), Value::Num(connections as f64)),
            ("p50_us".into(), Value::Num(p50 as f64)),
            ("p99_us".into(), Value::Num(p99 as f64)),
            ("qps".into(), Value::Num(qps.round())),
            ("shed".into(), Value::Num(shed as f64)),
            ("shed_rate".into(), Value::Num(shed_rate)),
        ]);
        std::fs::write(path, summary.render())
            .map_err(|e| Error::io(format!("writing summary to {path}"), e))?;
        println!("wrote {path}");
    }

    if flags.has("shutdown") {
        Client::connect(addr, Some(deadline), &retry)?.shutdown()?;
        println!("server at {addr} acknowledged shutdown");
    }
    Ok(())
}
