//! `serve_load` — a deterministic closed-loop load generator for
//! `gar-cli serve`.
//!
//! Baskets are drawn with a seeded SplitMix64 from the *antecedent
//! universe* of the rule store (items that can actually trigger rules),
//! so the same `--seed` always produces the same query stream. One
//! request is in flight at a time (closed loop); per-query latency is
//! measured client-side and summarized as p50/p99 and QPS.
//!
//! The `--transcript` file is the concatenation of every raw response
//! payload, length-prefixed. Server answers are deterministic and carry
//! no timestamps, so two runs with the same seed against the same store
//! must produce byte-identical transcripts — the smoke harness asserts
//! exactly that.
//!
//! ```text
//! serve_load --addr 127.0.0.1:7878 --rules rules.grul --queries 200 \
//!            --seed 42 --transcript t.bin --summary-out s.json
//! ```

use gar_cluster::RetryPolicy;
use gar_obs::json::Value;
use gar_obs::Stopwatch;
use gar_serve::{Client, RuleStore};
use gar_types::{Error, ItemId, Result};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Minimal `--key value` flag access over `std::env::args`.
struct Flags(Vec<String>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        let long = format!("--{key}");
        let mut it = self.0.iter();
        while let Some(tok) = it.next() {
            if *tok == long {
                return it.next().map(String::as_str);
            }
            if let Some(v) = tok.strip_prefix(&format!("{long}=")) {
                return Some(v);
            }
        }
        None
    }

    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|t| t == &format!("--{key}"))
    }

    fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| Error::InvalidConfig(format!("missing --{key}")))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::InvalidConfig(format!("bad --{key} '{v}'"))),
        }
    }
}

/// SplitMix64 — the workspace's seeded generator of choice for small
/// deterministic streams (same recurrence as `gar-datagen`).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn run() -> Result<()> {
    let flags = Flags(std::env::args().skip(1).collect());
    let addr = flags.require("addr")?;
    let rules_path = flags.require("rules")?;
    let queries: usize = flags.get_or("queries", 200)?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let top_k: u32 = flags.get_or("top-k", 5)?;
    let basket_len: usize = flags.get_or("basket", 3)?;
    let shards_label: u64 = flags.get_or("shards-label", 0)?;
    let deadline = Duration::from_millis(flags.get_or("deadline-ms", 5000)?);

    let universe = RuleStore::load(rules_path)?.antecedent_items();
    if universe.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "{rules_path} holds no rules; nothing to query"
        )));
    }

    let mut rng = SplitMix64(seed);
    let baskets: Vec<Vec<ItemId>> = (0..queries)
        .map(|_| {
            // Distinct items per basket (a transaction is a set).
            let mut b = Vec::new();
            while b.len() < basket_len.min(universe.len()) {
                let item = universe[rng.below(universe.len() as u64) as usize];
                if !b.contains(&item) {
                    b.push(item);
                }
            }
            b
        })
        .collect();

    let mut client = Client::connect(addr, Some(deadline), &RetryPolicy::default())?;
    let mut transcript: Vec<u8> = Vec::new();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(queries);
    let wall = Stopwatch::start();
    for basket in &baskets {
        let clock = Stopwatch::start();
        let payload = client.query_raw(basket, top_k)?;
        latencies_us.push(clock.elapsed().as_micros() as u64);
        transcript.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        transcript.extend_from_slice(&payload);
    }
    let elapsed = wall.elapsed();

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies_us.len() - 1) as f64 * p / 100.0).round() as usize;
        latencies_us[idx]
    };
    let (p50, p99) = (pct(50.0), pct(99.0));
    let qps = queries as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("{queries} queries in {elapsed:?}: p50 {p50} us, p99 {p99} us, {qps:.0} qps");

    if let Some(path) = flags.get("transcript") {
        std::fs::write(path, &transcript)
            .map_err(|e| Error::io(format!("writing transcript to {path}"), e))?;
        println!("wrote {path} ({} bytes)", transcript.len());
    }
    if let Some(path) = flags.get("summary-out") {
        let summary = Value::Obj(vec![
            ("shards".into(), Value::Num(shards_label as f64)),
            ("queries".into(), Value::Num(queries as f64)),
            ("p50_us".into(), Value::Num(p50 as f64)),
            ("p99_us".into(), Value::Num(p99 as f64)),
            ("qps".into(), Value::Num(qps.round())),
        ]);
        std::fs::write(path, summary.render())
            .map_err(|e| Error::io(format!("writing summary to {path}"), e))?;
        println!("wrote {path}");
    }

    if flags.has("shutdown") {
        client.shutdown()?;
        println!("server at {addr} acknowledged shutdown");
    }
    Ok(())
}
