//! Ablation: how the duplication budget (free memory) drives load
//! balance — the mechanism behind §3.4.
//!
//! Sweeps the per-node memory from "just fits the partitions" to "holds
//! everything", running H-HPGM-FGD at each point, and reports how many
//! candidates get duplicated, the probe-distribution skew, and the
//! modeled pass-2 time. Expected: more free memory → more duplication →
//! flatter probes → shorter critical path, saturating once the hot
//! candidates are all replicated.
//!
//! Run: `cargo run --release -p gar-bench --bin ablation_duplication_budget`

use gar_bench::{banner, print_table, run, write_csv, Env, Workload};
use gar_cluster::stats::skew_summary;
use gar_datagen::presets;
use gar_mining::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner(
        "Ablation: duplication budget vs load balance (H-HPGM-FGD)",
        &env,
    );

    const NODES: usize = 16;
    const MINSUP: f64 = 0.005;
    let workload = Workload::generate(&presets::r30f5(env.seed), &env)?;
    let db = workload.partition(NODES)?;
    let base = workload.pass2_candidate_bytes(MINSUP);

    let headers = [
        "memory/partition",
        "duplicated",
        "probe max/avg",
        "probe cv",
        "modeled (s)",
    ];
    let mut rows = Vec::new();
    for factor in [1.05, 1.25, 1.5, 2.0, 4.0, 16.0] {
        let memory = ((base as f64 * factor) / NODES as f64).ceil() as u64 + 1;
        let rep = run(
            Algorithm::HHpgmFgd,
            &workload,
            &db,
            MINSUP,
            NODES,
            memory,
            Some(2),
        )?;
        let p2 = rep.pass(2).expect("pass 2");
        let skew = skew_summary(&p2.probes_per_node());
        rows.push(vec![
            format!("{factor:.2}x"),
            format!("{}/{}", p2.num_duplicated, p2.num_candidates),
            format!("{:.2}", skew.max_over_mean),
            format!("{:.3}", skew.cv),
            format!("{:.3}", p2.modeled_seconds),
        ]);
    }
    print_table(&headers, &rows);
    write_csv(&env, "ablation_duplication_budget.csv", &headers, &rows)?;
    println!("\nexpected: duplication grows with memory; probe skew falls toward 1.0");
    Ok(())
}
