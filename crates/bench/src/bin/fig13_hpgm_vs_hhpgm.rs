//! Figure 13 — execution time of HPGM vs H-HPGM at pass 2, varying the
//! minimum support, one panel per dataset (R30F5, R30F3, R30F10).
//!
//! Expected shape: H-HPGM uniformly and substantially faster; the gap is
//! communication (HPGM ships every k-subset of ancestor-extended
//! transactions; H-HPGM ships a handful of leaf-level items).
//!
//! Run: `cargo run --release -p gar-bench --bin fig13_hpgm_vs_hhpgm`

use gar_bench::{banner, print_table, run, write_csv, Env, Workload, MINSUP_SWEEP_PCT};
use gar_datagen::presets;
use gar_mining::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner(
        "Figure 13: execution time, HPGM vs H-HPGM (pass 2, 16 nodes)",
        &env,
    );

    const NODES: usize = 16;
    let mut csv_rows = Vec::new();
    for spec in presets::all(env.seed) {
        let workload = Workload::generate(&spec, &env)?;
        let memory =
            workload.memory_per_node(MINSUP_SWEEP_PCT[MINSUP_SWEEP_PCT.len() - 1] / 100.0, NODES);
        let db = workload.partition(NODES)?;

        println!("\n--- dataset {} ---", spec.name);
        let headers = ["minsup %", "HPGM (s)", "H-HPGM (s)", "speedup"];
        let mut rows = Vec::new();
        for pct in MINSUP_SWEEP_PCT {
            let minsup = pct / 100.0;
            let hpgm = run(
                Algorithm::Hpgm,
                &workload,
                &db,
                minsup,
                NODES,
                memory,
                Some(2),
            )?;
            let hhpgm = run(
                Algorithm::HHpgm,
                &workload,
                &db,
                minsup,
                NODES,
                memory,
                Some(2),
            )?;
            let a = hpgm.pass(2).map(|p| p.modeled_seconds).unwrap_or(0.0);
            let b = hhpgm.pass(2).map(|p| p.modeled_seconds).unwrap_or(0.0);
            rows.push(vec![
                format!("{pct:.1}"),
                format!("{a:.3}"),
                format!("{b:.3}"),
                format!("{:.1}x", a / b.max(1e-12)),
            ]);
            csv_rows.push(vec![
                spec.name.clone(),
                format!("{pct:.1}"),
                format!("{a:.6}"),
                format!("{b:.6}"),
            ]);
        }
        print_table(&headers, &rows);
    }
    write_csv(
        &env,
        "fig13_hpgm_vs_hhpgm.csv",
        &["dataset", "minsup_pct", "hpgm_s", "hhpgm_s"],
        &csv_rows,
    )?;
    println!("\nexpected shape: H-HPGM consistently faster; gap grows as minsup drops");
    Ok(())
}
