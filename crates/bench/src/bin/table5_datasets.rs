//! Table 5 — dataset parameters and their emergent characteristics.
//!
//! Regenerates the three synthetic datasets and reports both the
//! configured parameters (which must match the table) and the emergent
//! properties the table derives (hierarchy levels per fanout).
//!
//! Run: `cargo run --release -p gar-bench --bin table5_datasets`

use gar_bench::{banner, print_table, write_csv, Env, Workload};
use gar_datagen::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner("Table 5: parameters of datasets", &env);

    let headers = ["parameter", "R30F5", "R30F3", "R30F10"];
    let mut cols: Vec<Vec<String>> = Vec::new();
    for spec in presets::all(env.seed) {
        let w = Workload::generate(&spec, &env)?;
        let tax = &w.taxonomy;
        let interior: usize = (0..tax.num_items())
            .filter(|&i| !tax.is_leaf(gar_types::ItemId(i)))
            .count();
        let mean_fanout = if interior > 0 {
            (tax.num_items() as usize - tax.roots().len()) as f64 / interior as f64
        } else {
            0.0
        };
        let mean_txn = w.transactions.iter().map(Vec::len).sum::<usize>() as f64
            / w.transactions.len().max(1) as f64;
        cols.push(vec![
            w.transactions.len().to_string(),
            format!("{mean_txn:.1}"),
            format!("{:.0}", w.spec.avg_pattern_size),
            w.spec.num_patterns.to_string(),
            w.spec.num_items.to_string(),
            tax.roots().len().to_string(),
            (tax.max_depth() + 1).to_string(),
            format!("{mean_fanout:.1}"),
        ]);
    }
    let row_names = [
        "transactions (scaled)",
        "avg transaction size",
        "avg maximal potentially large itemset",
        "maximal potentially large itemsets",
        "items (scaled)",
        "roots",
        "levels (emergent)",
        "mean fanout (emergent)",
    ];
    let rows: Vec<Vec<String>> = row_names
        .iter()
        .enumerate()
        .map(|(r, name)| {
            let mut row = vec![name.to_string()];
            for c in &cols {
                row.push(c[r].clone());
            }
            row
        })
        .collect();
    print_table(&headers, &rows);
    println!(
        "\npaper (full scale): 3 200 000 txns, |T|=10, |I|=5, 10 000 patterns,\n\
         30 000 items, 30 roots; levels 5-6 / 6-7 / 3-4 for fanout 5 / 3 / 10."
    );
    write_csv(&env, "table5_datasets.csv", &headers, &rows)?;
    Ok(())
}
