//! Table 6 — average amount of received messages per node, HPGM vs
//! H-HPGM, pass 2, dataset R30F5, minimum support 0.3%, at 8/12/16 nodes.
//!
//! Paper's numbers (full scale): HPGM 360.7 / 251.9 / 193.3 MB,
//! H-HPGM 12.5 / 9.6 / 7.8 MB — a ~29x gap. The absolute MB here shrink
//! with the dataset scale; the *ratio* is the reproduced claim.
//!
//! Run: `cargo run --release -p gar-bench --bin table6_messages`

use gar_bench::{banner, print_table, run, write_csv, Env, Workload};
use gar_datagen::presets;
use gar_mining::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner(
        "Table 6: average received message volume per node (pass 2)",
        &env,
    );

    const MINSUP: f64 = 0.003;
    let workload = Workload::generate(&presets::r30f5(env.seed), &env)?;
    let memory = workload.memory_per_node(MINSUP, 16);

    let headers = ["# of nodes", "HPGM (MB)", "H-HPGM (MB)", "ratio"];
    let mut rows = Vec::new();
    for nodes in [8usize, 12, 16] {
        let db = workload.partition(nodes)?;
        let hpgm = run(
            Algorithm::Hpgm,
            &workload,
            &db,
            MINSUP,
            nodes,
            memory,
            Some(2),
        )?;
        let hhpgm = run(
            Algorithm::HHpgm,
            &workload,
            &db,
            MINSUP,
            nodes,
            memory,
            Some(2),
        )?;
        let a = hpgm.pass(2).map(|p| p.avg_mb_received()).unwrap_or(0.0);
        let b = hhpgm.pass(2).map(|p| p.avg_mb_received()).unwrap_or(0.0);
        rows.push(vec![
            nodes.to_string(),
            format!("{a:.2}"),
            format!("{b:.2}"),
            format!("{:.1}x", a / b.max(1e-9)),
        ]);
    }
    print_table(&headers, &rows);
    println!("\npaper: 360.7/12.5, 251.9/9.6, 193.3/7.8 MB (≈29x at every size)");
    write_csv(&env, "table6_messages.csv", &headers, &rows)?;
    Ok(())
}
