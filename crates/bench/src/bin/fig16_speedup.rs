//! Figure 16 — speedup ratio over the 4-node execution, at 4/6/8/12/16
//! nodes, dataset R30F5, minimum supports 0.5% and 0.3%, for H-HPGM,
//! H-HPGM-TGD, H-HPGM-PGD and H-HPGM-FGD.
//!
//! Expected shape: FGD and PGD closest to linear; plain H-HPGM flattens
//! (data skew concentrates counting on a few nodes); TGD in between, and
//! worse at the smaller support where there is no room to copy trees.
//!
//! Run: `cargo run --release -p gar-bench --bin fig16_speedup`

use gar_bench::{banner, print_table, run, write_csv, Env, Workload};
use gar_datagen::presets;
use gar_mining::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner("Figure 16: speedup ratio vs 4 nodes (R30F5)", &env);

    const NODE_COUNTS: [usize; 5] = [4, 6, 8, 12, 16];
    const ALGS: [Algorithm; 4] = [
        Algorithm::HHpgm,
        Algorithm::HHpgmTgd,
        Algorithm::HHpgmPgd,
        Algorithm::HHpgmFgd,
    ];

    let workload = Workload::generate(&presets::r30f5(env.seed), &env)?;
    let mut csv_rows = Vec::new();

    for minsup_pct in [0.5f64, 0.3] {
        let minsup = minsup_pct / 100.0;
        // The per-node memory is fixed across cluster sizes — it is a
        // property of the machine, like the SP-2's 256 MB. It must hold
        // the candidates even on the smallest (4-node) cluster, which
        // automatically leaves free duplication space as nodes are added:
        // exactly the regime where the paper's Figure 16 separates the
        // algorithms.
        let memory = workload.memory_with_headroom(minsup, 4, 1.5);

        println!("\n--- minimum support {minsup_pct}% ---");
        let headers = ["nodes", "H-HPGM", "TGD", "PGD", "FGD"];
        let mut base: Vec<f64> = Vec::new();
        let mut rows = Vec::new();
        for &nodes in &NODE_COUNTS {
            let db = workload.partition(nodes)?;
            let mut row = vec![nodes.to_string()];
            for (ai, alg) in ALGS.iter().enumerate() {
                let rep = run(*alg, &workload, &db, minsup, nodes, memory, Some(2))?;
                let secs = rep.modeled_seconds;
                if nodes == NODE_COUNTS[0] {
                    base.push(secs);
                }
                let speedup = base[ai] / secs.max(1e-12) * NODE_COUNTS[0] as f64;
                row.push(format!("{speedup:.2}"));
                csv_rows.push(vec![
                    format!("{minsup_pct}"),
                    nodes.to_string(),
                    alg.name().to_string(),
                    format!("{secs:.6}"),
                    format!("{speedup:.3}"),
                ]);
            }
            rows.push(row);
        }
        print_table(&headers, &rows);
        println!("(values normalized so 4 nodes = 4.0; linear speedup at N nodes = N)");
    }
    write_csv(
        &env,
        "fig16_speedup.csv",
        &["minsup_pct", "nodes", "algorithm", "seconds", "speedup"],
        &csv_rows,
    )?;
    println!("\nexpected shape: FGD/PGD near-linear; H-HPGM flattens with node count");
    Ok(())
}
