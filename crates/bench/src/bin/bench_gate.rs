//! The perf-regression bench gate (`cargo xtask bench`).
//!
//! Runs a pinned smoke matrix — R30F5 at scale 0.01, minimum support
//! 1.0%, pass 2 only: sequential Cumulate plus NPGM / HPGM / H-HPGM /
//! H-HPGM-FGD and the pattern-growth FP-Growth at 4 and 8 nodes — and
//! writes the results as
//! `BENCH_PR10.json`. The gated quantity is the *modeled* SP-2 execution
//! time (`ParallelReport::modeled_seconds`, a pure function of the
//! deterministic per-node ledgers), not wall time, so the gate is
//! machine-independent and byte-reproducible; wall time is recorded per
//! entry and only gated when `--gate-wall` asks for it. Cumulate, which
//! has no cluster ledger, is gated on its (deterministic) large-itemset
//! count; its modeled seconds are synthesized from its
//! [`SequentialMeters`] through the same `CostModel`.
//!
//! Modes:
//!
//! * default — run the matrix and (re)write the baseline file;
//! * `--check` — run the matrix, write the fresh results next to the
//!   baseline (`BENCH_PR10.fresh.json`), and fail (exit 1) if any entry
//!   drifts from the committed baseline by more than `--tolerance`
//!   (relative, default 0.15), if an entry is missing, or if the
//!   Figure 14 ordering (H-HPGM-FGD ≤ H-HPGM ≤ HPGM at 8 nodes) breaks;
//! * `--gate-wall` — additionally gate wall-clock against the model:
//!   every 8-node entry must finish within `--wall-ratio-max` (default
//!   1.5) × its total modeled seconds, and no entry's wall/modeled
//!   ratio may regress more than `--wall-tolerance` (relative, default
//!   0.5 — wall time on shared runners is noisy) past the committed
//!   baseline's ratio.
//!
//! When `GITHUB_STEP_SUMMARY` is set, a markdown comparison table
//! (fresh vs baseline, with wall ratios) is appended to it.
//!
//! Optional artifacts: `--metrics-out FILE` / `--trace-out FILE` rerun
//! one instrumented configuration (H-HPGM-FGD at 8 nodes) with the
//! observability layer enabled and dump its counters and chrome-trace
//! spans.
//!
//! Run: `cargo xtask bench [--check] [--gate-wall] [--tolerance F] [--out FILE]`

use gar_bench::{banner, Env, Workload};
use gar_cluster::{ClusterConfig, CostModel, NodeStatsSnapshot};
use gar_datagen::presets;
use gar_mining::parallel::mine_parallel;
use gar_mining::sequential::cumulate_metered;
use gar_mining::{Algorithm, MiningParams, ParallelReport};
use gar_obs::json::{parse, Value};
use gar_obs::{Obs, Stopwatch};
use gar_storage::PartitionedDatabase;

/// Schema tag of the bench baseline file (v2 adds
/// `modeled_total_seconds` per entry so wall ratios can be gated).
const SCHEMA: &str = "gar-bench-v2";
/// The committed baseline this PR's gate compares against.
const BASELINE: &str = "BENCH_PR10.json";
/// Minimum support of the smoke matrix, in percent.
const MINSUP_PCT: f64 = 1.0;
/// The parallel algorithms of the matrix.
const ALGS: [Algorithm; 4] = [
    Algorithm::Npgm,
    Algorithm::Hpgm,
    Algorithm::HHpgm,
    Algorithm::HHpgmFgd,
];
/// Node counts of the matrix.
const NODE_COUNTS: [usize; 2] = [4, 8];

/// One gated measurement.
struct Entry {
    /// `"<algorithm>@<nodes>"`, the stable lookup key.
    key: String,
    /// What `value` measures (`modeled_seconds` or `num_large`).
    metric: &'static str,
    value: f64,
    /// Total modeled seconds over every pass of the run (for parallel
    /// entries `ParallelReport::modeled_seconds`; for Cumulate its
    /// meters priced through the default `CostModel`). The denominator
    /// of the `--gate-wall` ratio.
    modeled_total_seconds: f64,
    /// Wall time of the run; gated only under `--gate-wall`.
    wall_seconds: f64,
}

impl Entry {
    /// Wall-clock over modeled execution time.
    fn wall_ratio(&self) -> f64 {
        self.wall_seconds / self.modeled_total_seconds.max(1e-9)
    }
}

fn main() {
    std::process::exit(run_main());
}

fn run_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let gate_wall = args.iter().any(|a| a == "--gate-wall");
    let tolerance: f64 = flag_value(&args, "--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.15);
    let wall_tolerance: f64 = flag_value(&args, "--wall-tolerance")
        .map(|v| v.parse().expect("--wall-tolerance takes a number"))
        .unwrap_or(0.5);
    let wall_ratio_max: f64 = flag_value(&args, "--wall-ratio-max")
        .map(|v| v.parse().expect("--wall-ratio-max takes a number"))
        .unwrap_or(1.5);
    let out_path = flag_value(&args, "--out")
        .map(str::to_string)
        .unwrap_or_else(|| {
            if check || gate_wall {
                BASELINE.replace(".json", ".fresh.json")
            } else {
                BASELINE.to_string()
            }
        });

    let env = Env::load(0.01);
    banner("bench gate: pinned smoke matrix (R30F5, pass 2)", &env);

    let (entries, workload, db8) = match run_matrix(&env) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench gate: matrix run failed: {e}");
            return 1;
        }
    };

    let rendered = render(&env, &entries);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("bench gate: cannot write {out_path}: {e}");
        return 1;
    }
    println!("\n  [written {out_path}]");

    // Optional instrumented artifacts: one observed H-HPGM-FGD @ 8 run.
    let metrics_out = flag_value(&args, "--metrics-out");
    let trace_out = flag_value(&args, "--trace-out");
    if metrics_out.is_some() || trace_out.is_some() {
        let obs = Obs::enabled();
        if let Err(e) = run_one(Algorithm::HHpgmFgd, &workload, &db8, 8, &env, Some(&obs)) {
            eprintln!("bench gate: instrumented run failed: {e}");
            return 1;
        }
        if let Some(path) = metrics_out {
            if let Err(e) = std::fs::write(path, obs.metrics().to_json()) {
                eprintln!("bench gate: cannot write {path}: {e}");
                return 1;
            }
            println!("  [written {path}]");
        }
        if let Some(path) = trace_out {
            if let Err(e) = std::fs::write(path, obs.chrome_trace_json()) {
                eprintln!("bench gate: cannot write {path}: {e}");
                return 1;
            }
            println!("  [written {path}]");
        }
    }

    // The Figure 14 golden shape always holds at 8 nodes, gate or not:
    // hierarchy-aware placement beats hash scatter, and duplication can
    // only shed communication.
    if let Err(msg) = golden_shape(&entries) {
        eprintln!("bench gate: golden-shape violation: {msg}");
        return 1;
    }
    println!("  golden shape ok: H-HPGM-FGD <= H-HPGM <= HPGM at 8 nodes");

    write_step_summary(&entries);

    let mut code = 0;
    if gate_wall {
        match check_wall(&entries, wall_ratio_max, wall_tolerance) {
            Ok(()) => println!(
                "  wall gate ok: every 8-node entry within {wall_ratio_max:.2}x modeled, \
                 no ratio regression beyond {:.0}%",
                wall_tolerance * 100.0
            ),
            Err(msg) => {
                eprintln!("bench gate: {msg}");
                code = 1;
            }
        }
    }
    if check {
        match check_against_baseline(&entries, tolerance) {
            Ok(()) => println!(
                "  gate ok: all entries within {:.0}% of {BASELINE}",
                tolerance * 100.0
            ),
            Err(msg) => {
                eprintln!("bench gate: {msg}");
                code = 1;
            }
        }
    }
    code
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Runs the full matrix. Returns the entries plus the workload and the
/// 8-node database so the instrumented artifact run can reuse them.
fn run_matrix(env: &Env) -> Result<(Vec<Entry>, Workload, PartitionedDatabase), String> {
    let spec = presets::r30f5(env.seed);
    let workload = Workload::generate(&spec, env).map_err(|e| e.to_string())?;
    let minsup = MINSUP_PCT / 100.0;
    let mut entries = Vec::new();

    // Sequential reference: Cumulate over the unpartitioned data. Its
    // meters, priced through the same CostModel as the cluster ledgers,
    // give the sequential row a wall/modeled ratio too.
    let reference_large = {
        let db1 = workload.partition(1).map_err(|e| e.to_string())?;
        let params = MiningParams::with_min_support(minsup).max_pass(2);
        let sw = Stopwatch::start();
        let (output, meters) = cumulate_metered(db1.partition(0), &workload.taxonomy, &params)
            .map_err(|e| e.to_string())?;
        let wall = sw.elapsed().as_secs_f64();
        let modeled = CostModel::default().node_seconds(&NodeStatsSnapshot {
            cpu_ticks: meters.cpu_ticks,
            hash_probes: meters.hash_probes,
            io_bytes: meters.io_bytes,
            scan_passes: meters.scan_passes,
            ..Default::default()
        });
        println!(
            "  Cumulate@1: {} large itemsets, modeled {modeled:.4}s ({wall:.2}s wall)",
            output.num_large()
        );
        entries.push(Entry {
            key: "Cumulate@1".to_string(),
            metric: "num_large",
            value: output.num_large() as f64,
            modeled_total_seconds: modeled,
            wall_seconds: wall,
        });
        output.num_large()
    };

    let mut db8 = None;
    for nodes in NODE_COUNTS {
        let db = workload.partition(nodes).map_err(|e| e.to_string())?;
        for alg in ALGS {
            let sw = Stopwatch::start();
            let rep = run_one(alg, &workload, &db, nodes, env, None)?;
            let wall = sw.elapsed().as_secs_f64();
            let modeled = rep
                .pass_reports
                .iter()
                .find(|p| p.k == 2)
                .map(|p| p.modeled_seconds)
                .ok_or_else(|| format!("{} @ {nodes}: no pass 2 in report", alg.name()))?;
            println!(
                "  {}@{nodes}: modeled {modeled:.4}s ({wall:.2}s wall)",
                alg.name()
            );
            entries.push(Entry {
                key: format!("{}@{nodes}", alg.name()),
                metric: "modeled_seconds",
                value: modeled,
                modeled_total_seconds: rep.modeled_seconds,
                wall_seconds: wall,
            });
        }

        // The pattern-growth family: two logical passes, so its modeled
        // time covers tree build + base exchange + projection mining.
        // Its answer must be *exactly* Cumulate's, which the matrix
        // checks before trusting the timing row.
        {
            let sw = Stopwatch::start();
            let rep = run_fpg(&workload, &db, nodes)?;
            let wall = sw.elapsed().as_secs_f64();
            if rep.output.num_large() != reference_large {
                return Err(format!(
                    "FP-Growth @ {nodes}: {} large itemsets but Cumulate found {reference_large}",
                    rep.output.num_large()
                ));
            }
            let modeled = rep
                .pass_reports
                .iter()
                .find(|p| p.k == 2)
                .map(|p| p.modeled_seconds)
                .ok_or_else(|| format!("FP-Growth @ {nodes}: no pass 2 in report"))?;
            println!("  FP-Growth@{nodes}: modeled {modeled:.4}s ({wall:.2}s wall)");
            entries.push(Entry {
                key: format!("FP-Growth@{nodes}"),
                metric: "modeled_seconds",
                value: modeled,
                modeled_total_seconds: rep.modeled_seconds,
                wall_seconds: wall,
            });
        }
        if nodes == 8 {
            db8 = Some(db);
        }
    }
    Ok((entries, workload, db8.expect("8-node matrix ran")))
}

/// One parallel run of the matrix; `obs` enables instrumentation.
fn run_one(
    alg: Algorithm,
    workload: &Workload,
    db: &PartitionedDatabase,
    nodes: usize,
    _env: &Env,
    obs: Option<&Obs>,
) -> Result<ParallelReport, String> {
    let minsup = MINSUP_PCT / 100.0;
    // Headroom 3.0 puts the matrix in the paper's duplication regime
    // (`M < |C_2| < N*M` with free space on every node): FGD has room
    // to duplicate, so the Figure 14 ordering is observable.
    let memory = workload.memory_with_headroom(minsup, nodes, 3.0);
    let mut params = MiningParams::with_min_support(minsup);
    params.max_pass = Some(2);
    let mut cluster = ClusterConfig::new(nodes, memory);
    if let Some(obs) = obs {
        cluster = cluster.with_obs(obs.clone());
    }
    mine_parallel(alg, db, &workload.taxonomy, &params, &cluster)
        .map_err(|e| format!("{} @ {nodes} nodes: {e}", alg.name()))
}

/// One FP-Growth run of the matrix, same setup as `run_one` (the
/// pattern-growth driver lives in its own crate).
fn run_fpg(
    workload: &Workload,
    db: &PartitionedDatabase,
    nodes: usize,
) -> Result<ParallelReport, String> {
    let minsup = MINSUP_PCT / 100.0;
    let memory = workload.memory_with_headroom(minsup, nodes, 3.0);
    let mut params = MiningParams::with_min_support(minsup);
    params.max_pass = Some(2);
    let cluster = ClusterConfig::new(nodes, memory);
    gar_fpg::mine_parallel(db, &workload.taxonomy, &params, &cluster)
        .map_err(|e| format!("FP-Growth @ {nodes} nodes: {e}"))
}

/// Renders the baseline JSON through the gar-obs codec (deterministic
/// key order, shortest-round-trip floats).
fn render(env: &Env, entries: &[Entry]) -> String {
    let entry_objs: Vec<Value> = entries
        .iter()
        .map(|e| {
            Value::Obj(vec![
                ("key".to_string(), Value::Str(e.key.clone())),
                ("metric".to_string(), Value::Str(e.metric.to_string())),
                ("value".to_string(), Value::Num(e.value)),
                (
                    "modeled_total_seconds".to_string(),
                    Value::Num(e.modeled_total_seconds),
                ),
                ("wall_seconds".to_string(), Value::Num(e.wall_seconds)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".to_string(), Value::Str(SCHEMA.to_string())),
        ("dataset".to_string(), Value::Str("R30F5".to_string())),
        ("scale".to_string(), Value::Num(env.scale)),
        ("seed".to_string(), Value::Num(env.seed as f64)),
        ("minsup_pct".to_string(), Value::Num(MINSUP_PCT)),
        ("entries".to_string(), Value::Arr(entry_objs)),
    ])
    .render()
}

/// Figure 14 ordering at 8 nodes. Modeled times are deterministic, so
/// the comparison is exact (no slack).
fn golden_shape(entries: &[Entry]) -> Result<(), String> {
    let get = |key: &str| -> Result<f64, String> {
        entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.value)
            .ok_or_else(|| format!("entry {key} missing"))
    };
    let fgd = get("H-HPGM-FGD@8")?;
    let hhpgm = get("H-HPGM@8")?;
    let hpgm = get("HPGM@8")?;
    if fgd <= hhpgm && hhpgm <= hpgm {
        Ok(())
    } else {
        Err(format!(
            "expected H-HPGM-FGD ({fgd:.4}) <= H-HPGM ({hhpgm:.4}) <= HPGM ({hpgm:.4})"
        ))
    }
}

/// One committed-baseline entry: `(key, value, modeled_total_seconds,
/// wall_seconds)`. The last two are `None` for pre-v2 baselines.
type BaselineEntry = (String, f64, Option<f64>, Option<f64>);

fn load_baseline() -> Result<Vec<BaselineEntry>, String> {
    let src = std::fs::read_to_string(BASELINE).map_err(|e| {
        format!("cannot read {BASELINE}: {e} (run `cargo xtask bench` to create it)")
    })?;
    let doc = parse(&src).map_err(|e| format!("{BASELINE}: {e}"))?;
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(format!("{BASELINE}: not a {SCHEMA} file"));
    }
    let base_entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{BASELINE}: no entries array"))?;
    let mut out = Vec::new();
    for e in base_entries {
        let key = e
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{BASELINE}: entry without key"))?;
        let value = e
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{BASELINE}: entry {key} without value"))?;
        out.push((
            key.to_string(),
            value,
            e.get("modeled_total_seconds").and_then(Value::as_f64),
            e.get("wall_seconds").and_then(Value::as_f64),
        ));
    }
    Ok(out)
}

/// The `--gate-wall` checks.
///
/// 1. **Absolute**: every 8-node entry's wall time stays within
///    `ratio_max` × its total modeled seconds (the ROADMAP "wall within
///    ~1.5× of modeled" criterion — the simulator may not silently
///    drift away from the machine it models).
/// 2. **Ratchet**: no entry's wall/modeled ratio regresses more than
///    `tolerance` (relative) past the committed baseline's ratio, so
///    unmetered hot-path overhead cannot creep back in under the
///    absolute ceiling.
fn check_wall(entries: &[Entry], ratio_max: f64, tolerance: f64) -> Result<(), String> {
    let mut failures = Vec::new();
    for e in entries {
        if e.key.ends_with("@8") && e.wall_ratio() > ratio_max {
            failures.push(format!(
                "{}: wall {:.2}s is {:.2}x modeled {:.4}s (ceiling {ratio_max:.2}x)",
                e.key,
                e.wall_seconds,
                e.wall_ratio(),
                e.modeled_total_seconds,
            ));
        }
    }

    let baseline = load_baseline()?;
    for e in entries {
        let base_ratio = baseline.iter().find_map(|(key, _, modeled, wall)| {
            if key != &e.key {
                return None;
            }
            Some((*wall)? / (*modeled)?.max(1e-9))
        });
        let Some(base_ratio) = base_ratio else {
            failures.push(format!("{}: no wall ratio in {BASELINE}", e.key));
            continue;
        };
        let ceiling = base_ratio * (1.0 + tolerance);
        if e.wall_ratio() > ceiling {
            failures.push(format!(
                "{}: wall/modeled ratio {:.2} exceeds {ceiling:.2} \
                 (baseline {base_ratio:.2} + {:.0}% tolerance)",
                e.key,
                e.wall_ratio(),
                tolerance * 100.0
            ));
        }
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "wall gate: {} failure{}:\n  {}",
            failures.len(),
            if failures.len() == 1 { "" } else { "s" },
            failures.join("\n  ")
        ))
    }
}

/// Appends a fresh-vs-baseline markdown table to `$GITHUB_STEP_SUMMARY`
/// when CI provides one. Best-effort: failures only warn.
fn write_step_summary(entries: &[Entry]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let baseline = load_baseline().ok();
    let mut md = String::from(
        "### Bench gate (R30F5 smoke matrix)\n\n\
         | entry | metric | fresh | baseline | wall | wall/modeled |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for e in entries {
        let base = baseline
            .as_ref()
            .and_then(|b| b.iter().find(|(key, ..)| key == &e.key))
            .map_or_else(|| "—".to_string(), |(_, v, ..)| format!("{v:.4}"));
        md.push_str(&format!(
            "| {} | {} | {:.4} | {} | {:.2}s | {:.2}x |\n",
            e.key,
            e.metric,
            e.value,
            base,
            e.wall_seconds,
            e.wall_ratio()
        ));
    }
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(md.as_bytes()));
    if let Err(e) = appended {
        eprintln!("bench gate: cannot append step summary to {path}: {e}");
    }
}

/// Compares fresh entries against the committed baseline.
fn check_against_baseline(entries: &[Entry], tolerance: f64) -> Result<(), String> {
    let baseline = load_baseline()?;
    let baseline_of = |key: &str| -> Option<f64> {
        baseline
            .iter()
            .find_map(|(k, v, ..)| (k == key).then_some(*v))
    };

    let mut failures = Vec::new();
    for e in entries {
        let Some(base) = baseline_of(&e.key) else {
            failures.push(format!("{}: missing from baseline", e.key));
            continue;
        };
        let denom = base.abs().max(1e-9);
        let drift = (e.value - base) / denom;
        if drift.abs() > tolerance {
            failures.push(format!(
                "{}: {} drifted {:+.1}% (baseline {:.4}, fresh {:.4}, tolerance {:.0}%)",
                e.key,
                e.metric,
                drift * 100.0,
                base,
                e.value,
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} entr{} out of tolerance:\n  {}",
            failures.len(),
            if failures.len() == 1 { "y" } else { "ies" },
            failures.join("\n  ")
        ))
    }
}
