//! Figure 15 — workload distribution: the number of hash-table probes to
//! increment sup_cou in each node at pass 2 (R30F5, minsup 0.3%, 16
//! nodes) for H-HPGM, H-HPGM-TGD, H-HPGM-PGD and H-HPGM-FGD.
//!
//! Expected shape: H-HPGM heavily skewed ("largely fractured"); the
//! distribution flattens as the duplication granule gets finer, with FGD
//! flattest.
//!
//! Run: `cargo run --release -p gar-bench --bin fig15_workload_distribution`

use gar_bench::{banner, print_table, run, write_csv, Env, Workload};
use gar_cluster::stats::skew_summary;
use gar_datagen::presets;
use gar_mining::Algorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = Env::load(0.01);
    banner(
        "Figure 15: per-node sup_cou probes at pass 2 (R30F5, 0.3%, 16 nodes)",
        &env,
    );

    const NODES: usize = 16;
    const MINSUP: f64 = 0.003;
    const ALGS: [Algorithm; 4] = [
        Algorithm::HHpgm,
        Algorithm::HHpgmTgd,
        Algorithm::HHpgmPgd,
        Algorithm::HHpgmFgd,
    ];

    let workload = Workload::generate(&presets::r30f5(env.seed), &env)?;
    // Memory with enough headroom that free duplication space exists even
    // at 0.3% — the paper's 256 MB/node equivalent. (With the bare
    // fits-the-partitions budget every variant degenerates to H-HPGM, as
    // the duplication-budget ablation shows.)
    let memory = workload.memory_with_headroom(MINSUP, NODES, 3.0);
    let db = workload.partition(NODES)?;

    let mut headers: Vec<String> = vec!["node".into()];
    let mut series: Vec<Vec<u64>> = Vec::new();
    for alg in ALGS {
        let rep = run(alg, &workload, &db, MINSUP, NODES, memory, Some(2))?;
        let probes = rep.pass(2).expect("pass 2").probes_per_node();
        headers.push(alg.name().to_string());
        series.push(probes);
    }

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for node in 0..NODES {
        let mut row = vec![node.to_string()];
        for s in &series {
            row.push(s[node].to_string());
        }
        rows.push(row);
    }
    // Summary rows.
    let mut skew_row = vec!["max/avg".to_string()];
    let mut cv_row = vec!["cv".to_string()];
    for s in &series {
        let sk = skew_summary(s);
        skew_row.push(format!("{:.2}", sk.max_over_mean));
        cv_row.push(format!("{:.3}", sk.cv));
    }
    rows.push(skew_row);
    rows.push(cv_row);
    print_table(&header_refs, &rows);
    write_csv(&env, "fig15_workload_distribution.csv", &header_refs, &rows)?;
    println!("\nexpected shape: distribution flattens left to right (coarse -> fine grain)");
    Ok(())
}
