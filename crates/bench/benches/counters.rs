//! Counter ablation: flat hash-map probing vs hash-tree walking, the
//! choice DESIGN.md calls out. The flat map wins at k = 2 (one hash per
//! pair); the tree wins once subset enumeration explodes (k ≥ 3 on long
//! extended transactions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gar_mining::counter::build_counter;
use gar_mining::CounterKind;
use gar_types::{ItemId, Itemset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_candidates(k: usize, n: usize, universe: u32, seed: u64) -> Vec<Itemset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = std::collections::BTreeSet::new();
    while out.len() < n {
        let mut items = std::collections::BTreeSet::new();
        while items.len() < k {
            items.insert(ItemId(rng.gen_range(0..universe)));
        }
        out.insert(Itemset::from_unsorted(items.into_iter().collect()));
    }
    out.into_iter().collect()
}

fn random_transactions(len: usize, n: usize, universe: u32, seed: u64) -> Vec<Vec<ItemId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = std::collections::BTreeSet::new();
            while t.len() < len {
                t.insert(ItemId(rng.gen_range(0..universe)));
            }
            t.into_iter().collect()
        })
        .collect()
}

fn bench_counting(c: &mut Criterion) {
    let txns = random_transactions(20, 500, 800, 7);
    for k in [2usize, 3] {
        let candidates = random_candidates(k, 5_000, 800, 42);
        let mut group = c.benchmark_group(format!("count_k{k}"));
        for kind in [CounterKind::HashMap, CounterKind::HashTree] {
            let name = match kind {
                CounterKind::HashMap => "flat_hashmap",
                CounterKind::HashTree => "hash_tree",
            };
            group.bench_function(BenchmarkId::new(name, "500txn_5kcand"), |b| {
                b.iter(|| {
                    let mut counter = build_counter(kind, k, &candidates);
                    let mut hits = 0;
                    for t in &txns {
                        hits += counter.count_transaction(black_box(t)).hits;
                    }
                    black_box(hits)
                })
            });
        }
        group.finish();
    }
}

fn bench_probe(c: &mut Criterion) {
    let candidates = random_candidates(2, 20_000, 2_000, 3);
    let probes: Vec<[ItemId; 2]> = {
        let mut rng = StdRng::seed_from_u64(9);
        (0..10_000)
            .map(|_| {
                let a = rng.gen_range(0..1_999u32);
                [ItemId(a), ItemId(a + 1)]
            })
            .collect()
    };
    let mut group = c.benchmark_group("single_probe");
    for kind in [CounterKind::HashMap, CounterKind::HashTree] {
        let name = match kind {
            CounterKind::HashMap => "flat_hashmap",
            CounterKind::HashTree => "hash_tree",
        };
        group.bench_function(name, |b| {
            let mut counter = build_counter(kind, 2, &candidates);
            b.iter(|| {
                let mut hits = 0;
                for p in &probes {
                    hits += counter.probe(black_box(p)).hits;
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counting, bench_probe);
criterion_main!(benches);
