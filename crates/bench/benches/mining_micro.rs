//! Microbenchmarks of the per-pass building blocks: candidate
//! generation, taxonomy extension/reduction, and data generation
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::candidate::{generate_candidates, generate_pairs};
use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
use gar_taxonomy::PrunedView;
use gar_types::{ItemId, Itemset};
use std::hint::black_box;

fn bench_candidate_generation(c: &mut Criterion) {
    let l1: Vec<ItemId> = (0..600).map(ItemId).collect();
    let tax = synthesize(&SynthTaxonomyConfig {
        num_items: 600,
        num_roots: 30,
        fanout: 5.0,
        seed: 1,
    });
    c.bench_function("generate_pairs_600_items_taxonomy", |b| {
        b.iter(|| black_box(generate_pairs(black_box(&l1), Some(&tax))).len())
    });

    // L2 with clustered prefixes so the join step has real runs.
    let l2: Vec<Itemset> = (0..200u32)
        .flat_map(|a| (a + 1..a + 6).map(move |b| Itemset::pair(ItemId(a), ItemId(b))))
        .collect();
    c.bench_function("generate_c3_from_1000_l2", |b| {
        b.iter(|| black_box(generate_candidates(black_box(&l2))).len())
    });
}

fn bench_taxonomy_ops(c: &mut Criterion) {
    let tax = synthesize(&SynthTaxonomyConfig {
        num_items: 30_000,
        num_roots: 30,
        fanout: 5.0,
        seed: 2,
    });
    let leaves = tax.leaves();
    let txn: Vec<ItemId> = (0..10).map(|i| leaves[i * 97 % leaves.len()]).collect();
    let txn = {
        let mut t = txn;
        t.sort_unstable();
        t.dedup();
        t
    };

    c.bench_function("extend_transaction_10_items", |b| {
        b.iter(|| black_box(tax.extend_transaction(black_box(&txn))).len())
    });

    let view = PrunedView::keep_all(&tax);
    c.bench_function("extend_transaction_filtered_10_items", |b| {
        b.iter(|| black_box(view.extend_transaction(&tax, black_box(&txn))).len())
    });

    c.bench_function("reduce_to_lowest_large_10_items", |b| {
        b.iter(|| {
            black_box(tax.reduce_to_lowest_large(black_box(&txn), |i| i.raw() % 3 != 0)).len()
        })
    });

    c.bench_function("synthesize_30k_item_forest", |b| {
        b.iter(|| {
            synthesize(&SynthTaxonomyConfig {
                num_items: 30_000,
                num_roots: 30,
                fanout: 5.0,
                seed: 3,
            })
            .num_items()
        })
    });
}

fn bench_datagen(c: &mut Criterion) {
    let spec = DatasetSpec {
        name: "bench".into(),
        num_transactions: 10_000,
        avg_transaction_size: 10.0,
        avg_pattern_size: 5.0,
        num_patterns: 500,
        num_items: 3_000,
        num_roots: 30,
        fanout: 5.0,
        seed: 4,
    };
    c.bench_function("generate_10k_transactions", |b| {
        b.iter(|| {
            let g = TransactionGenerator::new(black_box(&spec)).unwrap();
            black_box(g.count())
        })
    });
}

criterion_group!(
    benches,
    bench_candidate_generation,
    bench_taxonomy_ops,
    bench_datagen
);
criterion_main!(benches);
