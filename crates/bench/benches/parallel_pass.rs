//! End-to-end pass-2 benchmarks of the parallel algorithms on a small
//! fixed workload — real threaded runs, measuring this machine's wall
//! time (the per-figure binaries report the modeled SP-2 time instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gar_bench::{Env, Workload};
use gar_cluster::ClusterConfig;
use gar_datagen::presets;
use gar_mining::parallel::mine_parallel;
use gar_mining::{Algorithm, MiningParams};
use std::hint::black_box;
use std::path::PathBuf;

fn bench_parallel_pass2(c: &mut Criterion) {
    let env = Env {
        scale: 0.002,
        seed: 42,
        results_dir: PathBuf::from("results"),
    };
    let workload = Workload::generate(&presets::r30f5(env.seed), &env).unwrap();
    let nodes = 4;
    let db = workload.partition(nodes).unwrap();
    let memory = workload.memory_per_node(0.005, nodes);
    let params = MiningParams::with_min_support(0.005).max_pass(2);
    let cluster = ClusterConfig::new(nodes, memory);

    let mut group = c.benchmark_group("parallel_pass2");
    group.sample_size(10);
    for alg in Algorithm::parallel_all() {
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter(|| {
                let rep = mine_parallel(alg, &db, &workload.taxonomy, &params, &cluster).unwrap();
                black_box(rep.output.num_large())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_pass2);
criterion_main!(benches);
