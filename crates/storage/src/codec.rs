//! Binary record format for transaction partitions.
//!
//! One record = `u32` LE item count followed by that many `u32` LE item
//! codes. Dense, alignment-free, and trivially seekable from the front —
//! all a sequential mining scan needs. Item codes within a record are
//! stored sorted (the writer enforces it), so scans never re-sort.

use gar_types::{Error, ItemId, Result};
use std::io::{Read, Write};

/// Encoded size of a transaction with `len` items, in bytes.
#[inline]
pub fn encoded_len(len: usize) -> usize {
    4 + 4 * len
}

/// Writes one transaction record.
///
/// # Errors
/// Propagates the writer's I/O errors; rejects transactions longer than
/// `u32::MAX` items (unrepresentable length prefix).
pub fn write_transaction(w: &mut impl Write, items: &[ItemId]) -> Result<()> {
    let len = u32::try_from(items.len())
        .map_err(|_| Error::Corrupt(format!("transaction of {} items is too long", items.len())))?;
    debug_assert!(
        items.windows(2).all(|p| p[0] < p[1]),
        "records must be sorted/deduped before writing"
    );
    let mut buf = Vec::with_capacity(encoded_len(items.len()));
    buf.extend_from_slice(&len.to_le_bytes());
    for it in items {
        buf.extend_from_slice(&it.raw().to_le_bytes());
    }
    w.write_all(&buf)
        .map_err(|e| Error::io("writing transaction record", e))
}

/// Reads the next record into `buf` (cleared first). Returns the number of
/// bytes consumed, or `None` on a clean end-of-stream.
///
/// # Errors
/// A record truncated mid-way is reported as [`Error::Corrupt`]; other read
/// failures as [`Error::Io`].
pub fn read_transaction(r: &mut impl Read, buf: &mut Vec<ItemId>) -> Result<Option<usize>> {
    buf.clear();
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => {
            return Err(Error::Corrupt("record length prefix truncated".into()))
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    buf.reserve(len);
    let mut word = [0u8; 4];
    for i in 0..len {
        match read_exact_or_eof(r, &mut word)? {
            ReadOutcome::Full => buf.push(ItemId(u32::from_le_bytes(word))),
            _ => {
                return Err(Error::Corrupt(format!(
                    "record truncated at item {i} of {len}"
                )))
            }
        }
    }
    Ok(Some(encoded_len(len)))
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes "no bytes at all" (clean EOF between
/// records) from "some but not all" (corruption).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::io("reading transaction record", e)),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn round_trip_single_record() {
        let txn = ids(&[1, 5, 9, 200]);
        let mut out = Vec::new();
        write_transaction(&mut out, &txn).unwrap();
        assert_eq!(out.len(), encoded_len(4));

        let mut cur = Cursor::new(out);
        let mut buf = Vec::new();
        let n = read_transaction(&mut cur, &mut buf).unwrap();
        assert_eq!(n, Some(encoded_len(4)));
        assert_eq!(buf, txn);
        assert_eq!(read_transaction(&mut cur, &mut buf).unwrap(), None);
    }

    #[test]
    fn round_trip_many_records_including_empty() {
        let txns = vec![ids(&[3]), ids(&[]), ids(&[1, 2, 3, 4, 5])];
        let mut out = Vec::new();
        for t in &txns {
            write_transaction(&mut out, t).unwrap();
        }
        let mut cur = Cursor::new(out);
        let mut buf = Vec::new();
        for t in &txns {
            assert!(read_transaction(&mut cur, &mut buf).unwrap().is_some());
            assert_eq!(&buf, t);
        }
        assert_eq!(read_transaction(&mut cur, &mut buf).unwrap(), None);
    }

    #[test]
    fn truncated_prefix_is_corrupt() {
        let mut cur = Cursor::new(vec![1u8, 0]); // 2 of 4 prefix bytes
        let mut buf = Vec::new();
        let err = read_transaction(&mut cur, &mut buf).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncated_body_is_corrupt() {
        let mut bytes = Vec::new();
        write_transaction(&mut bytes, &ids(&[1, 2, 3])).unwrap();
        bytes.truncate(bytes.len() - 2);
        let mut cur = Cursor::new(bytes);
        let mut buf = Vec::new();
        let err = read_transaction(&mut cur, &mut buf).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn encoded_len_matches_reality() {
        for n in [0usize, 1, 7, 100] {
            let txn: Vec<ItemId> = (0..n as u32).map(ItemId).collect();
            let mut out = Vec::new();
            write_transaction(&mut out, &txn).unwrap();
            assert_eq!(out.len(), encoded_len(n));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        #[test]
        fn arbitrary_batches_round_trip(
            txns in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10_000, 0..40), 0..50)
        ) {
            let txns: Vec<Vec<ItemId>> = txns.into_iter()
                .map(|s| s.into_iter().map(ItemId).collect())
                .collect();
            let mut bytes = Vec::new();
            for t in &txns {
                write_transaction(&mut bytes, t).unwrap();
            }
            let mut cur = Cursor::new(bytes);
            let mut buf = Vec::new();
            let mut got = Vec::new();
            while read_transaction(&mut cur, &mut buf).unwrap().is_some() {
                got.push(buf.clone());
            }
            prop_assert_eq!(got, txns);
        }
    }
}
