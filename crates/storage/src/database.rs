//! Horizontally partitioned transaction databases.

use crate::flat::FlatPartition;
use crate::partition::PartitionWriter;
use crate::TransactionSource;
use gar_types::{Error, ItemId, Result};
use std::path::Path;

/// A transaction database split across `N` node partitions — the paper's
/// "the transaction data is evenly spread over the local disks of all the
/// nodes". Partition `n` plays the role of `D^n`.
pub struct PartitionedDatabase {
    parts: Vec<Box<dyn TransactionSource>>,
}

impl PartitionedDatabase {
    /// Builds `num_partitions` disk partitions under `dir`, distributing
    /// the stream round-robin (which is also an even spread for the
    /// synthetic data, whose transactions are i.i.d.).
    pub fn build_on_disk(
        dir: impl AsRef<Path>,
        num_partitions: usize,
        txns: impl Iterator<Item = Vec<ItemId>>,
    ) -> Result<PartitionedDatabase> {
        if num_partitions == 0 {
            return Err(Error::InvalidConfig("need at least one partition".into()));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("creating database dir {}", dir.display()), e))?;
        let mut writers: Vec<PartitionWriter> = (0..num_partitions)
            .map(|i| PartitionWriter::create(dir.join(format!("part-{i:04}.txn"))))
            .collect::<Result<_>>()?;
        for (i, t) in txns.enumerate() {
            writers[i % num_partitions].write(&t)?;
        }
        let parts = writers
            .into_iter()
            .map(|w| {
                w.finish()
                    .map(|p| Box::new(p) as Box<dyn TransactionSource>)
            })
            .collect::<Result<_>>()?;
        Ok(PartitionedDatabase { parts })
    }

    /// Same split, held in memory as zero-copy [`FlatPartition`]s (scan
    /// passes lend borrowed slices; `bytes_read` accounting is identical
    /// to the other representations).
    pub fn build_in_memory(
        num_partitions: usize,
        txns: impl Iterator<Item = Vec<ItemId>>,
    ) -> Result<PartitionedDatabase> {
        if num_partitions == 0 {
            return Err(Error::InvalidConfig("need at least one partition".into()));
        }
        let mut buckets: Vec<FlatPartition> =
            (0..num_partitions).map(|_| FlatPartition::new()).collect();
        for (i, t) in txns.enumerate() {
            buckets[i % num_partitions].push(&t);
        }
        let parts = buckets
            .into_iter()
            .map(|b| Box::new(b) as Box<dyn TransactionSource>)
            .collect();
        Ok(PartitionedDatabase { parts })
    }

    /// Wraps already-opened partitions (e.g. re-opened from a dataset
    /// directory on disk).
    pub fn from_parts(parts: Vec<Box<dyn TransactionSource>>) -> PartitionedDatabase {
        PartitionedDatabase { parts }
    }

    /// Number of partitions (= simulated nodes).
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// The `n`-th node's local partition.
    pub fn partition(&self, n: usize) -> &dyn TransactionSource {
        self.parts[n].as_ref()
    }

    /// All partitions (for handing one to each node thread).
    pub fn partitions(&self) -> &[Box<dyn TransactionSource>] {
        &self.parts
    }

    /// Transactions across all partitions.
    pub fn total_transactions(&self) -> usize {
        self.parts.iter().map(|p| p.num_transactions()).sum()
    }

    /// Cumulative bytes read across all partitions and scans — the I/O
    /// ledger the NPGM experiments report against.
    pub fn total_bytes_read(&self) -> u64 {
        self.parts.iter().map(|p| p.bytes_read()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn drain(p: &dyn TransactionSource) -> Vec<Vec<ItemId>> {
        let mut scan = p.scan().unwrap();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while scan.next_into(&mut buf).unwrap() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn round_robin_split_in_memory() {
        let txns: Vec<Vec<ItemId>> = (0..10u32).map(|i| ids(&[i])).collect();
        let db = PartitionedDatabase::build_in_memory(3, txns.into_iter()).unwrap();
        assert_eq!(db.num_partitions(), 3);
        assert_eq!(db.total_transactions(), 10);
        assert_eq!(drain(db.partition(0)).len(), 4); // 0,3,6,9
        assert_eq!(drain(db.partition(1)).len(), 3);
        assert_eq!(drain(db.partition(2)).len(), 3);
        assert_eq!(drain(db.partition(0))[1], ids(&[3]));
    }

    #[test]
    fn round_robin_split_on_disk() {
        let dir = std::env::temp_dir().join(format!("gar-db-test-{}", std::process::id()));
        let txns: Vec<Vec<ItemId>> = (0..7u32).map(|i| ids(&[i, i + 10])).collect();
        let db = PartitionedDatabase::build_on_disk(&dir, 2, txns.clone().into_iter()).unwrap();
        assert_eq!(db.total_transactions(), 7);
        let p0 = drain(db.partition(0));
        let p1 = drain(db.partition(1));
        assert_eq!(p0.len(), 4);
        assert_eq!(p1.len(), 3);
        let mut all: Vec<_> = p0.into_iter().chain(p1).collect();
        all.sort();
        let mut want = txns;
        want.sort();
        assert_eq!(all, want);
        assert!(db.total_bytes_read() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(PartitionedDatabase::build_in_memory(0, std::iter::empty()).is_err());
        assert!(PartitionedDatabase::build_on_disk("/tmp/never", 0, std::iter::empty()).is_err());
    }
}
