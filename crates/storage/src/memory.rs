//! In-memory partitions, interface-compatible with the disk ones.

use crate::codec;
use crate::{TransactionScan, TransactionSource};
use gar_types::{ItemId, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// A node partition held in memory. Used by unit tests and microbenches
/// where disk latency would only add noise; reports *equivalent* encoded
/// bytes for `bytes_read` so algorithms see the same I/O ledger either way.
#[derive(Debug, Default)]
pub struct MemoryPartition {
    txns: Vec<Vec<ItemId>>,
    bytes: u64,
    bytes_read: AtomicU64,
}

impl MemoryPartition {
    /// Builds a partition from pre-sorted transactions.
    pub fn new(txns: Vec<Vec<ItemId>>) -> MemoryPartition {
        let bytes = txns
            .iter()
            .map(|t| codec::encoded_len(t.len()) as u64)
            .sum();
        debug_assert!(txns.iter().all(|t| t.windows(2).all(|w| w[0] < w[1])));
        MemoryPartition {
            txns,
            bytes,
            bytes_read: AtomicU64::new(0),
        }
    }

    /// Equivalent encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Direct access to the stored transactions.
    pub fn transactions(&self) -> &[Vec<ItemId>] {
        &self.txns
    }
}

impl TransactionSource for MemoryPartition {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }

    fn num_transactions(&self) -> usize {
        self.txns.len()
    }

    fn scan(&self) -> Result<Box<dyn TransactionScan + '_>> {
        Ok(Box::new(MemScan {
            part: self,
            next: 0,
        }))
    }

    fn bytes_read(&self) -> u64 {
        // relaxed: monotonic I/O tally read for reporting only; scans
        // and readers are never ordered against each other.
        self.bytes_read.load(Ordering::Relaxed)
    }
}

struct MemScan<'a> {
    part: &'a MemoryPartition,
    next: usize,
}

impl TransactionScan for MemScan<'_> {
    fn next_slice(&mut self) -> Result<Option<&[ItemId]>> {
        match self.part.txns.get(self.next) {
            Some(t) => {
                self.part
                    .bytes_read
                    // relaxed: monotonic I/O tally; see bytes_read().
                    .fetch_add(codec::encoded_len(t.len()) as u64, Ordering::Relaxed);
                self.next += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn scan_round_trips() {
        let txns = vec![ids(&[1, 2]), ids(&[5])];
        let p = MemoryPartition::new(txns.clone());
        assert_eq!(p.num_transactions(), 2);
        let mut scan = p.scan().unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while scan.next_into(&mut buf).unwrap() {
            got.push(buf.clone());
        }
        assert_eq!(got, txns);
    }

    #[test]
    fn bytes_read_mirrors_disk_accounting() {
        let p = MemoryPartition::new(vec![ids(&[1, 2, 3])]);
        assert_eq!(p.bytes_read(), 0);
        let mut scan = p.scan().unwrap();
        let mut buf = Vec::new();
        while scan.next_into(&mut buf).unwrap() {}
        drop(scan);
        assert_eq!(p.bytes_read(), p.size_bytes());
        assert_eq!(p.size_bytes(), codec::encoded_len(3) as u64);
    }

    #[test]
    fn empty_partition_scans_cleanly() {
        let p = MemoryPartition::new(vec![]);
        let mut scan = p.scan().unwrap();
        let mut buf = Vec::new();
        assert!(!scan.next_into(&mut buf).unwrap());
    }
}
