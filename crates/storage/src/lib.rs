//! The transaction database substrate.
//!
//! The paper's SP-2 nodes each own a 2 GB local disk holding their share of
//! the (horizontally partitioned) transaction file; "the transaction data is
//! evenly spread over the local disks of all the nodes". This crate
//! reproduces that layout:
//!
//! * [`codec`] — a compact length-prefixed binary record format;
//! * [`DiskPartition`] / [`PartitionWriter`] — one file per node, buffered,
//!   with cumulative read-byte accounting (NPGM's defining cost is
//!   *re-scanning* these files once per candidate fragment);
//! * [`MemoryPartition`] — an in-memory stand-in with the same interface
//!   for unit tests and allocation-free microbenches;
//! * [`PartitionedDatabase`] — splits a transaction stream round-robin
//!   across `N` node partitions, as the evaluation section prescribes.
//!
//! Every scan path is infallible-fast: records stream through a reusable
//! buffer; corruption and truncation surface as [`gar_types::Error`].

pub mod codec;
mod database;
mod memory;
mod multi;
mod partition;

pub use database::PartitionedDatabase;
pub use memory::MemoryPartition;
pub use multi::MultiSource;
pub use partition::{DiskPartition, PartitionWriter, ScanIter};

use gar_types::{ItemId, Result};

/// A node-local slice of the transaction database (`D^n` in the paper's
/// notation): something that can be scanned start-to-finish, repeatedly.
pub trait TransactionSource: Send + Sync {
    /// Number of transactions in this partition.
    fn num_transactions(&self) -> usize;

    /// Starts a fresh scan. Each call rewinds to the first transaction.
    fn scan(&self) -> Result<Box<dyn TransactionScan + '_>>;

    /// Total bytes read from this partition so far, across all scans.
    /// Memory partitions report equivalent encoded bytes so NPGM's
    /// fragment-rescan cost stays visible in either mode.
    fn bytes_read(&self) -> u64;
}

/// A streaming pass over one partition. `next_into` refills the caller's
/// buffer to avoid a per-transaction allocation on the hot path (see the
/// perf-book guidance on reusing workhorse collections).
pub trait TransactionScan {
    /// Reads the next transaction into `buf` (cleared first). Returns
    /// `Ok(false)` on a clean end-of-partition.
    fn next_into(&mut self, buf: &mut Vec<ItemId>) -> Result<bool>;
}
