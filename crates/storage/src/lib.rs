//! The transaction database substrate.
//!
//! The paper's SP-2 nodes each own a 2 GB local disk holding their share of
//! the (horizontally partitioned) transaction file; "the transaction data is
//! evenly spread over the local disks of all the nodes". This crate
//! reproduces that layout:
//!
//! * [`codec`] — a compact length-prefixed binary record format;
//! * [`DiskPartition`] / [`PartitionWriter`] — one file per node, buffered,
//!   with cumulative read-byte accounting (NPGM's defining cost is
//!   *re-scanning* these files once per candidate fragment);
//! * [`MemoryPartition`] — an in-memory stand-in with the same interface
//!   for unit tests and allocation-free microbenches;
//! * [`FlatPartition`] — the zero-copy representation: one offsets array +
//!   one items array, scans lend borrowed slices, with a bulk-loadable
//!   `GFP1` serialized form;
//! * [`PartitionedDatabase`] — splits a transaction stream round-robin
//!   across `N` node partitions, as the evaluation section prescribes.
//!
//! Every scan path is infallible-fast: records stream through a reusable
//! buffer; corruption and truncation surface as [`gar_types::Error`].

pub mod codec;
mod database;
mod flat;
mod memory;
mod multi;
mod partition;

pub use database::PartitionedDatabase;
pub use flat::FlatPartition;
pub use memory::MemoryPartition;
pub use multi::MultiSource;
pub use partition::{DiskPartition, PartitionWriter, ScanIter};

use gar_types::{ItemId, Result};

/// A node-local slice of the transaction database (`D^n` in the paper's
/// notation): something that can be scanned start-to-finish, repeatedly.
pub trait TransactionSource: Send + Sync {
    /// Number of transactions in this partition.
    fn num_transactions(&self) -> usize;

    /// Starts a fresh scan. Each call rewinds to the first transaction.
    fn scan(&self) -> Result<Box<dyn TransactionScan + '_>>;

    /// Total bytes read from this partition so far, across all scans.
    /// Memory partitions report equivalent encoded bytes so NPGM's
    /// fragment-rescan cost stays visible in either mode.
    fn bytes_read(&self) -> u64;

    /// Encoded size of the partition in bytes (equivalent encoded size
    /// for in-memory representations — one full scan reads exactly this).
    fn size_bytes(&self) -> u64;
}

/// A streaming pass over one partition.
///
/// The primary interface is the lending `next_slice`: in-memory partitions
/// hand out borrowed slices with zero copying, and file-backed scans
/// borrow from one internal buffer — either way the pass loop touches no
/// allocator. `next_into` is the copying convenience for callers that
/// need to keep the transaction across iterations.
pub trait TransactionScan {
    /// Borrows the next transaction; the slice is valid until the next
    /// call on this scan. Returns `Ok(None)` on a clean end-of-partition.
    fn next_slice(&mut self) -> Result<Option<&[ItemId]>>;

    /// Reads the next transaction into `buf` (cleared first). Returns
    /// `Ok(false)` on a clean end-of-partition.
    fn next_into(&mut self, buf: &mut Vec<ItemId>) -> Result<bool> {
        buf.clear();
        match self.next_slice()? {
            Some(t) => {
                buf.extend_from_slice(t);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}
