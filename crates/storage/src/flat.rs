//! Flat, zero-copy partitions: all transactions in two contiguous arrays.
//!
//! The record-stream formats ([`crate::DiskPartition`],
//! [`crate::MemoryPartition`]) pay per-transaction overhead on every scan:
//! a decode (disk) or a pointer chase into a separate heap allocation
//! (memory). A mining run scans each partition once *per pass per
//! fragment*, so that overhead multiplies. [`FlatPartition`] stores the
//! whole partition as one offsets array plus one items array — a scan is a
//! pure cursor walk handing out borrowed slices, no decoding, no copying,
//! no allocator traffic, and the items of consecutive transactions are
//! adjacent in cache.
//!
//! `bytes_read` reports *equivalent encoded* bytes (what the record codec
//! would have streamed), exactly like [`crate::MemoryPartition`], so the
//! simulated I/O ledger — and therefore every modeled cost — is identical
//! whichever representation backs the scan.
//!
//! The serialized form (`GFP1`) is the same two arrays prefixed with a
//! small header, so loading a partition is two bulk reads straight into
//! the arrays instead of a record-by-record decode.

use crate::codec;
use crate::{TransactionScan, TransactionSource};
use gar_types::{Error, ItemId, Result};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic prefix of the serialized form: "GFP" + format version 1.
const MAGIC: [u8; 4] = *b"GFP1";

/// A node partition stored as flat offsets + items arrays. Scans lend
/// borrowed slices directly out of the items array.
#[derive(Debug, Default)]
pub struct FlatPartition {
    /// `num_transactions + 1` monotone offsets into `items`.
    offsets: Vec<u32>,
    items: Vec<ItemId>,
    /// Equivalent encoded size (see module docs).
    bytes: u64,
    bytes_read: AtomicU64,
}

impl FlatPartition {
    /// An empty partition, ready for [`FlatPartition::push`].
    pub fn new() -> FlatPartition {
        FlatPartition {
            offsets: vec![0],
            items: Vec::new(),
            bytes: 0,
            bytes_read: AtomicU64::new(0),
        }
    }

    /// Appends one transaction (must be sorted and de-duplicated).
    pub fn push(&mut self, t: &[ItemId]) {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]));
        self.items.extend_from_slice(t);
        debug_assert!(
            u32::try_from(self.items.len()).is_ok(),
            "partition > 4G items"
        );
        self.offsets.push(self.items.len() as u32);
        self.bytes += codec::encoded_len(t.len()) as u64;
    }

    /// Builds a partition from pre-sorted transactions.
    pub fn from_transactions<T: AsRef<[ItemId]>>(
        txns: impl IntoIterator<Item = T>,
    ) -> FlatPartition {
        let mut p = FlatPartition::new();
        for t in txns {
            p.push(t.as_ref());
        }
        p
    }

    /// Copies any [`TransactionSource`] into flat form. The source's
    /// `bytes_read` tally advances by one full scan.
    pub fn from_source(src: &dyn TransactionSource) -> Result<FlatPartition> {
        let mut p = FlatPartition::new();
        let mut scan = src.scan()?;
        while let Some(t) = scan.next_slice()? {
            p.push(t);
        }
        Ok(p)
    }

    /// Equivalent encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// The `i`-th transaction.
    pub fn get(&self, i: usize) -> &[ItemId] {
        &self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Writes the `GFP1` serialized form: header (magic, transaction
    /// count, item count), then the offsets array, then the items array,
    /// all little-endian u32.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| Error::io(format!("creating flat partition {}", path.display()), e))?;
        let mut w = std::io::BufWriter::new(file);
        let ctx = || format!("writing flat partition {}", path.display());
        w.write_all(&MAGIC).map_err(|e| Error::io(ctx(), e))?;
        let ntx = (self.offsets.len() - 1) as u32;
        w.write_all(&ntx.to_le_bytes())
            .map_err(|e| Error::io(ctx(), e))?;
        w.write_all(&(self.items.len() as u32).to_le_bytes())
            .map_err(|e| Error::io(ctx(), e))?;
        for off in &self.offsets {
            w.write_all(&off.to_le_bytes())
                .map_err(|e| Error::io(ctx(), e))?;
        }
        for it in &self.items {
            w.write_all(&it.raw().to_le_bytes())
                .map_err(|e| Error::io(ctx(), e))?;
        }
        w.flush().map_err(|e| Error::io(ctx(), e))
    }

    /// Loads a `GFP1` file: two bulk reads into the flat arrays.
    pub fn open(path: impl AsRef<Path>) -> Result<FlatPartition> {
        let path = path.as_ref();
        let mut file = File::open(path)
            .map_err(|e| Error::io(format!("opening flat partition {}", path.display()), e))?;
        let mut header = [0u8; 12];
        file.read_exact(&mut header)
            .map_err(|e| Error::io(format!("reading flat partition {}", path.display()), e))?;
        if header[..4] != MAGIC {
            return Err(Error::Corrupt(format!(
                "{} is not a GFP1 flat partition",
                path.display()
            )));
        }
        // lint:allow(panic-path): header is a fixed 12-byte array, so
        // the 4-byte range slices cannot fail the conversion.
        let ntx = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        // lint:allow(panic-path): same fixed-width slice as above.
        let nitems = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let offsets = read_u32_array(&mut file, ntx + 1, path)?;
        let items = read_u32_array(&mut file, nitems, path)?;
        let mut trailing = [0u8; 1];
        if file
            .read(&mut trailing)
            .map_err(|e| Error::io(format!("reading flat partition {}", path.display()), e))?
            != 0
        {
            return Err(Error::Corrupt(format!(
                "{} has trailing bytes after the items array",
                path.display()
            )));
        }
        if offsets.first() != Some(&0)
            || offsets.last() != Some(&(nitems as u32))
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(Error::Corrupt(format!(
                "{} has a non-monotone offsets array",
                path.display()
            )));
        }
        let bytes = (4 * ntx + 4 * nitems) as u64;
        Ok(FlatPartition {
            offsets,
            items: items.into_iter().map(ItemId).collect(),
            bytes,
            bytes_read: AtomicU64::new(0),
        })
    }
}

/// Bulk-reads `n` little-endian u32 words.
fn read_u32_array(r: &mut impl Read, n: usize, path: &Path) -> Result<Vec<u32>> {
    let mut raw = vec![0u8; n * 4];
    r.read_exact(&mut raw)
        .map_err(|e| Error::io(format!("reading flat partition {}", path.display()), e))?;
    Ok(raw
        .chunks_exact(4)
        // lint:allow(panic-path): chunks_exact(4) yields only 4-byte
        // chunks, so the conversion cannot fail.
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

impl TransactionSource for FlatPartition {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }

    fn num_transactions(&self) -> usize {
        self.offsets.len() - 1
    }

    fn scan(&self) -> Result<Box<dyn TransactionScan + '_>> {
        Ok(Box::new(FlatScan {
            part: self,
            next: 0,
        }))
    }

    fn bytes_read(&self) -> u64 {
        // relaxed: monotonic I/O tally read for reporting only; scans
        // and readers are never ordered against each other.
        self.bytes_read.load(Ordering::Relaxed)
    }
}

struct FlatScan<'a> {
    part: &'a FlatPartition,
    next: usize,
}

impl TransactionScan for FlatScan<'_> {
    fn next_slice(&mut self) -> Result<Option<&[ItemId]>> {
        if self.next >= self.part.num_transactions() {
            return Ok(None);
        }
        let t = self.part.get(self.next);
        self.part
            .bytes_read
            // relaxed: monotonic I/O tally; see bytes_read().
            .fetch_add(codec::encoded_len(t.len()) as u64, Ordering::Relaxed);
        self.next += 1;
        Ok(Some(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryPartition;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gar-flat-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn scan_round_trips_borrowed() {
        let txns = vec![ids(&[1, 2]), ids(&[]), ids(&[5, 9, 11])];
        let p = FlatPartition::from_transactions(&txns);
        assert_eq!(p.num_transactions(), 3);
        let mut scan = p.scan().unwrap();
        let mut got = Vec::new();
        while let Some(t) = scan.next_slice().unwrap() {
            got.push(t.to_vec());
        }
        assert_eq!(got, txns);
    }

    #[test]
    fn bytes_read_matches_memory_partition() {
        let txns = vec![ids(&[1, 2, 3]), ids(&[7])];
        let flat = FlatPartition::from_transactions(&txns);
        let mem = MemoryPartition::new(txns);
        assert_eq!(flat.size_bytes(), mem.size_bytes());
        let mut buf = Vec::new();
        let mut fs = flat.scan().unwrap();
        let mut ms = mem.scan().unwrap();
        while fs.next_into(&mut buf).unwrap() {}
        while ms.next_into(&mut buf).unwrap() {}
        drop((fs, ms));
        assert_eq!(flat.bytes_read(), mem.bytes_read());
        assert_eq!(flat.bytes_read(), flat.size_bytes());
    }

    #[test]
    fn file_round_trip() {
        let path = tmp("roundtrip.gfp");
        let txns = vec![ids(&[1, 2]), ids(&[]), ids(&[3, 4, 5])];
        let p = FlatPartition::from_transactions(&txns);
        p.write_to(&path).unwrap();
        let re = FlatPartition::open(&path).unwrap();
        assert_eq!(re.num_transactions(), 3);
        assert_eq!(re.size_bytes(), p.size_bytes());
        for i in 0..3 {
            assert_eq!(re.get(i), p.get(i));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic.gfp");
        std::fs::write(&path, b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00").unwrap();
        let err = FlatPartition::open(&path).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("trunc.gfp");
        let p = FlatPartition::from_transactions(&[ids(&[1, 2, 3])]);
        p.write_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert!(FlatPartition::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let path = tmp("trailing.gfp");
        let p = FlatPartition::from_transactions(&[ids(&[4])]);
        p.write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(FlatPartition::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_source_copies_any_partition() {
        let mem = MemoryPartition::new(vec![ids(&[1]), ids(&[2, 3])]);
        let flat = FlatPartition::from_source(&mem).unwrap();
        assert_eq!(flat.num_transactions(), 2);
        assert_eq!(flat.get(1), &ids(&[2, 3])[..]);
        assert_eq!(flat.size_bytes(), mem.size_bytes());
    }
}
