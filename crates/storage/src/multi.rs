//! A composite [`TransactionSource`] over several partitions.
//!
//! Degraded-mode recovery (see `gar-mining`) re-runs a failed cluster
//! pass over `N-1` survivors; each survivor that adopts an orphaned
//! partition scans its own partition *and* the orphan back-to-back.
//! [`MultiSource`] makes that adoption invisible to the mining code: it
//! presents the concatenation of its members as one partition, in member
//! order.

use crate::{TransactionScan, TransactionSource};
use gar_types::{ItemId, Result};

/// The concatenation of several borrowed partitions, scanned in order.
pub struct MultiSource<'a> {
    parts: Vec<&'a dyn TransactionSource>,
}

impl<'a> MultiSource<'a> {
    /// Wraps `parts`; scans yield every transaction of `parts[0]`, then
    /// `parts[1]`, and so on.
    pub fn new(parts: Vec<&'a dyn TransactionSource>) -> MultiSource<'a> {
        MultiSource { parts }
    }
}

impl TransactionSource for MultiSource<'_> {
    fn num_transactions(&self) -> usize {
        self.parts.iter().map(|p| p.num_transactions()).sum()
    }

    fn scan(&self) -> Result<Box<dyn TransactionScan + '_>> {
        Ok(Box::new(MultiScan {
            parts: &self.parts,
            current: None,
            next_part: 0,
            buf: Vec::new(),
        }))
    }

    fn bytes_read(&self) -> u64 {
        self.parts.iter().map(|p| p.bytes_read()).sum()
    }

    fn size_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }
}

/// Chained scan over the members of a [`MultiSource`]. `next_slice` lends
/// from one internal buffer (the member scans' borrows cannot escape the
/// advance loop), `next_into` stays copy-free into the caller's buffer.
struct MultiScan<'a> {
    parts: &'a [&'a dyn TransactionSource],
    current: Option<Box<dyn TransactionScan + 'a>>,
    next_part: usize,
    buf: Vec<ItemId>,
}

impl TransactionScan for MultiScan<'_> {
    fn next_slice(&mut self) -> Result<Option<&[ItemId]>> {
        loop {
            if let Some(scan) = self.current.as_mut() {
                if scan.next_into(&mut self.buf)? {
                    return Ok(Some(&self.buf));
                }
                self.current = None;
            }
            if self.next_part >= self.parts.len() {
                return Ok(None);
            }
            self.current = Some(self.parts[self.next_part].scan()?);
            self.next_part += 1;
        }
    }

    fn next_into(&mut self, buf: &mut Vec<ItemId>) -> Result<bool> {
        loop {
            if let Some(scan) = self.current.as_mut() {
                if scan.next_into(buf)? {
                    return Ok(true);
                }
                self.current = None;
            }
            if self.next_part >= self.parts.len() {
                return Ok(false);
            }
            self.current = Some(self.parts[self.next_part].scan()?);
            self.next_part += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryPartition;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn drain(p: &dyn TransactionSource) -> Vec<Vec<ItemId>> {
        let mut scan = p.scan().unwrap();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while scan.next_into(&mut buf).unwrap() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn concatenates_members_in_order() {
        let a = MemoryPartition::new(vec![ids(&[1]), ids(&[2, 3])]);
        let b = MemoryPartition::new(vec![ids(&[4])]);
        let multi = MultiSource::new(vec![&a, &b]);
        assert_eq!(multi.num_transactions(), 3);
        assert_eq!(drain(&multi), vec![ids(&[1]), ids(&[2, 3]), ids(&[4])]);
    }

    #[test]
    fn rescans_restart_from_the_first_member() {
        let a = MemoryPartition::new(vec![ids(&[1])]);
        let b = MemoryPartition::new(vec![ids(&[2])]);
        let multi = MultiSource::new(vec![&a, &b]);
        assert_eq!(drain(&multi).len(), 2);
        assert_eq!(drain(&multi).len(), 2, "scan() must rewind");
        assert!(multi.bytes_read() > 0);
    }

    #[test]
    fn empty_members_are_skipped() {
        let a = MemoryPartition::new(vec![]);
        let b = MemoryPartition::new(vec![ids(&[7])]);
        let c = MemoryPartition::new(vec![]);
        let multi = MultiSource::new(vec![&a, &b, &c]);
        assert_eq!(drain(&multi), vec![ids(&[7])]);
        let none = MultiSource::new(vec![]);
        assert_eq!(none.num_transactions(), 0);
        assert!(drain(&none).is_empty());
    }
}
