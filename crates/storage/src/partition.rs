//! On-disk partitions (one per simulated node).

use crate::codec;
use crate::{TransactionScan, TransactionSource};
use gar_types::{Error, ItemId, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Streams transaction records into a partition file.
pub struct PartitionWriter {
    path: PathBuf,
    out: BufWriter<File>,
    num_transactions: usize,
    bytes: u64,
}

impl PartitionWriter {
    /// Creates (truncating) the partition file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<PartitionWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)
            .map_err(|e| Error::io(format!("creating partition {}", path.display()), e))?;
        Ok(PartitionWriter {
            path,
            out: BufWriter::new(file),
            num_transactions: 0,
            bytes: 0,
        })
    }

    /// Appends one transaction (must be sorted and de-duplicated).
    pub fn write(&mut self, items: &[ItemId]) -> Result<()> {
        codec::write_transaction(&mut self.out, items)?;
        self.num_transactions += 1;
        self.bytes += codec::encoded_len(items.len()) as u64;
        Ok(())
    }

    /// Flushes and seals the partition, returning the readable handle.
    pub fn finish(mut self) -> Result<DiskPartition> {
        self.out
            .flush()
            .map_err(|e| Error::io(format!("flushing partition {}", self.path.display()), e))?;
        Ok(DiskPartition {
            path: self.path,
            num_transactions: self.num_transactions,
            bytes: self.bytes,
            bytes_read: AtomicU64::new(0),
        })
    }
}

/// A sealed, scannable partition file — the simulated node-local disk
/// (`D^n`). Tracks cumulative bytes read so repeated scans (NPGM fragment
/// loops) show up in the I/O ledger.
#[derive(Debug)]
pub struct DiskPartition {
    path: PathBuf,
    num_transactions: usize,
    bytes: u64,
    bytes_read: AtomicU64,
}

impl DiskPartition {
    /// Opens an existing partition file, counting its records up front.
    pub fn open(path: impl AsRef<Path>) -> Result<DiskPartition> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| Error::io(format!("opening partition {}", path.display()), e))?;
        let mut reader = BufReader::new(file);
        let mut buf = Vec::new();
        let mut num_transactions = 0;
        let mut bytes = 0u64;
        while let Some(n) = codec::read_transaction(&mut reader, &mut buf)? {
            num_transactions += 1;
            bytes += n as u64;
        }
        Ok(DiskPartition {
            path,
            num_transactions,
            bytes,
            bytes_read: AtomicU64::new(0),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Encoded size of the partition in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

impl TransactionSource for DiskPartition {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }

    fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    fn scan(&self) -> Result<Box<dyn TransactionScan + '_>> {
        let file = File::open(&self.path)
            .map_err(|e| Error::io(format!("re-opening partition {}", self.path.display()), e))?;
        Ok(Box::new(ScanIter {
            reader: BufReader::with_capacity(256 * 1024, file),
            bytes_read: &self.bytes_read,
            buf: Vec::new(),
        }))
    }

    fn bytes_read(&self) -> u64 {
        // relaxed: monotonic I/O tally read for reporting only; scans
        // and readers are never ordered against each other.
        self.bytes_read.load(Ordering::Relaxed)
    }
}

/// One sequential pass over a [`DiskPartition`]. Decodes through one
/// internal buffer, so `next_slice` lends without allocating.
pub struct ScanIter<'a> {
    reader: BufReader<File>,
    bytes_read: &'a AtomicU64,
    buf: Vec<ItemId>,
}

impl TransactionScan for ScanIter<'_> {
    fn next_slice(&mut self) -> Result<Option<&[ItemId]>> {
        match codec::read_transaction(&mut self.reader, &mut self.buf)? {
            Some(n) => {
                // relaxed: monotonic I/O tally; see bytes_read().
                self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                Ok(Some(&self.buf))
            }
            None => Ok(None),
        }
    }

    fn next_into(&mut self, buf: &mut Vec<ItemId>) -> Result<bool> {
        match codec::read_transaction(&mut self.reader, buf)? {
            Some(n) => {
                // relaxed: monotonic I/O tally; see bytes_read().
                self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gar-storage-test-{}-{}", std::process::id(), name));
        p
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn write_then_scan_round_trips() {
        let path = tmp("roundtrip");
        let mut w = PartitionWriter::create(&path).unwrap();
        let txns = vec![ids(&[1, 2]), ids(&[7]), ids(&[3, 4, 5])];
        for t in &txns {
            w.write(t).unwrap();
        }
        let p = w.finish().unwrap();
        assert_eq!(p.num_transactions(), 3);

        let mut scan = p.scan().unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while scan.next_into(&mut buf).unwrap() {
            got.push(buf.clone());
        }
        assert_eq!(got, txns);
        drop(scan);
        assert_eq!(p.bytes_read(), p.size_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_scans_accumulate_bytes_read() {
        let path = tmp("rescan");
        let mut w = PartitionWriter::create(&path).unwrap();
        for i in 0..10u32 {
            w.write(&ids(&[i, i + 100])).unwrap();
        }
        let p = w.finish().unwrap();
        let mut buf = Vec::new();
        for _ in 0..3 {
            let mut scan = p.scan().unwrap();
            while scan.next_into(&mut buf).unwrap() {}
        }
        assert_eq!(p.bytes_read(), 3 * p.size_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_recounts_records() {
        let path = tmp("open");
        let mut w = PartitionWriter::create(&path).unwrap();
        for i in 0..5u32 {
            w.write(&ids(&[i])).unwrap();
        }
        let sealed = w.finish().unwrap();
        let reopened = DiskPartition::open(&path).unwrap();
        assert_eq!(reopened.num_transactions(), 5);
        assert_eq!(reopened.size_bytes(), sealed.size_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_fails_with_context() {
        let err = DiskPartition::open("/nonexistent/gar-part").unwrap_err();
        assert!(err.to_string().contains("opening partition"), "{err}");
    }

    #[test]
    fn corrupt_file_detected_on_open() {
        let path = tmp("corrupt");
        std::fs::write(&path, [5u8, 0, 0, 0, 1, 0]).unwrap(); // claims 5 items, has 1.5
        let err = DiskPartition::open(&path).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
