//! Byte-level determinism of the mined rule report.
//!
//! The `hash-order` rule in `cargo xtask lint` bans hash-map iteration
//! from feeding report construction; this test is the dynamic half of
//! that guarantee. A rendered report must be byte-identical between two
//! same-seed runs (no ambient nondeterminism: thread scheduling, hash
//! seeds, allocation addresses) and across node counts (the cluster
//! decomposition must not leak into the output).

use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::parallel::mine_parallel;
use gar_mining::parallel::rules::derive_rules_parallel;
use gar_mining::{Algorithm, MiningParams};
use gar_obs::{MetricsSnapshot, Obs};
use gar_storage::{FlatPartition, PartitionedDatabase, TransactionSource};
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;
use std::fmt::Write as _;

const BIG_MEMORY: u64 = 1 << 30;

fn dataset(seed: u64) -> (Taxonomy, Vec<Vec<ItemId>>) {
    let spec = DatasetSpec {
        name: "determinism".into(),
        num_transactions: 350,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 40,
        num_items: 200,
        num_roots: 6,
        fanout: 4.0,
        seed,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

/// One full mining + rule-derivation run, rendered to the same textual
/// report shape the CLI emits: every large itemset with its support
/// count, then every rule via its `Display` impl.
fn rendered_report(alg: Algorithm, seed: u64, num_nodes: usize) -> String {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(num_nodes, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(num_nodes, BIG_MEMORY);
    let params = MiningParams::with_min_support(0.05);

    let report = mine_parallel(alg, &db, &tax, &params, &cluster).unwrap();
    let rules = derive_rules_parallel(&report.output, 0.5, Some(&tax), &cluster).unwrap();

    let mut out = String::new();
    for pass in &report.output.passes {
        writeln!(out, "pass k={}", pass.k).unwrap();
        for (set, count) in &pass.itemsets {
            writeln!(out, "  {set} x{count}").unwrap();
        }
    }
    writeln!(out, "rules ({})", rules.len()).unwrap();
    for rule in &rules {
        writeln!(out, "  {rule}").unwrap();
    }
    out
}

/// One instrumented run, rendered to the exact bytes `gar-cli mine
/// --metrics-out` would write.
fn rendered_metrics(alg: Algorithm, seed: u64, num_nodes: usize) -> String {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(num_nodes, txns.into_iter()).unwrap();
    let obs = Obs::enabled();
    let cluster = ClusterConfig::new(num_nodes, BIG_MEMORY).with_obs(obs.clone());
    let params = MiningParams::with_min_support(0.05);
    mine_parallel(alg, &db, &tax, &params, &cluster).unwrap();
    obs.metrics().to_json()
}

/// Same round-robin split as `build_in_memory`, but every partition is
/// round-tripped through the `GFP1` on-disk flat format first: written
/// with `FlatPartition::write_to`, reopened with `FlatPartition::open`.
/// `open` loads the file fully, so the temp files can be deleted before
/// mining starts.
fn persisted_db(num_nodes: usize, txns: &[Vec<ItemId>], tag: &str) -> PartitionedDatabase {
    let dir = std::env::temp_dir().join(format!(
        "gar-determinism-{}-{tag}-{num_nodes}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let mut buckets: Vec<FlatPartition> = (0..num_nodes).map(|_| FlatPartition::new()).collect();
    for (i, t) in txns.iter().enumerate() {
        buckets[i % num_nodes].push(t);
    }
    let parts: Vec<Box<dyn TransactionSource>> = buckets
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let path = dir.join(format!("part-{i}.gfp1"));
            b.write_to(&path).unwrap();
            Box::new(FlatPartition::open(&path).unwrap()) as Box<dyn TransactionSource>
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    PartitionedDatabase::from_parts(parts)
}

/// `rendered_report`, except the partitions went through GFP1 disk files.
fn rendered_report_persisted(alg: Algorithm, seed: u64, num_nodes: usize) -> String {
    let (tax, txns) = dataset(seed);
    let db = persisted_db(num_nodes, &txns, "report");
    let cluster = ClusterConfig::new(num_nodes, BIG_MEMORY);
    let params = MiningParams::with_min_support(0.05);

    let report = mine_parallel(alg, &db, &tax, &params, &cluster).unwrap();
    let rules = derive_rules_parallel(&report.output, 0.5, Some(&tax), &cluster).unwrap();

    let mut out = String::new();
    for pass in &report.output.passes {
        writeln!(out, "pass k={}", pass.k).unwrap();
        for (set, count) in &pass.itemsets {
            writeln!(out, "  {set} x{count}").unwrap();
        }
    }
    writeln!(out, "rules ({})", rules.len()).unwrap();
    for rule in &rules {
        writeln!(out, "  {rule}").unwrap();
    }
    out
}

/// Same seed, same node count, run twice → byte-identical reports.
#[test]
fn same_seed_reruns_are_byte_identical() {
    for alg in [Algorithm::Hpgm, Algorithm::HHpgmTgd] {
        let a = rendered_report(alg, 7, 2);
        let b = rendered_report(alg, 7, 2);
        assert!(a.contains("rules ("), "report looks empty:\n{a}");
        assert_eq!(a, b, "{alg}: two same-seed runs diverged");
    }
}

/// `metrics.json` carries counters and histograms only — no
/// timestamps — so two same-seed instrumented runs must also be
/// byte-identical. (The chrome trace is wall-clock and excluded.)
#[test]
fn same_seed_metrics_are_byte_identical() {
    for alg in [Algorithm::Hpgm, Algorithm::HHpgmFgd] {
        let a = rendered_metrics(alg, 7, 2);
        let b = rendered_metrics(alg, 7, 2);
        assert!(
            a.contains("cluster.bytes_sent{"),
            "{alg}: metrics look empty:\n{a}"
        );
        assert_eq!(a, b, "{alg}: two same-seed runs' metrics diverged");
        // And the bytes survive the codec round trip.
        let snap = MetricsSnapshot::from_json(&a).unwrap();
        assert_eq!(snap.to_json(), a, "{alg}: metrics round trip");
    }
}

/// The cluster decomposition must not leak into the report: 1, 2 and 4
/// nodes all produce the same bytes for every parallel algorithm.
#[test]
fn node_count_does_not_change_the_report() {
    for alg in Algorithm::parallel_all() {
        let one = rendered_report(alg, 11, 1);
        assert!(
            one.lines().count() > 10,
            "{alg}: report suspiciously small:\n{one}"
        );
        for nodes in [2, 4] {
            let many = rendered_report(alg, 11, nodes);
            assert_eq!(
                one, many,
                "{alg}: report differs between 1 and {nodes} nodes"
            );
        }
    }
}

/// The on-disk GFP1 flat format must be invisible too: partitions
/// round-tripped through disk files produce the same bytes as the
/// in-memory build, at every node count, for every parallel algorithm.
#[test]
fn persisted_flat_partitions_do_not_change_the_report() {
    for alg in Algorithm::parallel_all() {
        let reference = rendered_report(alg, 11, 1);
        for nodes in [1, 2, 4] {
            let persisted = rendered_report_persisted(alg, 11, nodes);
            assert_eq!(
                reference, persisted,
                "{alg}: persisted GFP1 report differs at {nodes} nodes"
            );
        }
    }
}
