//! The paper's headline *shapes*, asserted as tests (the bench binaries
//! only print them): duplication flattens the probe distribution, and
//! the finest grain flattens it most.

use gar_cluster::stats::skew_summary;
use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::parallel::mine_parallel;
use gar_mining::{Algorithm, MiningParams};
use gar_storage::PartitionedDatabase;

fn skewed_workload() -> (gar_taxonomy::Taxonomy, PartitionedDatabase) {
    // Few patterns over a moderately deep forest: exponential pattern
    // weights make a couple of trees hot, which is the skew §3.4 targets.
    let spec = DatasetSpec {
        name: "skewed".into(),
        num_transactions: 8_000,
        avg_transaction_size: 8.0,
        avg_pattern_size: 4.0,
        num_patterns: 40,
        num_items: 600,
        num_roots: 12,
        fanout: 4.0,
        seed: 42,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    let tax = g.into_taxonomy();
    let db = PartitionedDatabase::build_in_memory(8, txns.into_iter()).unwrap();
    (tax, db)
}

fn probe_cv(
    alg: Algorithm,
    tax: &gar_taxonomy::Taxonomy,
    db: &PartitionedDatabase,
    memory: u64,
) -> f64 {
    let params = MiningParams::with_min_support(0.008).max_pass(2);
    let cluster = ClusterConfig::new(8, memory);
    let rep = mine_parallel(alg, db, tax, &params, &cluster).unwrap();
    skew_summary(&rep.pass(2).expect("pass 2").probes_per_node()).cv
}

#[test]
fn duplication_flattens_probe_distribution() {
    let (tax, db) = skewed_workload();
    let memory = 2 * 1024 * 1024; // ample free space for duplication
    let hhpgm = probe_cv(Algorithm::HHpgm, &tax, &db, memory);
    let fgd = probe_cv(Algorithm::HHpgmFgd, &tax, &db, memory);
    let pgd = probe_cv(Algorithm::HHpgmPgd, &tax, &db, memory);
    assert!(
        fgd < hhpgm,
        "FGD probe cv {fgd:.3} should be below H-HPGM's {hhpgm:.3}"
    );
    assert!(
        pgd < hhpgm,
        "PGD probe cv {pgd:.3} should be below H-HPGM's {hhpgm:.3}"
    );
    // The finest grain ends up (weakly) flattest.
    assert!(fgd <= pgd + 0.05, "FGD {fgd:.3} vs PGD {pgd:.3}");
}

#[test]
fn fgd_duplicates_replicate_hot_candidates() {
    let (tax, db) = skewed_workload();
    let params = MiningParams::with_min_support(0.008).max_pass(2);
    let cluster = ClusterConfig::new(8, 2 * 1024 * 1024);
    let rep = mine_parallel(Algorithm::HHpgmFgd, &db, &tax, &params, &cluster).unwrap();
    let p2 = rep.pass(2).expect("pass 2");
    assert!(p2.num_duplicated > 0);
    // Duplicated counting happens on every node's own data, so every
    // node must show probe work even if it owns few partitioned combos.
    assert!(p2.node_deltas.iter().all(|d| d.hash_probes > 0));
}

#[test]
fn modeled_time_beats_hhpgm_under_skew_with_free_memory() {
    let (tax, db) = skewed_workload();
    let params = MiningParams::with_min_support(0.008).max_pass(2);
    let memory = 2 * 1024 * 1024;
    let run = |alg| {
        let cluster = ClusterConfig::new(8, memory);
        mine_parallel(alg, &db, &tax, &params, &cluster)
            .unwrap()
            .pass(2)
            .unwrap()
            .modeled_seconds
    };
    let hhpgm = run(Algorithm::HHpgm);
    let fgd = run(Algorithm::HHpgmFgd);
    assert!(
        fgd < hhpgm * 1.05,
        "FGD {fgd:.3}s should not lose to H-HPGM {hhpgm:.3}s under skew"
    );
}
