//! Seeded chaos soak: the fault-tolerance headline claim.
//!
//! For any seeded fault schedule the runtime *tolerates* (duplicated,
//! delayed, or transiently-failing I/O; a node death recovered in
//! degraded mode), the final mining output must be **byte-identical** to
//! the fault-free run. Faults the runtime cannot absorb must surface as
//! the classified error (`Corrupt`, `Timeout`, `NodeFailure`) — never a
//! wrong answer, never a deadlock.
//!
//! Every failure message prints the `FaultPlan::render()` spec so the
//! exact schedule can be replayed with `gar-cli mine --faults <spec>`.
//! `GAR_CHAOS_ITERS` scales the soak (default 3 seeds per algorithm;
//! `cargo xtask chaos` raises it).

use gar_cluster::{ClusterConfig, FaultOp, FaultPlan};
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::parallel::{mine_parallel, mine_parallel_with, MineOptions};
use gar_mining::{Algorithm, MiningOutput, MiningParams};
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::{Error, ItemId};
use std::fmt::Write as _;
use std::time::Duration;

const BIG_MEMORY: u64 = 1 << 30;
const NODES: usize = 3;

fn dataset() -> (Taxonomy, Vec<Vec<ItemId>>) {
    let spec = DatasetSpec {
        name: "chaos".into(),
        num_transactions: 300,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 30,
        num_items: 150,
        num_roots: 5,
        fanout: 4.0,
        seed: 1998,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

fn db(tax_txns: &(Taxonomy, Vec<Vec<ItemId>>)) -> PartitionedDatabase {
    PartitionedDatabase::build_in_memory(NODES, tax_txns.1.iter().cloned()).unwrap()
}

fn params() -> MiningParams {
    MiningParams::with_min_support(0.05)
}

/// Renders only the *logical* output — every large itemset with its
/// global support count. Cost-model numbers and per-node ledgers
/// legitimately differ under faults; the answer must not.
fn rendered(output: &MiningOutput) -> String {
    let mut out = String::new();
    for pass in &output.passes {
        writeln!(out, "pass k={}", pass.k).unwrap();
        for (set, count) in &pass.itemsets {
            writeln!(out, "  {set} x{count}").unwrap();
        }
    }
    out
}

fn baseline(alg: Algorithm) -> String {
    let data = dataset();
    let db = db(&data);
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY);
    let report = mine_parallel(alg, &db, &data.0, &params(), &cluster).unwrap();
    let s = rendered(&report.output);
    assert!(s.lines().count() > 5, "baseline suspiciously small:\n{s}");
    s
}

fn soak_iters() -> u64 {
    std::env::var("GAR_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Duplication, delay, and transient scan errors are absorbed invisibly:
/// the output is byte-identical to the fault-free run, for every seed.
#[test]
fn tolerated_fault_schedules_preserve_the_output() {
    let data = dataset();
    for alg in [Algorithm::Hpgm, Algorithm::HHpgmFgd, Algorithm::Npgm] {
        let clean = baseline(alg);
        let mut injected_total = 0u64;
        for seed in 0..soak_iters() {
            let plan = FaultPlan {
                p_dup: 0.05,
                p_delay: 0.02,
                p_scan_error: 0.05,
                delay: Duration::from_millis(1),
                ..FaultPlan::with_seed(seed)
            };
            let spec = plan.render();
            let db = db(&data);
            let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
            let report = mine_parallel_with(
                alg,
                &db,
                &data.0,
                &params(),
                &cluster,
                &MineOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{alg} under `{spec}` failed: {e}"));
            assert_eq!(
                rendered(&report.output),
                clean,
                "{alg}: output diverged under tolerated faults `{spec}`"
            );
            assert!(
                report.degraded.is_empty(),
                "{alg}: `{spec}` should not need degraded mode"
            );
            injected_total += report
                .node_totals
                .iter()
                .map(|s| s.faults_injected)
                .sum::<u64>();
        }
        assert!(
            injected_total > 0,
            "{alg}: no seed injected anything — soak is vacuous"
        );
    }
}

/// A node death mid-run is recovered in degraded mode: the survivors
/// adopt the dead node's partition, completed passes are restored from
/// the in-memory checkpoint, and the answer is byte-identical.
#[test]
fn node_death_recovers_in_degraded_mode_with_identical_output() {
    let data = dataset();
    let clean = baseline(Algorithm::HHpgmFgd);
    let plan = FaultPlan::with_seed(5).schedule(1, 2, FaultOp::Panic);
    let spec = plan.render();
    let db = db(&data);
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
    let opts = MineOptions {
        max_node_failures: 1,
        ..MineOptions::default()
    };
    let report = mine_parallel_with(
        Algorithm::HHpgmFgd,
        &db,
        &data.0,
        &params(),
        &cluster,
        &opts,
    )
    .unwrap_or_else(|e| panic!("recovery under `{spec}` failed: {e}"));
    assert_eq!(
        rendered(&report.output),
        clean,
        "degraded-mode output diverged under `{spec}`"
    );
    assert_eq!(report.degraded.len(), 1, "expected one degraded-mode note");
    assert!(
        report.degraded[0].contains("node 1"),
        "note should name the dead node: {}",
        report.degraded[0]
    );
    assert!(
        report.pass_reports.iter().any(|p| p.restored),
        "pass 1 should have been restored from the checkpoint"
    );
    // The completing attempt ran on the survivors.
    assert_eq!(report.num_nodes, NODES - 1);
}

/// Without a failure budget, the same schedule is a hard error carrying
/// the failed node — not a hang, not a wrong answer.
#[test]
fn node_death_without_budget_is_a_node_failure() {
    let data = dataset();
    let plan = FaultPlan::with_seed(6).schedule(1, 2, FaultOp::Panic);
    let spec = plan.render();
    let db = db(&data);
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
    let err = mine_parallel_with(
        Algorithm::HHpgmFgd,
        &db,
        &data.0,
        &params(),
        &cluster,
        &MineOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::NodeFailure { node: 1, .. }),
        "`{spec}` should fail naming node 1, got: {err}"
    );
}

/// Payload corruption is detected by the envelope checksum and
/// classified as `Corrupt` — it must never count toward the answer.
#[test]
fn corrupted_traffic_is_detected_not_miscounted() {
    let data = dataset();
    let plan = FaultPlan::with_seed(7).schedule(0, 2, FaultOp::Corrupt);
    let spec = plan.render();
    let db = db(&data);
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY).with_faults(plan);
    let err = mine_parallel_with(
        Algorithm::Hpgm,
        &db,
        &data.0,
        &params(),
        &cluster,
        &MineOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::Corrupt(_)),
        "`{spec}` should surface as Corrupt, got: {err}"
    );
}

/// A hung node is detected by its peers' deadline as a `Timeout` well
/// before the hang resolves — the run never deadlocks.
#[test]
fn hung_node_is_detected_by_deadline() {
    let data = dataset();
    let mut plan = FaultPlan::with_seed(8).schedule(1, 2, FaultOp::Hang);
    plan.hang = Duration::from_millis(400);
    let spec = plan.render();
    let db = db(&data);
    let cluster = ClusterConfig::new(NODES, BIG_MEMORY)
        .with_faults(plan)
        .with_deadline(Duration::from_millis(100));
    let started = std::time::Instant::now();
    let err = mine_parallel_with(
        Algorithm::HHpgmFgd,
        &db,
        &data.0,
        &params(),
        &cluster,
        &MineOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::Timeout { .. }),
        "`{spec}` should surface as Timeout, got: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline detection took {:?} — looks like a deadlock",
        started.elapsed()
    );
}

/// `mine --resume` round trip: a checkpointed run restarts from disk,
/// replays the completed passes without redoing their work, and produces
/// the identical answer.
#[test]
fn resume_from_disk_checkpoint_is_byte_identical() {
    let data = dataset();
    let clean = baseline(Algorithm::HHpgmTgd);
    let dir = std::env::temp_dir().join(format!("gar-chaos-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let opts = MineOptions {
        checkpoint_dir: Some(dir.clone()),
        ..MineOptions::default()
    };
    let first = mine_parallel_with(
        Algorithm::HHpgmTgd,
        &db(&data),
        &data.0,
        &params(),
        &ClusterConfig::new(NODES, BIG_MEMORY),
        &opts,
    )
    .unwrap();
    assert_eq!(rendered(&first.output), clean);

    // Resuming an already-complete run replays every stored pass.
    let opts = MineOptions {
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        ..MineOptions::default()
    };
    let resumed = mine_parallel_with(
        Algorithm::HHpgmTgd,
        &db(&data),
        &data.0,
        &params(),
        &ClusterConfig::new(NODES, BIG_MEMORY),
        &opts,
    )
    .unwrap();
    assert_eq!(
        rendered(&resumed.output),
        clean,
        "resumed output diverged from the fault-free run"
    );
    let restored = resumed.pass_reports.iter().filter(|p| p.restored).count();
    assert!(restored > 0, "resume replayed nothing");
    for p in resumed.pass_reports.iter().filter(|p| p.restored) {
        assert!(
            p.node_deltas.iter().all(|d| d.scan_passes == 0),
            "restored pass {} redid disk work",
            p.k
        );
    }

    // Resuming under a different algorithm must be refused, not mixed.
    let err = mine_parallel_with(
        Algorithm::Hpgm,
        &db(&data),
        &data.0,
        &params(),
        &ClusterConfig::new(NODES, BIG_MEMORY),
        &opts,
    )
    .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig(_)), "got: {err}");

    // A truncated checkpoint falls back to `.prev` (or a cold start) —
    // resume still yields the right answer.
    let ckpt = dir.join("mining.ckpt");
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    let after_damage = mine_parallel_with(
        Algorithm::HHpgmTgd,
        &db(&data),
        &data.0,
        &params(),
        &ClusterConfig::new(NODES, BIG_MEMORY),
        &opts,
    )
    .unwrap();
    assert_eq!(
        rendered(&after_damage.output),
        clean,
        "resume after checkpoint damage diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}
