//! Reconciliation between the observability layer and the cluster's
//! `NodeStats` ledgers.
//!
//! The obs counters are charged at the same sites as the ledgers, so a
//! full `mine_parallel` run must satisfy, for every algorithm and node
//! count:
//!
//! * **link conservation** — what node `a` records as sent to `b` is
//!   exactly what `b` records as received from `a`;
//! * **ledger agreement** — each node's ledger totals equal the sum of
//!   its per-link `cluster.*` counters plus its synthetic `collective.*`
//!   charges (all-reduce / broadcast traffic is modeled, not routed
//!   through `send`, and the obs layer mirrors that split);
//! * **I/O agreement** — `scan.bytes` / `scan.passes` sum to the
//!   ledger's `io_bytes` / `scan_passes`;
//! * **pass agreement** — `pass.candidates` / `pass.large` match the
//!   assembled report on every node, and the per-pass large counts tie
//!   back to what the sequential Cumulate oracle mines from the same
//!   data.

use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::parallel::mine_parallel;
use gar_mining::sequential::cumulate;
use gar_mining::{Algorithm, MiningParams, ParallelReport};
use gar_obs::{MetricsSnapshot, Obs};
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;

const BIG_MEMORY: u64 = 1 << 30;
const MINSUP: f64 = 0.05;

fn dataset(seed: u64) -> (Taxonomy, Vec<Vec<ItemId>>) {
    let spec = DatasetSpec {
        name: "obs-reconcile".into(),
        num_transactions: 350,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 40,
        num_items: 200,
        num_roots: 6,
        fanout: 4.0,
        seed,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

fn run_observed(alg: Algorithm, seed: u64, nodes: usize) -> (ParallelReport, MetricsSnapshot) {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(nodes, txns.into_iter()).unwrap();
    let obs = Obs::enabled();
    let cluster = ClusterConfig::new(nodes, BIG_MEMORY).with_obs(obs.clone());
    let params = MiningParams::with_min_support(MINSUP);
    let report = mine_parallel(alg, &db, &tax, &params, &cluster)
        .unwrap_or_else(|e| panic!("{alg} @ {nodes} nodes failed: {e}"));
    (report, obs.metrics())
}

/// What the sequential oracle mines from the same transactions.
fn cumulate_pass_larges(seed: u64) -> Vec<(usize, usize)> {
    let (tax, txns) = dataset(seed);
    let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
    let params = MiningParams::with_min_support(MINSUP);
    let output = cumulate(db.partition(0), &tax, &params).unwrap();
    output
        .passes
        .iter()
        .map(|p| (p.k, p.itemsets.len()))
        .collect()
}

#[test]
fn metrics_reconcile_with_node_stats_for_every_algorithm() {
    let oracle = cumulate_pass_larges(13);
    assert!(oracle.len() >= 2, "oracle mined too little: {oracle:?}");

    for alg in Algorithm::parallel_all() {
        for nodes in [1usize, 4, 8] {
            let (report, m) = run_observed(alg, 13, nodes);
            let ctxt = format!("{alg} @ {nodes} nodes");

            // Link conservation: sent(a -> b) == received(b <- a).
            for a in 0..nodes {
                for b in 0..nodes {
                    for what in ["messages", "bytes"] {
                        let sent = m.counter(&format!("cluster.{what}_sent{{node={a},peer={b}}}"));
                        let recv =
                            m.counter(&format!("cluster.{what}_received{{node={b},peer={a}}}"));
                        assert_eq!(sent, recv, "{ctxt}: {what} {a}->{b} not conserved");
                    }
                }
            }

            // Ledger agreement: per-node totals = link sums + collective
            // charges, for all four directions/quantities.
            for n in 0..nodes {
                let ledger = &report.node_totals[n];
                for (what, total) in [
                    ("messages_sent", ledger.messages_sent),
                    ("bytes_sent", ledger.bytes_sent),
                    ("messages_received", ledger.messages_received),
                    ("bytes_received", ledger.bytes_received),
                ] {
                    let links = m.sum_prefix(&format!("cluster.{what}{{node={n},peer="));
                    let coll = m.counter(&format!("collective.{what}{{node={n}}}"));
                    assert_eq!(
                        links + coll,
                        total,
                        "{ctxt}: node {n} {what}: links {links} + collective {coll} != ledger {total}"
                    );
                }

                // I/O agreement (sum over passes; the key prefix stops at
                // `pass=` so `node=1` cannot match `node=10`).
                let scan_bytes = m.sum_prefix(&format!("scan.bytes{{node={n},pass="));
                assert_eq!(scan_bytes, ledger.io_bytes, "{ctxt}: node {n} io_bytes");
                let scan_passes = m.sum_prefix(&format!("scan.passes{{node={n},pass="));
                assert_eq!(
                    scan_passes, ledger.scan_passes,
                    "{ctxt}: node {n} scan_passes"
                );
            }

            // Pass agreement: the report's per-pass candidate and large
            // counts are what every node recorded.
            for p in &report.pass_reports {
                for n in 0..nodes {
                    let cands = m.counter(&format!("pass.candidates{{node={n},pass={}}}", p.k));
                    assert_eq!(
                        cands, p.num_candidates as u64,
                        "{ctxt}: pass {} candidates on node {n}",
                        p.k
                    );
                    let large = m.counter(&format!("pass.large{{node={n},pass={}}}", p.k));
                    assert_eq!(
                        large, p.num_large as u64,
                        "{ctxt}: pass {} large on node {n}",
                        p.k
                    );
                }
            }

            // Oracle agreement: the observed large counts are the
            // sequential Cumulate's, pass for pass.
            for &(k, expected) in &oracle {
                let large = m.counter(&format!("pass.large{{node=0,pass={k}}}"));
                assert_eq!(
                    large, expected as u64,
                    "{ctxt}: pass {k} vs Cumulate oracle"
                );
            }

            // The counter-structure probe tallies must be live (the
            // default counter is one of the two kinds).
            let probes =
                m.sum_prefix("counter.hashmap.probes{") + m.sum_prefix("counter.hashtree.probes{");
            assert!(probes > 0, "{ctxt}: no counter probes recorded");
        }
    }
}

/// A disabled handle must record nothing — the zero-overhead contract.
#[test]
fn disabled_obs_records_nothing() {
    let (tax, txns) = dataset(13);
    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    let obs = Obs::disabled();
    let cluster = ClusterConfig::new(4, BIG_MEMORY).with_obs(obs.clone());
    let params = MiningParams::with_min_support(MINSUP);
    mine_parallel(Algorithm::HHpgmFgd, &db, &tax, &params, &cluster).unwrap();
    let m = obs.metrics();
    assert!(m.counters.is_empty());
    assert!(m.histograms.is_empty());
    assert_eq!(
        obs.chrome_trace_json(),
        r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#
    );
}
