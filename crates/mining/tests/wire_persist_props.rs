//! Property tests for the message encodings and the persistence format:
//! arbitrary values round-trip exactly, and random corruption never
//! panics (it errors or yields a decoded value, but must not crash).

use gar_mining::params::Algorithm;
use gar_mining::persist::{load_output, save_output};
use gar_mining::report::{LargePass, MiningOutput};
use gar_mining::wire;
use gar_types::{ItemId, Itemset};
use proptest::prelude::*;

fn arb_itemsets(k: usize) -> impl Strategy<Value = Vec<(Itemset, u64)>> {
    proptest::collection::btree_map(
        proptest::collection::btree_set(0u32..10_000, k..=k),
        proptest::num::u64::ANY,
        0..30,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(s, c)| {
                (
                    Itemset::from_unsorted(s.into_iter().map(ItemId).collect()),
                    c,
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn counted_lists_round_trip(sets in arb_itemsets(3)) {
        let encoded = wire::encode_counted(3, &sets);
        prop_assert_eq!(wire::decode_counted(&encoded).unwrap(), sets);
    }

    #[test]
    fn item_lists_round_trip(lists in proptest::collection::vec(
        proptest::collection::vec(0u32..1_000_000, 0..20), 0..20))
    {
        let mut batch = wire::ItemListBatch::new();
        let lists: Vec<Vec<ItemId>> = lists
            .into_iter()
            .map(|l| l.into_iter().map(ItemId).collect())
            .collect();
        for l in &lists {
            batch.push(l);
        }
        let payload = batch.take();
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        wire::for_each_item_list(&payload, &mut scratch, |l| {
            got.push(l.to_vec());
            Ok(())
        })
        .unwrap();
        prop_assert_eq!(got, lists);
    }

    #[test]
    fn corrupted_counted_lists_never_panic(
        sets in arb_itemsets(2),
        cut in 0usize..200,
        flip in 0usize..200,
    ) {
        let encoded = wire::encode_counted(2, &sets);
        if encoded.is_empty() {
            return Ok(());
        }
        // Truncation.
        let cut = cut % encoded.len();
        let _ = wire::decode_counted(&encoded[..cut]);
        // Bit flip.
        let mut mutated = encoded.to_vec();
        let at = flip % mutated.len();
        mutated[at] ^= 0x55;
        let _ = wire::decode_counted(&mutated);
    }

    #[test]
    fn outputs_round_trip_via_disk(
        l1 in arb_itemsets(1),
        l2 in arb_itemsets(2),
        n in 1u64..1_000_000,
        thresh in 1u64..1_000,
    ) {
        let mut passes = Vec::new();
        if !l1.is_empty() {
            passes.push(LargePass { k: 1, itemsets: l1 });
        }
        if !l2.is_empty() {
            passes.push(LargePass { k: 2, itemsets: l2 });
        }
        let out = MiningOutput {
            algorithm: Algorithm::HHpgmTgd,
            num_transactions: n,
            min_support_count: thresh,
            passes,
        };
        let path = std::env::temp_dir().join(format!(
            "gar-prop-{}-{n}-{thresh}.gout",
            std::process::id()
        ));
        save_output(&out, &path).unwrap();
        let loaded = load_output(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.algorithm, out.algorithm);
        prop_assert_eq!(loaded.num_transactions, out.num_transactions);
        prop_assert_eq!(loaded.min_support_count, out.min_support_count);
        prop_assert_eq!(
            loaded.all_large().collect::<Vec<_>>(),
            out.all_large().collect::<Vec<_>>()
        );
    }
}
