//! Cross-algorithm correctness: every parallel algorithm must produce
//! exactly the sequential Cumulate result — same itemsets, same counts —
//! under every placement, fragmentation, and duplication regime.

use gar_cluster::ClusterConfig;
use gar_datagen::{DatasetSpec, TransactionGenerator};
use gar_mining::parallel::mine_parallel;
use gar_mining::sequential::cumulate;
use gar_mining::{Algorithm, MiningParams};
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;

const BIG_MEMORY: u64 = 1 << 30;

fn dataset(seed: u64) -> (Taxonomy, Vec<Vec<gar_types::ItemId>>) {
    // Small but structured: enough items that supports differentiate (not
    // every item is large), small enough that debug-mode counting stays
    // fast across all six algorithms.
    let spec = DatasetSpec {
        name: "test".into(),
        num_transactions: 1_200,
        avg_transaction_size: 6.0,
        avg_pattern_size: 3.0,
        num_patterns: 80,
        num_items: 400,
        num_roots: 8,
        fanout: 4.0,
        seed,
    };
    let mut g = TransactionGenerator::new(&spec).unwrap();
    let txns: Vec<_> = g.by_ref().collect();
    (g.into_taxonomy(), txns)
}

fn assert_same_output(a: &gar_mining::MiningOutput, b: &gar_mining::MiningOutput) {
    assert_eq!(a.num_transactions, b.num_transactions);
    assert_eq!(a.min_support_count, b.min_support_count);
    assert_eq!(
        a.passes.len(),
        b.passes.len(),
        "pass count differs: {:?} vs {:?}",
        a.passes
            .iter()
            .map(|p| (p.k, p.itemsets.len()))
            .collect::<Vec<_>>(),
        b.passes
            .iter()
            .map(|p| (p.k, p.itemsets.len()))
            .collect::<Vec<_>>(),
    );
    for (pa, pb) in a.passes.iter().zip(&b.passes) {
        assert_eq!(pa.k, pb.k);
        assert_eq!(
            pa.itemsets,
            pb.itemsets,
            "pass {} differs ({} vs {} itemsets)",
            pa.k,
            pa.itemsets.len(),
            pb.itemsets.len()
        );
    }
}

#[test]
fn all_parallel_algorithms_match_cumulate() {
    let (tax, txns) = dataset(42);
    let params = MiningParams::with_min_support(0.05);

    let seq_db = PartitionedDatabase::build_in_memory(1, txns.clone().into_iter()).unwrap();
    let expected = cumulate(seq_db.partition(0), &tax, &params).unwrap();
    assert!(expected.num_large() > 20, "test dataset too sparse");
    assert!(
        expected.passes.len() >= 2,
        "want multi-pass mining, got {} passes",
        expected.passes.len()
    );

    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(4, BIG_MEMORY);
    for alg in Algorithm::parallel_all() {
        let report = mine_parallel(alg, &db, &tax, &params, &cluster)
            .unwrap_or_else(|e| panic!("{alg} failed: {e}"));
        assert_same_output(&expected, &report.output);
        assert_eq!(report.num_nodes, 4);
        assert_eq!(report.pass_reports.len(), report.output.passes.len().max(1));
    }
}

#[test]
fn single_node_cluster_matches_sequential() {
    let (tax, txns) = dataset(7);
    let params = MiningParams::with_min_support(0.03);
    let db = PartitionedDatabase::build_in_memory(1, txns.clone().into_iter()).unwrap();
    let expected = cumulate(db.partition(0), &tax, &params).unwrap();
    let cluster = ClusterConfig::new(1, BIG_MEMORY);
    for alg in Algorithm::parallel_all() {
        let report = mine_parallel(alg, &db, &tax, &params, &cluster).unwrap();
        assert_same_output(&expected, &report.output);
        // One node: nothing to ship.
        assert_eq!(
            report.node_totals[0].bytes_sent, 0,
            "{alg} sent bytes to itself"
        );
    }
}

#[test]
fn npgm_fragments_under_memory_pressure_and_still_agrees() {
    let (tax, txns) = dataset(13);
    let params = MiningParams::with_min_support(0.01).max_pass(2);
    let seq_db = PartitionedDatabase::build_in_memory(1, txns.clone().into_iter()).unwrap();
    let expected = cumulate(seq_db.partition(0), &tax, &params).unwrap();

    let db = PartitionedDatabase::build_in_memory(3, txns.into_iter()).unwrap();
    // Tiny memory: candidates cannot fit, NPGM must fragment + re-scan.
    let cluster = ClusterConfig::new(3, 16 * 1024);
    let report = mine_parallel(Algorithm::Npgm, &db, &tax, &params, &cluster).unwrap();
    assert_same_output(&expected, &report.output);

    let pass2 = report.pass(2).expect("pass 2 ran");
    assert!(
        pass2.num_fragments > 1,
        "expected fragmentation, got {}",
        pass2.num_fragments
    );
    // One scan pass per fragment on every node.
    for d in &pass2.node_deltas {
        assert_eq!(d.scan_passes, pass2.num_fragments as u64);
    }

    // With plentiful memory: single fragment, single scan.
    let roomy = ClusterConfig::new(3, BIG_MEMORY);
    let db2 = {
        let (_, txns2) = dataset(13);
        PartitionedDatabase::build_in_memory(3, txns2.into_iter()).unwrap()
    };
    let report2 = mine_parallel(Algorithm::Npgm, &db2, &tax, &params, &roomy).unwrap();
    assert_eq!(report2.pass(2).unwrap().num_fragments, 1);
    assert!(report2.modeled_seconds < report.modeled_seconds);
}

#[test]
fn hhpgm_ships_far_less_than_hpgm() {
    let (tax, txns) = dataset(21);
    let params = MiningParams::with_min_support(0.01).max_pass(2);
    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(4, BIG_MEMORY);

    let hpgm = mine_parallel(Algorithm::Hpgm, &db, &tax, &params, &cluster).unwrap();
    let hhpgm = mine_parallel(Algorithm::HHpgm, &db, &tax, &params, &cluster).unwrap();
    assert_same_output(&hpgm.output, &hhpgm.output);

    let hpgm_recv = hpgm.pass(2).unwrap().avg_mb_received();
    let hhpgm_recv = hhpgm.pass(2).unwrap().avg_mb_received();
    assert!(
        hpgm_recv > 3.0 * hhpgm_recv,
        "HPGM {hpgm_recv:.3} MB vs H-HPGM {hhpgm_recv:.3} MB — hierarchy partitioning should slash communication"
    );
}

#[test]
fn duplication_kicks_in_and_preserves_results() {
    let (tax, txns) = dataset(33);
    let params = MiningParams::with_min_support(0.01).max_pass(2);
    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(4, BIG_MEMORY);

    let plain = mine_parallel(Algorithm::HHpgm, &db, &tax, &params, &cluster).unwrap();
    for alg in [
        Algorithm::HHpgmTgd,
        Algorithm::HHpgmPgd,
        Algorithm::HHpgmFgd,
    ] {
        let dup = mine_parallel(alg, &db, &tax, &params, &cluster).unwrap();
        assert_same_output(&plain.output, &dup.output);
        let pass2 = dup.pass(2).unwrap();
        assert!(
            pass2.num_duplicated > 0,
            "{alg}: free memory available but nothing duplicated"
        );
        assert!(pass2.num_duplicated <= pass2.num_candidates);
    }
}

#[test]
fn tiny_memory_disables_duplication_making_tgd_equal_hhpgm() {
    // The paper: "When the size of free memory is small, H-HPGM-TGD cannot
    // duplicate the candidate itemsets ... it becomes identical to H-HPGM."
    let (tax, txns) = dataset(5);
    let params = MiningParams::with_min_support(0.01).max_pass(2);
    let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
    // Budget barely above the biggest partition: no free space.
    let cluster = ClusterConfig::new(4, 1);
    let err = mine_parallel(Algorithm::HHpgmTgd, &db, &tax, &params, &cluster);
    // memory_per_node = 1 byte is still a valid config (candidates are
    // partitioned regardless); duplication must simply not happen.
    let report = err.unwrap();
    assert_eq!(report.pass(2).unwrap().num_duplicated, 0);
}

#[test]
fn disk_backed_partitions_agree_with_memory() {
    let (tax, txns) = dataset(55);
    let params = MiningParams::with_min_support(0.02).max_pass(2);
    let dir = std::env::temp_dir().join(format!("gar-par-test-{}", std::process::id()));
    let disk = PartitionedDatabase::build_on_disk(&dir, 3, txns.clone().into_iter()).unwrap();
    let mem = PartitionedDatabase::build_in_memory(3, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(3, BIG_MEMORY);
    let a = mine_parallel(Algorithm::HHpgmFgd, &disk, &tax, &params, &cluster).unwrap();
    let b = mine_parallel(Algorithm::HHpgmFgd, &mem, &tax, &params, &cluster).unwrap();
    assert_same_output(&a.output, &b.output);
    // Disk runs report real I/O.
    assert!(a.node_totals.iter().all(|s| s.io_bytes > 0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn node_partition_mismatch_is_rejected() {
    let (tax, txns) = dataset(1);
    let db = PartitionedDatabase::build_in_memory(2, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(4, BIG_MEMORY);
    let err = mine_parallel(
        Algorithm::HHpgm,
        &db,
        &tax,
        &MiningParams::with_min_support(0.1),
        &cluster,
    )
    .unwrap_err();
    assert!(err.to_string().contains("partitions"));
}

#[test]
fn sequential_algorithms_rejected_by_parallel_entry() {
    let (tax, txns) = dataset(2);
    let db = PartitionedDatabase::build_in_memory(2, txns.into_iter()).unwrap();
    let cluster = ClusterConfig::new(2, BIG_MEMORY);
    for alg in [Algorithm::Cumulate, Algorithm::Apriori] {
        assert!(mine_parallel(
            alg,
            &db,
            &tax,
            &MiningParams::with_min_support(0.1),
            &cluster
        )
        .is_err());
    }
}
