//! Differential property tests: randomized taxonomies and transaction
//! sets, every algorithm (sequential and parallel) against the
//! brute-force oracle.

use gar_cluster::ClusterConfig;
use gar_mining::oracle::mine_naive;
use gar_mining::parallel::mine_parallel;
use gar_mining::sequential::cumulate;
use gar_mining::{Algorithm, CounterKind, MiningParams};
use gar_storage::{FlatPartition, PartitionedDatabase, TransactionSource};
use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    tax: Taxonomy,
    txns: Vec<Vec<ItemId>>,
    min_support: f64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        2u32..5,      // roots
        12u32..40,    // items
        1.5f64..5.0,  // fanout
        0u64..10_000, // taxonomy seed
        proptest::collection::vec(proptest::collection::btree_set(0u32..40, 1..6), 4..40),
        2u32..6, // min support as a divisor of |D|
    )
        .prop_map(|(roots, items, fanout, seed, raw_txns, div)| {
            let tax = synthesize(&SynthTaxonomyConfig {
                num_items: items.max(roots + 1),
                num_roots: roots,
                fanout,
                seed,
            });
            let txns: Vec<Vec<ItemId>> = raw_txns
                .into_iter()
                .map(|s| {
                    let mut v: Vec<ItemId> =
                        s.into_iter().map(|x| ItemId(x % tax.num_items())).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            Scenario {
                tax,
                txns,
                min_support: 1.0 / f64::from(div),
            }
        })
}

/// Same round-robin split as `build_in_memory`, with every partition
/// round-tripped through a `GFP1` disk file (`write_to` then `open`;
/// `open` loads fully, so the files are deleted before mining).
fn persisted_db(num_nodes: usize, txns: &[Vec<ItemId>]) -> PartitionedDatabase {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let run = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gar-oracle-eq-{}-{run}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut buckets: Vec<FlatPartition> = (0..num_nodes).map(|_| FlatPartition::new()).collect();
    for (i, t) in txns.iter().enumerate() {
        buckets[i % num_nodes].push(t);
    }
    let parts: Vec<Box<dyn TransactionSource>> = buckets
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let path = dir.join(format!("part-{i}.gfp1"));
            b.write_to(&path).unwrap();
            Box::new(FlatPartition::open(&path).unwrap()) as Box<dyn TransactionSource>
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    PartitionedDatabase::from_parts(parts)
}

fn outputs_equal(a: &gar_mining::MiningOutput, b: &gar_mining::MiningOutput) -> Result<(), String> {
    if a.passes.len() != b.passes.len() {
        return Err(format!(
            "pass counts differ: {} vs {}",
            a.passes.len(),
            b.passes.len()
        ));
    }
    for (pa, pb) in a.passes.iter().zip(&b.passes) {
        if pa.itemsets != pb.itemsets {
            return Err(format!(
                "pass {} differs:\n  a: {:?}\n  b: {:?}",
                pa.k, pa.itemsets, pb.itemsets
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cumulate_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let fast = cumulate(db.partition(0), &s.tax, &params).unwrap();
        outputs_equal(&naive, &fast).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn cumulate_with_flat_map_counter_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support)
            .counter(CounterKind::HashMap)
            .max_pass(3);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let fast = cumulate(db.partition(0), &s.tax, &params).unwrap();
        outputs_equal(&naive, &fast).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hhpgm_fgd_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(3, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(3, 1 << 16);
        let rep = mine_parallel(Algorithm::HHpgmFgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    // The persisted GFP1 flat format must be invisible: partitions
    // round-tripped through disk files still match the oracle exactly.
    #[test]
    fn hhpgm_fgd_on_persisted_flat_partitions_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = persisted_db(3, &s.txns);
        let cluster = ClusterConfig::new(3, 1 << 16);
        let rep = mine_parallel(Algorithm::HHpgmFgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hpgm_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support).max_pass(3);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(2, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(2, 1 << 20);
        let rep = mine_parallel(Algorithm::Hpgm, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn npgm_with_tiny_memory_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(2, s.txns.clone().into_iter()).unwrap();
        // 256 bytes: forces many fragments.
        let cluster = ClusterConfig::new(2, 256);
        let rep = mine_parallel(Algorithm::Npgm, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hhpgm_tgd_with_tight_memory_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(2, s.txns.clone().into_iter()).unwrap();
        // Enough for partitions plus a sliver of duplication space.
        let cluster = ClusterConfig::new(2, 2048);
        let rep = mine_parallel(Algorithm::HHpgmTgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hhpgm_pgd_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(4, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(4, 1 << 14);
        let rep = mine_parallel(Algorithm::HHpgmPgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }
}
