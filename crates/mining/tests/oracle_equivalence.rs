//! Differential property tests: randomized taxonomies and transaction
//! sets, every algorithm (sequential and parallel) against the
//! brute-force oracle.

use gar_cluster::ClusterConfig;
use gar_mining::oracle::mine_naive;
use gar_mining::parallel::mine_parallel;
use gar_mining::sequential::cumulate;
use gar_mining::{Algorithm, CounterKind, MiningParams};
use gar_storage::PartitionedDatabase;
use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
use gar_taxonomy::Taxonomy;
use gar_types::ItemId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    tax: Taxonomy,
    txns: Vec<Vec<ItemId>>,
    min_support: f64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        2u32..5,      // roots
        12u32..40,    // items
        1.5f64..5.0,  // fanout
        0u64..10_000, // taxonomy seed
        proptest::collection::vec(proptest::collection::btree_set(0u32..40, 1..6), 4..40),
        2u32..6, // min support as a divisor of |D|
    )
        .prop_map(|(roots, items, fanout, seed, raw_txns, div)| {
            let tax = synthesize(&SynthTaxonomyConfig {
                num_items: items.max(roots + 1),
                num_roots: roots,
                fanout,
                seed,
            });
            let txns: Vec<Vec<ItemId>> = raw_txns
                .into_iter()
                .map(|s| {
                    let mut v: Vec<ItemId> =
                        s.into_iter().map(|x| ItemId(x % tax.num_items())).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            Scenario {
                tax,
                txns,
                min_support: 1.0 / f64::from(div),
            }
        })
}

fn outputs_equal(a: &gar_mining::MiningOutput, b: &gar_mining::MiningOutput) -> Result<(), String> {
    if a.passes.len() != b.passes.len() {
        return Err(format!(
            "pass counts differ: {} vs {}",
            a.passes.len(),
            b.passes.len()
        ));
    }
    for (pa, pb) in a.passes.iter().zip(&b.passes) {
        if pa.itemsets != pb.itemsets {
            return Err(format!(
                "pass {} differs:\n  a: {:?}\n  b: {:?}",
                pa.k, pa.itemsets, pb.itemsets
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cumulate_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let fast = cumulate(db.partition(0), &s.tax, &params).unwrap();
        outputs_equal(&naive, &fast).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn cumulate_with_flat_map_counter_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support)
            .counter(CounterKind::HashMap)
            .max_pass(3);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(1, s.txns.clone().into_iter()).unwrap();
        let fast = cumulate(db.partition(0), &s.tax, &params).unwrap();
        outputs_equal(&naive, &fast).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hhpgm_fgd_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(3, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(3, 1 << 16);
        let rep = mine_parallel(Algorithm::HHpgmFgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hpgm_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support).max_pass(3);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(2, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(2, 1 << 20);
        let rep = mine_parallel(Algorithm::Hpgm, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn npgm_with_tiny_memory_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(2, s.txns.clone().into_iter()).unwrap();
        // 256 bytes: forces many fragments.
        let cluster = ClusterConfig::new(2, 256);
        let rep = mine_parallel(Algorithm::Npgm, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hhpgm_tgd_with_tight_memory_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(2, s.txns.clone().into_iter()).unwrap();
        // Enough for partitions plus a sliver of duplication space.
        let cluster = ClusterConfig::new(2, 2048);
        let rep = mine_parallel(Algorithm::HHpgmTgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hhpgm_pgd_matches_oracle(s in arb_scenario()) {
        let params = MiningParams::with_min_support(s.min_support);
        let naive = mine_naive(&s.txns, &s.tax, &params);
        let db = PartitionedDatabase::build_in_memory(4, s.txns.clone().into_iter()).unwrap();
        let cluster = ClusterConfig::new(4, 1 << 14);
        let rep = mine_parallel(Algorithm::HHpgmPgd, &db, &s.tax, &params, &cluster).unwrap();
        outputs_equal(&naive, &rep.output).map_err(TestCaseError::fail)?;
    }
}
