//! Apriori candidate generation (`C_k` from `L_{k-1}`).
//!
//! Every algorithm in the paper generates candidates the same way on every
//! node (the paper's step 1): join `L_{k-1}` with itself, prune k-itemsets
//! with a small (k-1)-subset, and — for pass 2 with a taxonomy — "delete
//! any candidates that consist of an item and its ancestor" (their support
//! equals the descendant's, so they derive only the trivially redundant
//! rule `x ⇒ ancestor(x)`). Determinism matters: NPGM all-reduces raw count
//! vectors, which only lines up because every node produces the identical
//! candidate order.

use gar_taxonomy::Taxonomy;
use gar_types::{FxHashSet, ItemId, Itemset};

/// Generates the candidate 2-itemsets from the large items `l1` (sorted).
/// With a taxonomy, pairs of hierarchically related items are deleted.
pub fn generate_pairs(l1: &[ItemId], tax: Option<&Taxonomy>) -> Vec<Itemset> {
    debug_assert!(l1.windows(2).all(|w| w[0] < w[1]), "L1 must be sorted");
    let mut out = Vec::with_capacity(l1.len().saturating_sub(1).pow(2) / 2);
    for i in 0..l1.len() {
        for j in i + 1..l1.len() {
            if let Some(t) = tax {
                if t.related(l1[i], l1[j]) {
                    continue;
                }
            }
            out.push(Itemset::from_sorted(vec![l1[i], l1[j]]));
        }
    }
    out
}

/// Generates `C_k` (k ≥ 3) from the large (k-1)-itemsets.
///
/// `prev_large` need not be sorted; the output is sorted (deterministic).
/// The prune step removes every candidate with a (k-1)-subset outside
/// `prev_large`. Candidates mixing an item with its ancestor cannot occur
/// here: any such k-itemset has a related (k-1)-subset, which pass 2
/// already deleted, so the subset prune removes it.
pub fn generate_candidates(prev_large: &[Itemset]) -> Vec<Itemset> {
    if prev_large.is_empty() {
        return Vec::new();
    }
    let k = prev_large[0].len() + 1;
    debug_assert!(prev_large.iter().all(|s| s.len() == k - 1));

    let mut sorted: Vec<&Itemset> = prev_large.iter().collect();
    sorted.sort_unstable();
    let prev_set: FxHashSet<&Itemset> = sorted.iter().copied().collect();

    let mut out = Vec::new();
    // Join step: two (k-1)-itemsets sharing their first k-2 items combine
    // into one k-itemset. Scan runs of equal prefixes in the sorted list.
    let mut run_start = 0;
    while run_start < sorted.len() {
        let prefix = &sorted[run_start].items()[..k - 2];
        let mut run_end = run_start + 1;
        while run_end < sorted.len() && &sorted[run_end].items()[..k - 2] == prefix {
            run_end += 1;
        }
        for a in run_start..run_end {
            for b in a + 1..run_end {
                let mut items = sorted[a].items().to_vec();
                items.push(*sorted[b].items().last().expect("nonempty"));
                let candidate = Itemset::from_sorted(items);
                if subsets_all_large(&candidate, &prev_set) {
                    out.push(candidate);
                }
            }
        }
        run_start = run_end;
    }
    out.sort_unstable();
    out
}

/// Prune check: every (k-1)-subset of `candidate` is in `prev`.
fn subsets_all_large(candidate: &Itemset, prev: &FxHashSet<&Itemset>) -> bool {
    // The subsets dropping the last two positions were the join operands;
    // checking all of them anyway is cheap and keeps the code obvious.
    for idx in 0..candidate.len() {
        let sub = candidate.without_index(idx);
        if !prev.contains(&sub) {
            return false;
        }
    }
    true
}

/// The distinct items appearing in any candidate — what Cumulate's
/// "delete any ancestors in T that are not present in the candidates"
/// optimization keeps ([`gar_taxonomy::PrunedView`] consumes this).
pub fn items_in_candidates<'a>(
    candidates: impl IntoIterator<Item = &'a Itemset>,
) -> FxHashSet<ItemId> {
    let mut out = FxHashSet::default();
    for c in candidates {
        out.extend(c.items().iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn pairs_without_taxonomy_are_all_pairs() {
        let c = generate_pairs(&ids(&[1, 2, 3]), None);
        assert_eq!(c, vec![iset![1, 2], iset![1, 3], iset![2, 3]]);
    }

    #[test]
    fn pairs_with_taxonomy_drop_related() {
        // 1 is the parent of 2; {1,2} must be deleted.
        let mut b = TaxonomyBuilder::new(4);
        b.edge(2, 1).unwrap();
        let tax = b.build().unwrap();
        let c = generate_pairs(&ids(&[1, 2, 3]), Some(&tax));
        assert_eq!(c, vec![iset![1, 3], iset![2, 3]]);
    }

    #[test]
    fn pairs_drop_transitive_ancestors_too() {
        // 0 -> 1 -> 2 chain: {0,2} is ancestor-related transitively.
        let mut b = TaxonomyBuilder::new(3);
        b.edge(1, 0).unwrap();
        b.edge(2, 1).unwrap();
        let tax = b.build().unwrap();
        let c = generate_pairs(&ids(&[0, 1, 2]), Some(&tax));
        assert!(c.is_empty());
    }

    #[test]
    fn join_and_prune_classic_example() {
        // The [RR94] running example: L3 = {123, 124, 134, 135, 234}.
        // Join gives {1234, 1345}; prune kills 1345 (145 not large).
        let l3 = vec![
            iset![1, 2, 3],
            iset![1, 2, 4],
            iset![1, 3, 4],
            iset![1, 3, 5],
            iset![2, 3, 4],
        ];
        let c4 = generate_candidates(&l3);
        assert_eq!(c4, vec![iset![1, 2, 3, 4]]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(generate_candidates(&[]).is_empty());
        assert!(generate_pairs(&[], None).is_empty());
    }

    #[test]
    fn output_is_sorted_and_duplicate_free() {
        let l2 = vec![
            iset![2, 3],
            iset![1, 2],
            iset![1, 3],
            iset![2, 4],
            iset![3, 4],
            iset![1, 4],
        ];
        let c3 = generate_candidates(&l2);
        assert!(c3.windows(2).all(|w| w[0] < w[1]));
        // {1,2,3} (all subsets large), {1,2,4}, {1,3,4}, {2,3,4} all survive.
        assert_eq!(c3.len(), 4);
    }

    #[test]
    fn items_in_candidates_collects_distinct() {
        let set = items_in_candidates(&[iset![1, 2], iset![2, 3]]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(&ItemId(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_l2() -> impl Strategy<Value = Vec<Itemset>> {
        proptest::collection::btree_set(
            proptest::collection::btree_set(0u32..15, 2..=2usize),
            0..40,
        )
        .prop_map(|sets| {
            sets.into_iter()
                .map(|s| Itemset::from_unsorted(s.into_iter().map(ItemId).collect()))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn generated_c3_matches_brute_force(l2 in arb_l2()) {
            let fast = generate_candidates(&l2);
            // Brute force: every 3-subset of the item universe whose three
            // 2-subsets are all in L2.
            let l2set: FxHashSet<&Itemset> = l2.iter().collect();
            let items: Vec<ItemId> = {
                let mut v: Vec<ItemId> = items_in_candidates(&l2).into_iter().collect();
                v.sort_unstable();
                v
            };
            let mut brute = Vec::new();
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    for l in j + 1..items.len() {
                        let c = Itemset::from_sorted(vec![items[i], items[j], items[l]]);
                        let ok = (0..3).all(|d| l2set.contains(&c.without_index(d)));
                        if ok {
                            brute.push(c);
                        }
                    }
                }
            }
            brute.sort_unstable();
            prop_assert_eq!(fast, brute);
        }

        #[test]
        fn every_candidate_subset_is_large(l2 in arb_l2()) {
            let c3 = generate_candidates(&l2);
            let l2set: FxHashSet<&Itemset> = l2.iter().collect();
            for c in &c3 {
                for d in 0..c.len() {
                    prop_assert!(l2set.contains(&c.without_index(d)));
                }
            }
        }
    }
}
